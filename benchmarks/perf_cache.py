#!/usr/bin/env python
"""Throughput driver for the result-cache backends, with a committed baseline.

Measures **entries per second** for every cell of a fixed grid
``backend x operation x entries`` -- the operations being ``put`` (store a
campaign's worth of results), ``get`` (full-outcome fingerprint lookups),
``merge`` (union a filled shard cache into a fresh one) and ``report``
(fold the per-configuration summary aggregates a ``campaign_report`` is
made of, config by config) -- and writes the result as
``BENCH_cache.json`` (committed at the repository root).  CI's
``perf-trajectory`` job re-runs the quick subset on every push and diffs the
fresh numbers against the committed baseline, exactly like
``perf_driver.py`` does for the simulator cores.

The committed full-size cells carry the backend's acceptance claim: at 10^5
entries the SQLite backend must merge and report at least 10x faster than
the JSON tree (``tests/test_cache_bench_baseline.py`` pins this against the
committed file).  The ``report`` cell times exactly the cache-side work of
a report -- the per-configuration ``get_summary_aggregate`` calls the
streaming report path issues -- because the spec-side work (expanding the
sweep and fingerprinting every trial) is identical for both backends and
would only dilute the comparison.  The diff is machine-speed-normalised --
the median of
``current / baseline`` over shared cells absorbs slower hardware, and only
cells falling behind their peers fail the run.

Usage::

    python benchmarks/perf_cache.py --quick                 # measure only
    python benchmarks/perf_cache.py --output BENCH_cache.json
    python benchmarks/perf_cache.py --quick --baseline BENCH_cache.json

Exit status: 0 on success (or measure-only), 1 when any cell regressed
beyond the failure threshold.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.campaign import CampaignSpec  # noqa: E402
from repro.core import ElectionParameters  # noqa: E402
from repro.exec import (  # noqa: E402
    GraphSpec,
    ResultCache,
    SweepSpec,
    TrialSpec,
    execute_trial,
    trial_fingerprint,
)

#: Baseline document schema version (bumped on incompatible changes).
BASELINE_VERSION = 1

#: Default committed baseline, relative to the repository root.
DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_cache.json"
)

#: Cache backends under measurement and the operations timed per backend.
BACKENDS = ("json", "sqlite")
OPERATIONS = ("put", "get", "merge", "report")

#: Entry counts: the quick cell CI re-measures on every push, and the full
#: cell the committed >=10x merge/report claim is pinned at.
QUICK_ENTRIES = 2000
FULL_ENTRIES = 100_000

#: At most this many fingerprints are looked up by the ``get`` cells (a
#: stride-sampled subset, so the cell cost stays bounded at any size).
GET_SAMPLE = 10_000

#: Every cell is timed over at least this long; sub-second cells repeat
#: (into fresh directories where the operation is a one-shot) so quick runs
#: measure throughput, not scheduler noise.
MIN_SECONDS = 1.0
MAX_REPS = 32

#: Election parameters that keep the one real template trial fast.
FAST = ElectionParameters(c1=3.0, c2=0.5)


def _grid(quick: bool) -> List[Dict[str, object]]:
    """The measurement grid; ``quick`` selects the CI subset.

    The full grid keeps the quick cells, so a full baseline regeneration
    still contains every cell the CI quick diff needs to compare.
    """
    cells: List[Dict[str, object]] = []
    for backend in BACKENDS:
        for operation in OPERATIONS:
            cells.append(
                {
                    "backend": backend,
                    "operation": operation,
                    "entries": QUICK_ENTRIES,
                    "quick": True,
                }
            )
            if not quick:
                cells.append(
                    {
                        "backend": backend,
                        "operation": operation,
                        "entries": FULL_ENTRIES,
                        "quick": False,
                    }
                )
    return cells


class Corpus:
    """One synthetic campaign of ``entries`` trials plus a filled cache per
    backend, shared by every cell of that size.

    The campaign is real -- a sweep of clique-election configurations whose
    expansion yields ``entries`` distinct fingerprints -- but only one trial
    is ever executed; its outcome is stored under every fingerprint, because
    the cache neither knows nor cares whether two entries hold equal
    payloads.  That keeps corpus construction O(entries) cache writes rather
    than O(entries) simulations.
    """

    def __init__(self, entries: int, workdir: str) -> None:
        self.entries = entries
        self.workdir = workdir
        configs = 100 if entries >= 100 else 1
        trials = entries // configs
        assert configs * trials == entries, "grid sizes must divide evenly"
        template = TrialSpec(
            graph=GraphSpec("clique", (8,)), algorithm="election", params=FAST
        )
        self.campaign = CampaignSpec(
            name="cache-bench-%d" % entries,
            sweeps=(
                SweepSpec(
                    name="main",
                    configs=(template,) * configs,
                    trials=trials,
                    base_seed=11,
                ),
            ),
        )
        expanded = [spec for _sweep, spec in self.campaign.expand()]
        self.template = expanded[0]
        self.fingerprints = [trial_fingerprint(spec) for spec in expanded]
        # Config-major chunks: the exact per-configuration lookups the
        # streaming report path issues (fingerprints precomputed, because
        # deriving them is spec work, not cache work).
        self.config_chunks = [
            self.fingerprints[index * trials : (index + 1) * trials]
            for index in range(configs)
        ]
        self.outcome = execute_trial(self.template)
        self._filled: Dict[str, ResultCache] = {}
        self._scratch = 0

    def scratch_root(self) -> str:
        self._scratch += 1
        return os.path.join(self.workdir, "scratch-%d" % self._scratch)

    def fill(self, root: str, backend: str) -> ResultCache:
        cache = ResultCache(root, backend=backend)
        for fingerprint in self.fingerprints:
            cache.put(fingerprint, self.template, self.outcome, 0.001)
        return cache

    def filled(self, backend: str) -> ResultCache:
        """The (lazily built) canonical filled cache for ``backend``."""
        if backend not in self._filled:
            root = os.path.join(self.workdir, "filled-%s" % backend)
            self._filled[backend] = self.fill(root, backend)
        return self._filled[backend]

    def get_sample(self) -> List[str]:
        stride = max(1, self.entries // GET_SAMPLE)
        return self.fingerprints[::stride]


def _run_cell(cell: Dict[str, object], corpus: Corpus) -> Dict[str, object]:
    """Time one grid cell; returns the cell dict extended with measurements."""
    backend = str(cell["backend"])
    operation = str(cell["operation"])

    def run_once() -> int:
        if operation == "put":
            root = corpus.scratch_root()
            cache = corpus.fill(root, backend)
            cache.close()
            return corpus.entries
        if operation == "get":
            sample = corpus.get_sample()
            hits = corpus.filled(backend).get_many(sample)
            if any(cached is None for cached in hits):
                raise RuntimeError("benchmark cache lost entries under %s" % backend)
            return len(sample)
        if operation == "merge":
            target = ResultCache(corpus.scratch_root(), backend=backend)
            merged = target.merge_from(corpus.filled(backend))
            target.close()
            if merged != corpus.entries:
                raise RuntimeError(
                    "merge moved %d of %d entries under %s"
                    % (merged, corpus.entries, backend)
                )
            return corpus.entries
        if operation == "report":
            cache = corpus.filled(backend)
            seen = 0
            for chunk in corpus.config_chunks:
                seen += cache.get_summary_aggregate(chunk).done
            if seen != corpus.entries:
                raise RuntimeError(
                    "report saw %d of %d entries under %s"
                    % (seen, corpus.entries, backend)
                )
            return corpus.entries
        raise ValueError("unknown benchmark operation %r" % operation)

    # Warm the canonical *source* cache (directory listings, SQLite page
    # cache, WAL settling after the fill) outside the timed region for every
    # operation that reads it.  Merge qualifies: each rep unions into a
    # fresh target, so the warm-up rep only settles the shared source --
    # symmetrically for both backends.  Only ``put`` is cold by nature.
    if operation in ("get", "merge", "report"):
        run_once()
    processed = 0
    reps = 0
    start = time.perf_counter()
    while True:
        processed += run_once()
        reps += 1
        elapsed = time.perf_counter() - start
        if reps >= MAX_REPS or elapsed >= MIN_SECONDS:
            break
    return {
        "backend": backend,
        "operation": operation,
        "entries": int(cell["entries"]),
        "quick": bool(cell["quick"]),
        "reps": reps,
        "seconds": round(elapsed, 4),
        "entries_per_sec": round(processed / elapsed, 4) if elapsed > 0 else float("inf"),
    }


def _cell_key(cell: Dict[str, object]) -> Tuple[str, str, int]:
    return (str(cell["backend"]), str(cell["operation"]), int(cell["entries"]))


def measure(quick: bool) -> Dict[str, object]:
    """Run the full grid and assemble the baseline document."""
    results = []
    corpora: Dict[int, Corpus] = {}
    workdir = tempfile.mkdtemp(prefix="perf-cache-")
    try:
        for cell in _grid(quick):
            entries = int(cell["entries"])
            if entries not in corpora:
                corpora[entries] = Corpus(
                    entries, os.path.join(workdir, "n%d" % entries)
                )
            result = _run_cell(cell, corpora[entries])
            results.append(result)
            print(
                "%-7s %-7s entries=%-7d %12.1f entries/sec  (%d rep(s))"
                % (
                    result["backend"],
                    result["operation"],
                    result["entries"],
                    result["entries_per_sec"],
                    result["reps"],
                ),
                flush=True,
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return {
        "version": BASELINE_VERSION,
        "unit": "entries_per_sec",
        "quick": quick,
        "cells": results,
    }


def speedup_summary(document: Dict[str, object]) -> List[str]:
    """SQLite-over-JSON throughput ratios for every shared cell."""
    by_key = {_cell_key(c): c for c in document["cells"]}
    lines = []
    for key, cell in sorted(by_key.items()):
        if key[0] != "sqlite":
            continue
        json_cell = by_key.get(("json", key[1], key[2]))
        if json_cell is None:
            continue
        ratio = cell["entries_per_sec"] / json_cell["entries_per_sec"]
        lines.append(
            "speedup %-7s entries=%-7d %6.1fx (sqlite over json)" % (key[1], key[2], ratio)
        )
    return lines


def diff_against_baseline(
    current: Dict[str, object],
    baseline: Dict[str, object],
    fail_threshold: float,
    warn_threshold: float,
) -> Tuple[List[str], List[str]]:
    """Machine-speed-normalised per-cell comparison (same scheme as
    ``perf_driver.py``): cells present on only one side warn, shared cells
    falling behind the median drift fail.  The write-heavy cells (``put``,
    ``merge``) only ever warn: raw file/row creation throughput swings
    several-fold with the state of the OS writeback queue, far beyond any
    useful regression threshold, while the read-side cells (``get``,
    ``report``) are stable enough to gate.  The committed >=10x
    merge/report claim itself is pinned against the committed full-grid
    numbers by ``tests/test_cache_bench_baseline.py``, not by this diff."""
    current_by_key = {_cell_key(c): c for c in current["cells"]}
    baseline_by_key = {_cell_key(c): c for c in baseline["cells"]}
    shared = sorted(set(current_by_key) & set(baseline_by_key))
    warnings: List[str] = []
    failures: List[str] = []
    for key in sorted(set(baseline_by_key) - set(current_by_key)):
        warnings.append("cell %r is in the baseline but was not measured" % (key,))
    for key in sorted(set(current_by_key) - set(baseline_by_key)):
        warnings.append("cell %r was measured but has no baseline entry" % (key,))
    if not shared:
        failures.append("no cells shared with the baseline; nothing to diff")
        return failures, warnings

    ratios = [
        current_by_key[key]["entries_per_sec"] / baseline_by_key[key]["entries_per_sec"]
        for key in shared
    ]
    factor = statistics.median(ratios)
    print("machine-speed factor (median current/baseline): %.3f" % factor)
    for key, ratio in zip(shared, ratios):
        relative = ratio / factor
        line = "%-7s %-7s entries=%-7d %+6.1f%% vs baseline (normalised)" % (
            key[0],
            key[1],
            key[2],
            (relative - 1.0) * 100.0,
        )
        gated = key[1] in ("get", "report")
        if gated and relative < 1.0 - fail_threshold:
            failures.append(line)
        elif abs(relative - 1.0) > warn_threshold:
            warnings.append(line)
    return failures, warnings


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="run the CI subset of the grid"
    )
    parser.add_argument(
        "--output", help="write the measured baseline document to this path"
    )
    parser.add_argument(
        "--baseline",
        nargs="?",
        const=DEFAULT_BASELINE,
        help="diff the fresh measurements against this committed baseline "
        "(default when the flag is given without a value: BENCH_cache.json "
        "at the repository root)",
    )
    parser.add_argument(
        "--fail-threshold",
        type=float,
        default=0.30,
        help="normalised per-cell slowdown that fails the run (default 0.30)",
    )
    parser.add_argument(
        "--warn-threshold",
        type=float,
        default=0.15,
        help="normalised per-cell drift that warns (default 0.15)",
    )
    args = parser.parse_args(argv)

    document = measure(args.quick)
    for line in speedup_summary(document):
        print(line)

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.output)

    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        if baseline.get("version") != BASELINE_VERSION:
            print(
                "baseline version %r != driver version %d; regenerate it"
                % (baseline.get("version"), BASELINE_VERSION),
                file=sys.stderr,
            )
            return 1
        failures, warnings = diff_against_baseline(
            document, baseline, args.fail_threshold, args.warn_threshold
        )
        for line in warnings:
            print("WARN %s" % line)
        for line in failures:
            print("FAIL %s" % line, file=sys.stderr)
        if failures:
            return 1
        print("perf trajectory OK (%d cells compared)" % len(document["cells"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
