"""Mapping a :class:`~repro.faults.plan.FaultPlan` onto a live deployment.

The simulator consults a :class:`~repro.faults.injector.FaultInjector` at
send and activation time; the live coordinator routes every message itself,
so the *same* injector -- seeded from the same ``(seed, FAULT_SEED_STREAM)``
derivation -- makes the same decisions in the same order.  Message faults
(drop / duplicate / delay / edge removal) therefore need no translation:
they are applied to the relayed frames exactly as they would have been
applied to simulated deliveries.

Crash-stop faults *do* need translation, and it is the honest one: a node
planned to crash at round ``r`` has its process SIGKILLed before the first
event round ``>= r`` is dispatched.  :meth:`LiveFaultEngine.due_kills` hands
the coordinator that schedule.  Because the simulator never activates a
crashed node at rounds ``>= r`` either, the last pre-kill result snapshot
the coordinator holds is exactly the state the simulator's protocol instance
would report at the end of the run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..faults.injector import FaultInjector
from ..faults.plan import CrashFaults, DelayFaults, FaultPlan, MessageFaults
from ..graphs.ports import PortNumberedGraph
from ..sim.harness import FAULT_SEED_STREAM
from ..sim.rng import derive_seed

__all__ = ["LiveFaultEngine", "plan_from_options", "parse_crash_option"]


class LiveFaultEngine:
    """The coordinator's fault hook: one injector plus a kill schedule."""

    def __init__(self, plan, master_seed: int, phase_start_of) -> None:
        if plan is not None and plan.is_empty:
            plan = None
        self.plan = plan
        self.injector: Optional[FaultInjector] = None
        if plan is not None:
            self.injector = FaultInjector(
                plan,
                master_seed=derive_seed(master_seed, FAULT_SEED_STREAM),
                phase_start_of=phase_start_of,
            )
        self._killed: Set[int] = set()

    @property
    def active(self) -> bool:
        """Whether a non-empty plan is in force."""
        return self.injector is not None

    def attach(self, port_graph: PortNumberedGraph) -> None:
        """Precompute the run's structural fault decisions (once)."""
        if self.injector is not None:
            self.injector.attach(port_graph)

    # ------------------------------------------------------------- decisions
    def is_crashed(self, node: int, round_number: int) -> bool:
        """Whether ``node`` is crash-stopped at ``round_number``."""
        return self.injector is not None and self.injector.is_crashed(
            node, round_number
        )

    def deliveries(
        self, send_round: int, sender: int, receiver: int, delivery_round: int
    ) -> List[int]:
        """Delivery rounds the adversary grants one relayed message."""
        if self.injector is None:
            return [delivery_round]
        return self.injector.deliveries(send_round, sender, receiver, delivery_round)

    def due_kills(self, round_number: int) -> List[int]:
        """Nodes whose planned crash fires at or before ``round_number``.

        Each node is returned exactly once across the run; the coordinator
        SIGKILLs the listed processes before dispatching the round.
        """
        if self.injector is None:
            return []
        due = sorted(
            node
            for node, crash_round in self.injector.crash_rounds.items()
            if crash_round <= round_number and node not in self._killed
        )
        self._killed.update(due)
        return due

    # --------------------------------------------------------------- summary
    def crashed_as_of(self, round_number: int) -> List[int]:
        """Sorted nodes whose crash fired at or before ``round_number``."""
        if self.injector is None:
            return []
        return self.injector.crashed_as_of(round_number)

    def fault_events(self) -> Optional[Dict[str, int]]:
        """The injector's per-fault counters, ``None`` without a plan."""
        if self.injector is None:
            return None
        return dict(self.injector.events)


# -------------------------------------------------------------- CLI parsing
def parse_crash_option(text: str) -> CrashFaults:
    """Parse the coordinator CLI's ``--crash K@R`` form.

    ``K`` nodes (drawn by the plan's crash stream) crash-stop from round
    ``R``; a bare ``K`` crashes at round 0.
    """
    count_text, _, round_text = text.partition("@")
    try:
        count = int(count_text)
        at_round = int(round_text) if round_text else 0
    except ValueError:
        raise ValueError(
            "--crash expects K or K@R (e.g. 2@40), got %r" % text
        ) from None
    return CrashFaults(count=count, at_round=at_round)


def plan_from_options(
    drop: float = 0.0,
    duplicate: float = 0.0,
    crash: Optional[str] = None,
    delay: int = 0,
) -> Optional[FaultPlan]:
    """Build the coordinator CLI's fault plan; ``None`` when all defaults."""
    kwargs = {}
    if drop > 0.0 or duplicate > 0.0:
        kwargs["messages"] = MessageFaults(
            drop_probability=drop, duplicate_probability=duplicate
        )
    if crash:
        kwargs["crashes"] = parse_crash_option(crash)
    if delay > 0:
        kwargs["delays"] = DelayFaults(max_delay=delay)
    if not kwargs:
        return None
    return FaultPlan(**kwargs)
