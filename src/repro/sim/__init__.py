"""Synchronous CONGEST simulator: nodes, ports, messages, metrics."""

from .errors import (
    CongestViolationError,
    ProtocolError,
    RoundLimitExceeded,
    SimulationError,
)
from .harness import FAULT_SEED_STREAM, run_protocol
from .message import Message, counter_bits, id_bits, id_set_bits, word_bits_for
from .metrics import MetricsCollector, RunMetrics
from .network import MessageObserver, Network, SimulationResult
from .node import Inbox, NodeContext, Protocol, ProtocolFactory
from .rng import derive_seed, fresh_master_seed, node_rng
from .vectorized import (
    VECTORIZED_WALK_STREAM,
    VectorizedUnsupported,
    graph_csr,
    run_vectorized_election,
    run_vectorized_known_tmix,
    vectorized_unsupported_reason,
)

__all__ = [
    "SimulationError",
    "CongestViolationError",
    "RoundLimitExceeded",
    "ProtocolError",
    "Message",
    "id_bits",
    "counter_bits",
    "id_set_bits",
    "word_bits_for",
    "MetricsCollector",
    "RunMetrics",
    "Network",
    "SimulationResult",
    "MessageObserver",
    "NodeContext",
    "Protocol",
    "Inbox",
    "ProtocolFactory",
    "derive_seed",
    "node_rng",
    "fresh_master_seed",
    "run_protocol",
    "FAULT_SEED_STREAM",
    "VECTORIZED_WALK_STREAM",
    "VectorizedUnsupported",
    "graph_csr",
    "run_vectorized_election",
    "run_vectorized_known_tmix",
    "vectorized_unsupported_reason",
]
