"""The sublinear election on complete graphs (Kutten et al. [25]).

On a clique, a node can reach a uniformly random node in one hop, so the
random-walk machinery degenerates to direct sampling: contenders message
``Theta(sqrt(n) log n)`` random ports, every contacted node ("referee")
replies with the largest contender id it has heard, and a contender elects
itself only if no reply exceeded its own id.  By the birthday paradox any two
contenders share a referee w.h.p., so at most one contender survives, and the
maximum-id contender always survives.  Cost: ``O(sqrt(n) log^{3/2} n)``
messages in ``O(1)`` rounds -- the clique-specific bound the paper generalises
to arbitrary well-connected graphs.
"""

from __future__ import annotations

import math
import warnings
from typing import Dict, List, Optional

from ..core.result import TrialOutcome, election_trial_outcome
from ..faults.plan import FaultPlan
from ..graphs.topology import Graph
from ..sim.harness import run_protocol
from ..sim.message import Message, id_bits
from ..sim.network import SimulationResult
from ..sim.node import Inbox, NodeContext, Protocol
from .flood_max import BaselineOutcome

__all__ = [
    "CliqueSublinearNode",
    "clique_sublinear_factory",
    "clique_sublinear_trial",
    "run_clique_sublinear_election",
]

PROBE = "probe"
REFEREE_REPLY = "referee_reply"


class CliqueSublinearNode(Protocol):
    """One node of the clique-specific sublinear election."""

    def __init__(self, ctx: NodeContext, c1: float = 2.0, c2: float = 1.0) -> None:
        super().__init__(ctx)
        n = ctx.known_n if ctx.known_n is not None else max(2, ctx.degree + 1)
        self.n = max(2, n)
        self.identifier = ctx.rng.randint(1, self.n**4)
        probability = min(1.0, c1 * math.log(self.n) / self.n)
        self.is_contender = ctx.rng.random() < probability
        self.num_probes = max(1, math.ceil(c2 * math.sqrt(self.n) * math.log(self.n)))
        self.best_heard = self.identifier if self.is_contender else 0
        self.best_referee_seen = 0
        self._id_bits = id_bits(self.n)
        self._probe_ports: List[int] = []

    def on_start(self) -> None:
        if not self.is_contender or self.ctx.degree == 0:
            return
        ports = list(self.ctx.ports)
        self.ctx.rng.shuffle(ports)
        self._probe_ports = ports[: min(self.num_probes, len(ports))]
        message = Message(
            kind=PROBE, payload={"value": self.identifier}, size_bits=self._id_bits
        )
        for port in self._probe_ports:
            self.ctx.send(port, message)

    def on_round(self, inbox: Inbox) -> None:
        probe_ports: List[int] = []
        for port, batch in inbox.items():
            for message in batch:
                value = message.payload["value"]
                if message.kind == PROBE:
                    self.best_referee_seen = max(self.best_referee_seen, value)
                    probe_ports.append(port)
                elif message.kind == REFEREE_REPLY:
                    self.best_heard = max(self.best_heard, value)
        # Referee behaviour: answer every probe with the largest contender id seen.
        if probe_ports:
            reply = Message(
                kind=REFEREE_REPLY,
                payload={"value": self.best_referee_seen},
                size_bits=self._id_bits,
            )
            for port in probe_ports:
                self.ctx.send(port, reply)

    def result(self) -> Dict[str, object]:
        return {
            "leader": self.is_contender and self.best_heard <= self.identifier,
            "contender": self.is_contender,
            "id": self.identifier,
        }


def clique_sublinear_factory(c1: float = 2.0, c2: float = 1.0):
    """Protocol factory for :class:`repro.sim.Network`."""

    def factory(ctx: NodeContext) -> CliqueSublinearNode:
        return CliqueSublinearNode(ctx, c1=c1, c2=c2)

    return factory


def _simulate(
    graph: Graph,
    c1: float,
    c2: float,
    seed: Optional[int],
    fault_plan: Optional[FaultPlan],
    max_rounds: int,
) -> SimulationResult:
    """One clique-sublinear run on the shared harness."""
    return run_protocol(
        graph,
        clique_sublinear_factory(c1=c1, c2=c2),
        seed=seed,
        port_stream=0x51,
        network_stream=0x52,
        fault_plan=fault_plan,
        max_rounds=max_rounds,
    )


def clique_sublinear_trial(
    graph: Graph,
    c1: float = 2.0,
    c2: float = 1.0,
    *,
    seed: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    max_rounds: int = 1_000,
) -> TrialOutcome:
    """Run the clique-specific baseline and return the unified outcome.

    Intended for complete graphs; a non-empty ``fault_plan`` runs the
    probe/referee exchange against that adversary (dropped replies make
    over-eager contenders elect themselves, which the classification
    reports as ``"multiple_leaders"``).
    """
    result = _simulate(graph, c1, c2, seed, fault_plan, max_rounds)
    return election_trial_outcome("clique_sublinear", result)


def run_clique_sublinear_election(
    graph: Graph,
    c1: float = 2.0,
    c2: float = 1.0,
    seed: Optional[int] = None,
    max_rounds: int = 1_000,
) -> BaselineOutcome:
    """Deprecated shim: the clique baseline as a :class:`BaselineOutcome`.

    .. deprecated::
        Use :func:`clique_sublinear_trial` (or
        ``TrialSpec(algorithm="clique_sublinear")`` through
        :mod:`repro.exec`); numbers are identical, only the envelope changed.
    """
    warnings.warn(
        "run_clique_sublinear_election is deprecated; use "
        "clique_sublinear_trial or the 'clique_sublinear' entry of the "
        "repro.exec algorithm registry",
        DeprecationWarning,
        stacklevel=2,
    )
    result = _simulate(graph, c1, c2, seed, None, max_rounds)
    leaders = result.nodes_with("leader", True)
    contenders = len(result.nodes_with("contender", True))
    return BaselineOutcome(
        num_nodes=graph.num_nodes,
        leaders=leaders,
        contenders=contenders,
        metrics=result.metrics,
    )
