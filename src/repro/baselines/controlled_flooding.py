"""Controlled-flooding election: the ``O(m log n)``-message randomised baseline.

This is the natural simplification of the Kutten et al. [24] message-optimal
algorithm: only ``Theta(log n)`` randomly self-nominated candidates flood
their ids (with improvement-only forwarding), so the expected message cost is
``O(m log n)`` rather than flood-max's ``O(m D)``.  It still pays ``Omega(m)``
on every graph, which is exactly the regime the paper's algorithm escapes on
well-connected topologies.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional

from ..core.result import TrialOutcome, election_trial_outcome
from ..faults.plan import FaultPlan
from ..graphs.topology import Graph
from ..sim.harness import run_protocol
from ..sim.message import Message, id_bits
from ..sim.network import SimulationResult
from ..sim.node import Inbox, NodeContext, Protocol
from .flood_max import BaselineOutcome

__all__ = [
    "ControlledFloodingNode",
    "controlled_flooding_factory",
    "controlled_flooding_trial",
    "run_controlled_flooding_election",
]

CANDIDATE_ID = "candidate_id"


class ControlledFloodingNode(Protocol):
    """Randomly self-nominated candidates flood their ids; the maximum wins."""

    def __init__(self, ctx: NodeContext, c1: float = 2.0) -> None:
        super().__init__(ctx)
        import math

        n = ctx.known_n if ctx.known_n is not None else 2
        self.identifier = ctx.rng.randint(1, max(4, n**4))
        probability = min(1.0, c1 * math.log(max(2, n)) / max(2, n))
        self.is_candidate = ctx.rng.random() < probability
        self.best_seen = self.identifier if self.is_candidate else 0
        self._id_bits = id_bits(max(2, n))

    def on_start(self) -> None:
        if self.is_candidate:
            self._broadcast(self.best_seen)

    def on_round(self, inbox: Inbox) -> None:
        improved = False
        for batch in inbox.values():
            for message in batch:
                candidate = message.payload["value"]
                if candidate > self.best_seen:
                    self.best_seen = candidate
                    improved = True
        if improved:
            self._broadcast(self.best_seen)

    def result(self) -> Dict[str, object]:
        return {
            "leader": self.is_candidate and self.best_seen == self.identifier,
            "contender": self.is_candidate,
            "id": self.identifier,
        }

    def _broadcast(self, value: int) -> None:
        message = Message(kind=CANDIDATE_ID, payload={"value": value}, size_bits=self._id_bits)
        for port in self.ctx.ports:
            self.ctx.send(port, message)


def controlled_flooding_factory(c1: float = 2.0):
    """Protocol factory for :class:`repro.sim.Network`."""

    def factory(ctx: NodeContext) -> ControlledFloodingNode:
        return ControlledFloodingNode(ctx, c1=c1)

    return factory


def _simulate(
    graph: Graph,
    c1: float,
    seed: Optional[int],
    fault_plan: Optional[FaultPlan],
    max_rounds: int,
) -> SimulationResult:
    """One controlled-flooding run on the shared harness."""
    return run_protocol(
        graph,
        controlled_flooding_factory(c1=c1),
        seed=seed,
        port_stream=0x31,
        network_stream=0x32,
        fault_plan=fault_plan,
        max_rounds=max_rounds,
    )


def controlled_flooding_trial(
    graph: Graph,
    c1: float = 2.0,
    *,
    seed: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    max_rounds: int = 1_000_000,
) -> TrialOutcome:
    """Run the controlled-flooding baseline and return the unified outcome.

    The zero-candidate case (probability ``n^{-c1}``) classifies
    ``"no_leader"``, mirroring the randomised guarantee; a non-empty
    ``fault_plan`` runs the flood against that adversary.
    """
    result = _simulate(graph, c1, seed, fault_plan, max_rounds)
    return election_trial_outcome("controlled_flooding", result)


def run_controlled_flooding_election(
    graph: Graph, c1: float = 2.0, seed: Optional[int] = None, max_rounds: int = 1_000_000
) -> BaselineOutcome:
    """Deprecated shim: controlled flooding as a :class:`BaselineOutcome`.

    .. deprecated::
        Use :func:`controlled_flooding_trial` (or
        ``TrialSpec(algorithm="controlled_flooding")`` through
        :mod:`repro.exec`); numbers are identical, only the envelope changed.
    """
    warnings.warn(
        "run_controlled_flooding_election is deprecated; use "
        "controlled_flooding_trial or the 'controlled_flooding' entry of the "
        "repro.exec algorithm registry",
        DeprecationWarning,
        stacklevel=2,
    )
    result = _simulate(graph, c1, seed, None, max_rounds)
    leaders = result.nodes_with("leader", True)
    contenders = len(result.nodes_with("contender", True))
    return BaselineOutcome(
        num_nodes=graph.num_nodes,
        leaders=leaders,
        contenders=contenders,
        metrics=result.metrics,
    )
