"""Array-based walk-phase engine for the election protocols.

The reference simulator (:mod:`repro.sim.network` driving
:class:`repro.core.leader_election.LeaderElectionNode`) treats every walk
token, message and round as a Python object.  That is the bit-exactness
oracle; this module is the throughput engine.  It executes the *same*
protocol -- Algorithm 1 identities, the guess-and-double schedule, the
report/distribute/collect converge-casts and the winner rules -- but drives
the lazy-random-walk segment as numpy array operations: token positions are
an int vector, one CSR neighbour-table gather moves every walk of every
contender per round, and coin flips come in bulk from a dedicated seed
stream.

Seed-stream contract
--------------------
Identities and contender nominations are drawn through the exact per-node
``random.Random`` streams the reference uses (``derive_seed(network_seed,
node_index)``), so both simulators see byte-identical ids and contender
sets.  Crash faults replicate the injector's stream chain, so both
simulators crash the same nodes at the same rounds.  Walk randomness,
however, comes from one ``numpy`` PCG64 generator seeded with
``derive_seed(network_seed, VECTORIZED_WALK_STREAM)`` -- a stream the
reference never touches.  The two simulators therefore agree on *who runs*
and *who crashes* but sample independent walk trajectories: equivalence is
at the outcome level (winners, classification, metric totals), never at the
per-message level, and trial fingerprints must keep the two apart (see
``repro.exec.fingerprint``).

Fallback rules
--------------
The engine refuses -- via :class:`VectorizedUnsupported` or the static
:func:`vectorized_unsupported_reason` check -- anything it cannot replicate
faithfully: message observers, retained simulations, strict congest mode,
and non-crash fault models.  Callers (``repro.core.runner`` /
``repro.baselines.known_tmix``) fall back to the reference simulator and
record the reason in the outcome's ``simulator`` tag.

Two deliberate approximations, both invisible at the outcome level the
equivalence suite pins: winner notifications are propagated against the
completed walk trees of the phase in which they fire (the reference
interleaves them with in-flight construction), and the heard-winner flag
piggybacked on ordinary messages spreads segment-by-segment rather than
round-interleaved across trees.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..faults.plan import FaultPlan
from ..graphs.topology import Graph
from ..obs.tracer import current_tracer
from .errors import ProtocolError
from .harness import FAULT_SEED_STREAM
from .message import counter_bits, id_bits, word_bits_for
from .metrics import RunMetrics
from .rng import derive_seed, fresh_master_seed

__all__ = [
    "VECTORIZED_WALK_STREAM",
    "VectorizedUnsupported",
    "vectorized_unsupported_reason",
    "graph_csr",
    "run_vectorized_election",
    "run_vectorized_known_tmix",
]

#: Stream id of the bulk walk generator (never drawn by the reference).
VECTORIZED_WALK_STREAM = 0xA77A9

_NEVER = 1 << 62

_FAULT_EVENT_KINDS = (
    "dropped",
    "duplicated",
    "delayed",
    "delay_rounds",
    "edge_dropped",
    "lost_to_crash",
)


class VectorizedUnsupported(Exception):
    """The vectorized engine cannot faithfully execute this configuration."""


def vectorized_unsupported_reason(
    fault_plan: Optional[FaultPlan] = None,
    observers: Tuple = (),
    keep_simulation: bool = False,
    congest_mode: str = "count",
) -> Optional[str]:
    """Why a trial must run on the reference simulator, or ``None`` if it may not.

    The static half of the fallback contract: anything detectable from the
    call signature alone is rejected here; data-dependent refusals (e.g.
    duplicate contender ids) surface as :class:`VectorizedUnsupported` at
    run time.
    """
    if observers:
        return "message observers require the reference simulator"
    if keep_simulation:
        return "keep_simulation retains per-node transcripts"
    if congest_mode != "count":
        return "strict congest mode requires the reference simulator"
    if fault_plan is not None and not fault_plan.is_empty:
        if not fault_plan.messages.is_empty:
            return "message fault models require the reference simulator"
        if not fault_plan.delays.is_empty:
            return "delay fault models require the reference simulator"
        if not fault_plan.edges.is_empty:
            return "edge fault models require the reference simulator"
    return None


def graph_csr(graph: Graph) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR neighbour table ``(indptr, indices, degrees)`` of ``graph``.

    Memoised on the graph instance and keyed by its mutation counter, the
    same invalidation convention as the edge-digest and mixing-time caches.
    Neighbour lists are sorted, matching ``Graph.neighbors``.
    """
    version = getattr(graph, "_mutations", None)
    cached = getattr(graph, "_csr_cache", None)
    if cached is not None and cached[0] == version:
        return cached[1], cached[2], cached[3]
    n = graph.num_nodes
    degrees = np.zeros(n, dtype=np.int64)
    chunks = []
    for v in range(n):
        nbrs = graph.neighbors(v)
        degrees[v] = len(nbrs)
        chunks.append(nbrs)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    if chunks and indptr[-1]:
        indices = np.concatenate([np.asarray(c, dtype=np.int64) for c in chunks if c])
    else:
        indices = np.zeros(0, dtype=np.int64)
    try:
        graph._csr_cache = (version, indptr, indices, degrees)
    except AttributeError:  # pragma: no cover - exotic graph wrappers
        pass
    return indptr, indices, degrees


def _crash_rounds(
    plan: Optional[FaultPlan],
    seed: int,
    n: int,
    phase_start_of,
) -> Dict[int, int]:
    """Replicate the injector's crash resolution byte-for-byte."""
    if plan is None or plan.is_empty or plan.crashes.is_empty:
        return {}
    crashes = plan.crashes
    base = derive_seed(derive_seed(seed, FAULT_SEED_STREAM), plan.seed_stream())
    crash_rng = random.Random(derive_seed(base, 2))
    if crashes.targets:
        targets = list(crashes.targets)
        for node in targets:
            if not 0 <= node < n:
                raise ValueError(
                    "crash target %d outside the %d-node network" % (node, n)
                )
    else:
        if crashes.count > n:
            raise ValueError("cannot crash %d of %d nodes" % (crashes.count, n))
        targets = sorted(crash_rng.sample(range(n), crashes.count))
    if crashes.at_round is not None:
        round_number = crashes.at_round
    elif crashes.at_phase is not None:
        round_number = phase_start_of(crashes.at_phase)
    else:
        round_number = 0
    return {node: round_number for node in targets}


class _Metrics:
    """Bulk-friendly stand-in for the reference MetricsCollector."""

    def __init__(self, word_bits: int, track_edges: bool) -> None:
        self.word_bits = word_bits
        self.messages = 0
        self.message_units = 0
        self.bits = 0
        self.by_kind: Dict[str, int] = {}
        self.units_by_kind: Dict[str, int] = {}
        self.edge_bits: Optional[Dict[Tuple[int, int, int], int]] = (
            {} if track_edges else None
        )

    def record(self, kind: str, size_bits: int, rnd: int, u: int, v: int) -> None:
        units = max(1, -(-size_bits // self.word_bits))
        self.messages += 1
        self.message_units += units
        self.bits += size_bits
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        self.units_by_kind[kind] = self.units_by_kind.get(kind, 0) + units
        if self.edge_bits is not None:
            key = (rnd, u, v)
            self.edge_bits[key] = self.edge_bits.get(key, 0) + size_bits

    def record_bulk(
        self,
        kind: str,
        sizes: np.ndarray,
        rnd: int,
        src: np.ndarray,
        dst: np.ndarray,
    ) -> None:
        count = int(sizes.size)
        if not count:
            return
        units = np.maximum(1, (sizes + self.word_bits - 1) // self.word_bits)
        self.messages += count
        self.message_units += int(units.sum())
        self.bits += int(sizes.sum())
        self.by_kind[kind] = self.by_kind.get(kind, 0) + count
        self.units_by_kind[kind] = self.units_by_kind.get(kind, 0) + int(units.sum())
        if self.edge_bits is not None:
            for u, v, s in zip(src.tolist(), dst.tolist(), sizes.tolist()):
                key = (rnd, u, v)
                self.edge_bits[key] = self.edge_bits.get(key, 0) + s


def _bit_lengths(values: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length`` for positive integers."""
    return np.frexp(values.astype(np.float64))[1].astype(np.int64)


def _run_engine(
    graph: Graph,
    params,
    seed: Optional[int],
    known_n: Optional[int],
    assumed_n: Optional[int],
    max_rounds: int,
    edge_capacity_words: Optional[int],
    fault_plan: Optional[FaultPlan],
    network_stream: int,
    decide_rule: str,
):
    from ..core.result import ElectionOutcome
    from ..core.schedule import PhaseSchedule

    n = graph.num_nodes
    if seed is None:
        seed = fresh_master_seed()
    network_seed = derive_seed(seed, network_stream)
    resolved = n if known_n == -1 else known_n
    n_eff = resolved if resolved is not None else assumed_n
    if n_eff is None:
        raise ProtocolError(
            "the algorithm requires knowledge of n (pass assumed_n to override)"
        )

    schedule = PhaseSchedule(params)
    crash_map = _crash_rounds(
        fault_plan, seed, n, lambda index: schedule.window(index).start
    )
    crash = np.full(n, _NEVER, dtype=np.int64)
    for node, rnd in crash_map.items():
        crash[node] = rnd
    has_faults = fault_plan is not None and not fault_plan.is_empty

    # Algorithm 1: byte-identical identities and nominations.  Identifiers
    # live in a plain list -- id_space is n^4 and overflows int64 past
    # n ~ 55k, and the engine only ever reads them as Python scalars.
    ids: List[int] = [0] * n
    contender = np.zeros(n, dtype=bool)
    for i in range(n):
        rng = random.Random(derive_seed(network_seed, i))
        ids[i] = rng.randint(1, params.id_space(n_eff))
        contender[i] = rng.random() < params.contender_probability(n_eff)
    contender_nodes = [int(v) for v in np.nonzero(contender)[0]]
    if len({int(ids[v]) for v in contender_nodes}) < len(contender_nodes):
        raise VectorizedUnsupported(
            "duplicate contender identifiers alias their walk trees"
        )
    id_to_contender = {int(ids[v]): v for v in contender_nodes}

    wrng = np.random.Generator(
        np.random.PCG64(derive_seed(network_seed, VECTORIZED_WALK_STREAM))
    )
    indptr, indices, degrees = graph_csr(graph)
    WB = word_bits_for(n)
    IDB = id_bits(n_eff)
    metrics = _Metrics(WB, edge_capacity_words is not None)
    walks_per = params.num_walks(n_eff)

    learn = np.full(n, _NEVER, dtype=np.int64)  # round each node heard a winner
    proxy_for: List[Set[int]] = [set() for _ in range(n)]
    latest_phase: List[Dict[int, int]] = [{} for _ in range(n)]
    rules_fired = np.zeros(n, dtype=bool)

    # Per-contender protocol state (mirrors LeaderElectionNode fields).
    state = {
        v: {
            "stopped": False,
            "stopped_on_winner": False,
            "forced_stop": False,
            "leader": False,
            "phases": 0,
            "final_walk_length": 0,
            "current_phase": -1,
            "adjacency": set(),
            "i4": set(),
            "distinct": 0,
            "sat_int": False,
            "sat_dis": False,
        }
        for v in contender_nodes
    }

    # Retained per-(contender node, phase) trees for the winner cascade.
    trees: Dict[Tuple[int, int], Dict[str, object]] = {}
    wdf: Set[Tuple[int, int, int]] = set()  # (node, origin node, phase) winner-down sent
    wus: Set[Tuple[int, int, int]] = set()  # (node, origin node, phase) winner-up sent

    last_activity = 0
    clock = 0
    completed = True
    lost_to_crash = 0
    leaders: List[int] = []

    def act(r: int) -> None:
        nonlocal last_activity, clock
        if r > last_activity:
            last_activity = r
        if r > clock:
            clock = r

    def tick(r: int) -> None:
        nonlocal clock
        if r > clock:
            clock = min(r, max_rounds)

    def knows(v: int, r: int) -> bool:
        return int(learn[v]) <= r

    # ------------------------------------------------------------ winner cascade
    events: List[Tuple[int, int, str, int, int, int]] = []
    seq = 0

    def push(r: int, kind: str, node: int, origin: int, phase: int) -> None:
        nonlocal seq
        heapq.heappush(events, (r, seq, kind, node, origin, phase))
        seq += 1

    def winner_size(phase: int) -> int:
        return 2 * IDB + counter_bits(max(1, phase)) + 1

    def flood_down(origin: int, phase: int, node: int, r: int) -> None:
        """Forward winner-down over ``node``'s forward edges of one tree."""
        nonlocal completed
        tree = trees.get((origin, phase))
        if tree is None:
            return
        key = (node, origin, phase)
        if key in wdf:
            return
        wdf.add(key)
        size = winner_size(phase)
        for target in tree["fwd"].get(node, ()):  # type: ignore[union-attr]
            metrics.record("winner_down", size, r, node, target)
            a = r + 1
            if a > max_rounds:
                completed = False
                continue
            if crash[target] <= a:
                if has_faults:
                    nonlocal_lost(1)
                continue
            push(a, "down", target, origin, phase)

    def send_up(origin: int, phase: int, node: int, r: int) -> None:
        """Relay winner-up one hop towards ``origin`` along its tree."""
        nonlocal completed
        tree = trees.get((origin, phase))
        if tree is None:
            return
        parent = int(tree["parent"][node])  # type: ignore[index]
        if parent < 0:
            return
        key = (node, origin, phase)
        if key in wus:
            return
        wus.add(key)
        size = winner_size(phase)
        metrics.record("winner_up", size, r, node, parent)
        a = r + 1
        if a > max_rounds:
            completed = False
            return
        if crash[parent] <= a:
            if has_faults:
                nonlocal_lost(1)
            return
        push(a, "up", parent, origin, phase)

    def nonlocal_lost(k: int) -> None:
        nonlocal lost_to_crash
        lost_to_crash += k

    def fire_rules(v: int, r: int) -> None:
        """Algorithm 2 lines 6-7, once per node (reference _fire_winner_rules)."""
        if rules_fired[v]:
            return
        rules_fired[v] = True
        # Rule 6: a proxy notifies every contender it serves.
        for origin_id in sorted(proxy_for[v]):
            if origin_id == int(ids[v]):
                continue
            phase = latest_phase[v].get(origin_id)
            if phase is None:
                continue
            origin = id_to_contender.get(origin_id)
            if origin is None:
                continue
            send_up(origin, phase, v, r)
        # Rule 7: a contender notifies all of its proxies.
        if contender[v]:
            current = state[v]["current_phase"]
            if current >= 0:
                flood_down(v, int(current), v, r)

    def drain_events() -> None:
        while events:
            r, _s, kind, node, origin, phase = heapq.heappop(events)
            act(r)
            if int(learn[node]) > r:
                learn[node] = r
            if kind == "down":
                flood_down(origin, phase, node, r)
                fire_rules(node, r)
            else:  # winner-up
                if int(ids[node]) == int(ids[origin]) and contender[node]:
                    fire_rules(node, r)
                    continue
                send_up(origin, phase, node, r)
                fire_rules(node, r)

    # ----------------------------------------------------------------- phases
    active = [v for v in contender_nodes if crash[v] > 0]
    phase = 0
    max_walk_cap = params.walk_length_cap(n_eff)
    # Resolved once per run: tracing is write-only (bulk per-phase counters),
    # so the engine's seed streams and outputs are identical traced or not.
    tracer = current_tracer()
    traced = tracer.enabled
    if traced:
        tracer.event(
            "vec.run_started", n=n, contenders=len(active), faulty=has_faults
        )
    while active:
        window = schedule.window(phase)
        begin = max(1, window.start)
        tick(begin)
        if begin > max_rounds:
            completed = False
            break
        starters = [v for v in active if crash[v] > begin]
        active = starters
        if not starters:
            break
        L = window.walk_length
        start = window.start
        report_start = window.report_start
        distribute_start = window.distribute_start
        collect_start = window.collect_start
        decide_round = window.decide_round

        S = len(starters)
        starters_arr = np.asarray(starters, dtype=np.int64)
        off = np.full((S, n), -1, dtype=np.int64)
        par = np.full((S, n), -1, dtype=np.int64)
        proxies = np.zeros((S, n), dtype=np.int64)
        off[np.arange(S), starters_arr] = 0
        fwd_own: List[np.ndarray] = []
        fwd_src: List[np.ndarray] = []
        fwd_dst: List[np.ndarray] = []

        for s, v in enumerate(starters):
            st = state[v]
            st["phases"] += 1
            st["final_walk_length"] = L
            st["current_phase"] = phase
            st["distinct"] = 0
            latest_phase[v][int(ids[v])] = phase

        # ---------------------------------------------------- WALK (vectorized)
        owners = np.repeat(np.arange(S, dtype=np.int64), walks_per)
        pos = np.repeat(starters_arr, walks_per)
        cap_hit_mid_walk = False
        for t in range(1, L + 1):
            r = begin + t - 1
            if r > max_rounds:
                completed = False
                cap_hit_mid_walk = True
                pos = pos[:0]
                owners = owners[:0]
                break
            alive_tok = crash[pos] > r
            if not alive_tok.all():
                tick(r)
                pos = pos[alive_tok]
                owners = owners[alive_tok]
            if pos.size == 0:
                break
            act(r)
            coins = wrng.random(pos.size)
            degp = degrees[pos]
            move = (coins >= 0.5) & (degp > 0)
            stay_pos = pos[~move]
            stay_own = owners[~move]
            if move.any():
                msrc = pos[move]
                mown = owners[move]
                ports = (wrng.random(msrc.size) * degrees[msrc]).astype(np.int64)
                np.minimum(ports, degrees[msrc] - 1, out=ports)
                mdst = indices[indptr[msrc] + ports]
                key = (mown * n + msrc) * n + mdst
                order = np.argsort(key, kind="stable")
                _uniq, first, counts = np.unique(
                    key[order], return_index=True, return_counts=True
                )
                g_own = mown[order][first]
                g_src = msrc[order][first]
                g_dst = mdst[order][first]
                sizes = (
                    IDB
                    + counter_bits(t)
                    + counter_bits(max(1, phase))
                    + 1
                    + _bit_lengths(counts)
                )
                metrics.record_bulk("walk_token", sizes, r, g_src, g_dst)
                fwd_own.append(g_own)
                fwd_src.append(g_src)
                fwd_dst.append(g_dst)
                if r + 1 > max_rounds:
                    completed = False
                    cap_hit_mid_walk = True
                    delivered_tok = np.zeros(mdst.size, dtype=bool)
                else:
                    g_alive = crash[g_dst] > r + 1
                    if has_faults:
                        lost_to_crash += int((~g_alive).sum())
                    delivered_tok = crash[mdst] > r + 1
                    if g_alive.any():
                        act(r + 1)
                        d_own = g_own[g_alive]
                        d_src = g_src[g_alive]
                        d_dst = g_dst[g_alive]
                        flagged = learn[d_src] <= r
                        if flagged.any():
                            np.minimum.at(learn, d_dst[flagged], r + 1)
                        ordr = np.lexsort((d_src, d_own * n + d_dst))
                        o2 = d_own[ordr]
                        s2 = d_src[ordr]
                        dd2 = d_dst[ordr]
                        pairkey = o2 * n + dd2
                        firstmask = np.ones(pairkey.size, dtype=bool)
                        firstmask[1:] = pairkey[1:] != pairkey[:-1]
                        fo = o2[firstmask]
                        fs = s2[firstmask]
                        fd = dd2[firstmask]
                        new = off[fo, fd] == -1
                        offset_val = max(1, (r + 1) - start)
                        off[fo[new], fd[new]] = offset_val
                        par[fo[new], fd[new]] = fs[new]
                pos = np.concatenate([stay_pos, mdst[delivered_tok]])
                owners = np.concatenate([stay_own, mown[delivered_tok]])
            else:
                pos = stay_pos
                owners = stay_own
            if t == L:
                if pos.size:
                    np.add.at(proxies, (owners, pos), 1)
                pos = pos[:0]
                owners = owners[:0]
                break
            if cap_hit_mid_walk:
                break

        # Tree bookkeeping shared by the exchange segments and the cascade.
        if fwd_own:
            all_own = np.concatenate(fwd_own)
            all_src = np.concatenate(fwd_src)
            all_dst = np.concatenate(fwd_dst)
            tri = np.unique(
                np.stack([all_own, all_src, all_dst], axis=1), axis=0
            )
        else:
            tri = np.zeros((0, 3), dtype=np.int64)
        fwd_maps: List[Dict[int, List[int]]] = [dict() for _ in range(S)]
        for o, u, v in tri.tolist():
            fwd_maps[o].setdefault(u, []).append(v)
        members_of: List[np.ndarray] = []
        for s, v in enumerate(starters):
            members = np.nonzero(off[s] >= 0)[0]
            members_of.append(members)
            idk = int(ids[v])
            for m in members.tolist():
                latest_phase[m][idk] = phase
            prox_nodes = np.nonzero(proxies[s] > 0)[0]
            for m in prox_nodes.tolist():
                proxy_for[m].add(idk)
            trees[(v, phase)] = {
                "parent": par[s],
                "fwd": fwd_maps[s],
                "origin": v,
            }

        if cap_hit_mid_walk:
            break

        phase_bits = counter_bits(max(1, phase))

        # ------------------------------------------------------------- REPORT
        for s, origin in enumerate(starters):
            idk = int(ids[origin])
            members = members_of[s]
            offs = off[s][members]
            order = np.lexsort((members, -offs))
            buf_ids: Dict[int, Set[int]] = {}
            buf_distinct: Dict[int, int] = {}
            buf_proxies: Dict[int, int] = {}
            r_of: Dict[int, int] = {}
            for m, o in zip(members.tolist(), offs.tolist()):
                r_of[m] = report_start + max(0, L - o)
            st = state[origin]
            for idx in order.tolist():
                v = int(members[idx])
                if v == origin:
                    continue
                r_v = r_of[v]
                tick(r_v)
                if r_v > max_rounds:
                    completed = False
                    continue
                if crash[v] <= r_v:
                    continue
                act(r_v)
                v_ids = buf_ids.get(v, set())
                v_distinct = buf_distinct.get(v, 0)
                v_proxies = buf_proxies.get(v, 0)
                if proxies[s][v] > 0:
                    v_ids |= {o for o in proxy_for[v] if o != idk}
                    if proxies[s][v] == 1:
                        v_distinct += 1
                    v_proxies += int(proxies[s][v])
                v_knows = knows(v, r_v)
                if not v_ids and v_distinct == 0 and not v_knows:
                    continue
                size = (
                    IDB
                    + len(v_ids) * IDB
                    + counter_bits(max(1, v_distinct))
                    + counter_bits(max(1, v_proxies))
                    + phase_bits
                    + 1
                )
                parent = int(par[s][v])
                metrics.record("report", size, r_v, v, parent)
                a = r_v + 1
                if a > max_rounds:
                    completed = False
                    continue
                if crash[parent] <= a:
                    if has_faults:
                        lost_to_crash += 1
                    continue
                act(a)
                if v_knows and int(learn[parent]) > a:
                    learn[parent] = a
                if parent == origin:
                    st["adjacency"] |= v_ids
                    st["distinct"] += v_distinct
                elif a <= r_of.get(parent, -1):
                    buf_ids.setdefault(parent, set()).update(v_ids)
                    buf_distinct[parent] = buf_distinct.get(parent, 0) + v_distinct
                    buf_proxies[parent] = buf_proxies.get(parent, 0) + v_proxies

        # --------------------------------------------------------- DISTRIBUTE
        i2_acc: Dict[int, Set[int]] = {}
        for s, origin in enumerate(starters):
            tick(distribute_start)
            if distribute_start > max_rounds:
                completed = False
                continue
            if crash[origin] <= distribute_start:
                continue
            act(distribute_start)
            st = state[origin]
            i2 = set(st["adjacency"])
            if not i2:
                continue
            if proxies[s][origin] > 0:
                i2_acc.setdefault(origin, set()).update(i2)
            size = IDB + len(i2) * IDB + phase_bits + 1
            fwd = fwd_maps[s]
            forwarded = {origin}
            frontier = [(distribute_start, origin)]
            while frontier:
                t_r, u = frontier.pop(0)
                u_knows = knows(u, t_r)
                for target in fwd.get(u, ()):
                    metrics.record("distribute", size, t_r, u, target)
                    a = t_r + 1
                    if a > max_rounds:
                        completed = False
                        continue
                    if crash[target] <= a:
                        if has_faults:
                            lost_to_crash += 1
                        continue
                    act(a)
                    if u_knows and int(learn[target]) > a:
                        learn[target] = a
                    if off[s][target] >= 0:
                        if proxies[s][target] > 0:
                            i2_acc.setdefault(target, set()).update(i2)
                        if target not in forwarded:
                            forwarded.add(target)
                            frontier.append((a, target))

        # ------------------------------------------------------------ COLLECT
        for s, origin in enumerate(starters):
            members = members_of[s]
            offs = off[s][members]
            order = np.lexsort((members, -offs))
            cbuf: Dict[int, Set[int]] = {}
            c_of: Dict[int, int] = {}
            for m, o in zip(members.tolist(), offs.tolist()):
                c_of[m] = collect_start + max(0, L - o)
            st = state[origin]
            for idx in order.tolist():
                v = int(members[idx])
                if v == origin:
                    continue
                c_v = c_of[v]
                tick(c_v)
                if c_v > max_rounds:
                    completed = False
                    continue
                if crash[v] <= c_v:
                    continue
                act(c_v)
                payload = cbuf.get(v, set())
                if proxies[s][v] > 0:
                    payload = payload | i2_acc.get(v, set())
                v_knows = knows(v, c_v)
                if not payload and not v_knows:
                    continue
                size = IDB + len(payload) * IDB + phase_bits + 1
                parent = int(par[s][v])
                metrics.record("collect", size, c_v, v, parent)
                a = c_v + 1
                if a > max_rounds:
                    completed = False
                    continue
                if crash[parent] <= a:
                    if has_faults:
                        lost_to_crash += 1
                    continue
                act(a)
                if v_knows and int(learn[parent]) > a:
                    learn[parent] = a
                if parent == origin:
                    st["i4"] |= payload
                elif a <= c_of.get(parent, -1):
                    cbuf.setdefault(parent, set()).update(payload)

        # ------------------------------------------------------------- DECIDE
        tick(decide_round)
        if decide_round > max_rounds:
            completed = False
            break
        survivors: List[int] = []
        for s, origin in enumerate(starters):
            if crash[origin] <= decide_round:
                continue
            act(decide_round)
            st = state[origin]
            idk = int(ids[origin])
            if proxies[s][origin] > 0:
                own_ids = {o for o in proxy_for[origin] if o != idk}
                st["adjacency"] |= own_ids
                if proxies[s][origin] == 1:
                    st["distinct"] += 1
            heard = knows(origin, decide_round)
            if decide_rule == "known_tmix":
                st["stopped"] = True
                st["sat_int"] = True
                st["sat_dis"] = True
                competitors = st["i4"] | st["adjacency"]
                if all(idk >= other for other in competitors) and not heard:
                    st["leader"] = True
                    leaders.append(origin)
                    if int(learn[origin]) > decide_round:
                        learn[origin] = decide_round
                    flood_down(origin, phase, origin, decide_round)
                continue
            adjacency = len(st["adjacency"] - {idk})
            intersection_ok = adjacency >= params.intersection_threshold(n_eff)
            distinctness_ok = st["distinct"] >= params.distinctness_threshold(n_eff)
            st["sat_int"] = intersection_ok
            st["sat_dis"] = distinctness_ok
            hit_cap = L >= max_walk_cap
            if heard and not (intersection_ok and distinctness_ok):
                st["stopped"] = True
                st["stopped_on_winner"] = True
                continue
            if not (intersection_ok and distinctness_ok) and not hit_cap:
                survivors.append(origin)
                continue
            st["stopped"] = True
            st["forced_stop"] = hit_cap and not (intersection_ok and distinctness_ok)
            may_elect = (intersection_ok and distinctness_ok) or (
                st["forced_stop"] and params.elect_on_forced_stop
            )
            competitors = st["i4"] | st["adjacency"]
            if may_elect and all(idk >= other for other in competitors) and not heard:
                st["leader"] = True
                leaders.append(origin)
                if int(learn[origin]) > decide_round:
                    learn[origin] = decide_round
                flood_down(origin, phase, origin, decide_round)

        drain_events()
        if traced:
            tracer.event(
                "vec.phase",
                phase=phase,
                starters=S,
                walk_length=int(L),
                survivors=len(survivors),
                leaders=len(leaders),
                messages=metrics.messages,
                message_units=metrics.message_units,
            )
        if decide_rule == "known_tmix":
            active = []
            break
        active = survivors
        phase += 1

    # -------------------------------------------------------------- outcome
    max_edge_bits = 0
    congestion_events = 0
    if metrics.edge_bits is not None and edge_capacity_words is not None:
        capacity_bits = edge_capacity_words * WB
        for load in metrics.edge_bits.values():
            if load > max_edge_bits:
                max_edge_bits = load
            if load > capacity_bits:
                congestion_events += 1
    fault_events: Dict[str, int] = {}
    crashed_list: List[int] = []
    if has_faults:
        crashed_list = sorted(
            node for node, rnd in crash_map.items() if rnd <= clock
        )
        fault_events = {kind: 0 for kind in _FAULT_EVENT_KINDS}
        fault_events["lost_to_crash"] = lost_to_crash
        fault_events["crashed_nodes"] = len(crashed_list)
    run_metrics = RunMetrics(
        rounds=last_activity,
        messages=metrics.messages,
        message_units=metrics.message_units,
        bits=metrics.bits,
        messages_by_kind=dict(metrics.by_kind),
        units_by_kind=dict(metrics.units_by_kind),
        max_edge_bits_in_round=max_edge_bits,
        congestion_events=congestion_events,
        completed=completed,
        fault_events=fault_events,
    )
    forced = any(state[v]["forced_stop"] for v in contender_nodes)
    max_phases = max((state[v]["phases"] for v in contender_nodes), default=0)
    final_walk = max(
        (state[v]["final_walk_length"] for v in contender_nodes), default=0
    )
    return ElectionOutcome(
        num_nodes=n,
        leaders=sorted(leaders),
        contenders=contender_nodes,
        metrics=run_metrics,
        forced_stop=bool(forced),
        max_phases=int(max_phases),
        final_walk_length=int(final_walk),
        simulation=None,
        crashed_nodes=crashed_list,
        simulator="vectorized",
    )


def run_vectorized_election(
    graph: Graph,
    params=None,
    seed: Optional[int] = None,
    known_n: Optional[int] = -1,
    assumed_n: Optional[int] = None,
    max_rounds: int = 10_000_000,
    edge_capacity_words: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
):
    """Vectorized counterpart of :func:`repro.core.runner.run_leader_election`.

    Raises :class:`VectorizedUnsupported` for configurations outside the
    engine's contract (see module docstring); callers are expected to fall
    back to the reference simulator.
    """
    from ..core.params import DEFAULT_PARAMETERS

    if params is None:
        params = DEFAULT_PARAMETERS
    reason = vectorized_unsupported_reason(fault_plan=fault_plan)
    if reason is not None:
        raise VectorizedUnsupported(reason)
    return _run_engine(
        graph,
        params,
        seed,
        known_n,
        assumed_n,
        max_rounds,
        edge_capacity_words,
        fault_plan,
        network_stream=0xA11CE,
        decide_rule="election",
    )


def run_vectorized_known_tmix(
    graph: Graph,
    mixing_time: int,
    params=None,
    safety_factor: float = 1.0,
    seed: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    max_rounds: int = 1_000_000,
):
    """Vectorized counterpart of :func:`repro.baselines.known_tmix.simulate_known_tmix`.

    Pins the walk length to ``max(1, round(safety_factor * mixing_time))``
    and runs one oracle-length phase under the [25] decision rule, on the
    baseline's historical network stream (``0x42``).
    """
    from ..core.params import DEFAULT_PARAMETERS

    if params is None:
        params = DEFAULT_PARAMETERS
    reason = vectorized_unsupported_reason(fault_plan=fault_plan)
    if reason is not None:
        raise VectorizedUnsupported(reason)
    walk_length = max(1, round(safety_factor * mixing_time))
    pinned = params.with_overrides(initial_walk_length=walk_length)
    return _run_engine(
        graph,
        pinned,
        seed,
        -1,
        None,
        max_rounds,
        None,
        fault_plan,
        network_stream=0x42,
        decide_rule="known_tmix",
    )
