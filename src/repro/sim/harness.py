"""Shared protocol-execution harness: build a network, optionally faulty, run it.

Every algorithm in this repository executes the same way: port-number the
graph, derive independent seed streams for ports and node randomness, wire a
protocol factory into a :class:`~repro.sim.network.Network`, and -- when a
:class:`~repro.faults.plan.FaultPlan` is present -- attach a
:class:`~repro.faults.injector.FaultInjector` whose randomness derives from
``derive_seed(seed, FAULT_SEED_STREAM)``.  :func:`run_protocol` is that recipe
as one function, so the paper's election, the four baselines and the three
broadcast substrates all thread the pluggable fault hook identically and
therefore replay bit-for-bit from ``(seed, plan)`` under the parallel batch
runner.

Per-algorithm ``port_stream`` / ``network_stream`` ids keep the historical
seed-derivation conventions: every algorithm draws its port numbering and node
randomness from the exact streams it always used, so refactoring onto this
harness changed no number anywhere.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence

from ..graphs.ports import PortNumberedGraph
from ..graphs.topology import Graph
from .network import MessageObserver, Network, SimulationResult
from .node import ProtocolFactory
from .rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - avoids a sim->faults import cycle
    from ..faults.plan import FaultPlan

__all__ = ["run_protocol", "FAULT_SEED_STREAM"]

#: Stream id separating fault randomness from port/network randomness (the
#: convention :func:`repro.core.runner.build_election_network` established).
FAULT_SEED_STREAM = 0xFA075


def run_protocol(
    graph: Graph,
    protocol_factory: ProtocolFactory,
    *,
    seed: Optional[int],
    port_stream: int,
    network_stream: int,
    fault_plan: Optional["FaultPlan"] = None,
    phase_start_of: Optional[Callable[[int], int]] = None,
    known_n: Optional[int] = -1,
    observers: Sequence[MessageObserver] = (),
    max_rounds: int = 1_000_000,
) -> SimulationResult:
    """Run one protocol on ``graph`` and return the raw simulation result.

    ``port_stream``/``network_stream`` are the algorithm's historical seed
    stream ids (port numbering and per-node randomness respectively).  A
    non-empty ``fault_plan`` runs the protocol against that adversary with
    randomness derived from ``(seed, FAULT_SEED_STREAM)``; an empty or absent
    plan keeps the exact fault-free code path.  ``phase_start_of`` resolves
    ``CrashFaults.at_phase`` boundaries and is only meaningful for protocols
    with a guess-and-double schedule -- phase-anchored plans against other
    protocols raise at injector attach time rather than silently misfiring.
    """
    port_graph = PortNumberedGraph(
        graph, seed=None if seed is None else derive_seed(seed, port_stream)
    )
    injector = None
    if fault_plan is not None and not fault_plan.is_empty:
        from ..faults.injector import FaultInjector

        injector = FaultInjector(
            fault_plan,
            master_seed=None if seed is None else derive_seed(seed, FAULT_SEED_STREAM),
            phase_start_of=phase_start_of,
        )
    network = Network(
        port_graph,
        protocol_factory,
        seed=None if seed is None else derive_seed(seed, network_stream),
        known_n=known_n,
        observers=observers,
        fault_injector=injector,
    )
    return network.run(max_rounds=max_rounds)
