"""The clique communication graph ``CG`` (Section 4.1) as a live tracker.

``CG`` has one vertex per clique of the lower-bound graph and an edge from
clique ``C1`` to ``C2`` as soon as a message crosses an inter-clique edge
between them.  The lower-bound proof argues about the number of edges of
``CG`` (Lemma 19), its connected components remaining disjoint (Lemma 20) and
which cliques are *spontaneous* (send an inter-clique message before receiving
one).  This tracker plugs into the simulator as a message observer and exposes
exactly those quantities, turning the proof's bookkeeping into measurements.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set

from ..sim.message import Message

__all__ = ["CliqueCommunicationTracker"]


class CliqueCommunicationTracker:
    """Message observer that maintains the clique communication graph."""

    def __init__(self, node_to_clique: Sequence[int]) -> None:
        self._node_to_clique = list(node_to_clique)
        num_cliques = (max(self._node_to_clique) + 1) if self._node_to_clique else 0
        self._num_cliques = num_cliques
        self._edges: Set[FrozenSet[int]] = set()
        self._messages_by_clique: List[int] = [0] * num_cliques
        self._inter_clique_messages = 0
        self._first_inter_send: Dict[int, int] = {}
        self._first_inter_receive: Dict[int, int] = {}

    # --------------------------------------------------------------- observer
    def __call__(self, round_number: int, sender: int, receiver: int, message: Message) -> None:
        sender_clique = self._node_to_clique[sender]
        receiver_clique = self._node_to_clique[receiver]
        self._messages_by_clique[sender_clique] += 1
        if sender_clique == receiver_clique:
            return
        self._inter_clique_messages += 1
        self._edges.add(frozenset((sender_clique, receiver_clique)))
        self._first_inter_send.setdefault(sender_clique, round_number)
        self._first_inter_receive.setdefault(receiver_clique, round_number)

    # ----------------------------------------------------------------- queries
    @property
    def num_cliques(self) -> int:
        return self._num_cliques

    @property
    def num_edges(self) -> int:
        """Number of edges of the clique communication graph (Lemma 19's quantity)."""
        return len(self._edges)

    def edges(self) -> List[FrozenSet[int]]:
        """The edges of ``CG`` discovered so far."""
        return sorted(self._edges, key=sorted)

    @property
    def inter_clique_messages(self) -> int:
        """Total messages that crossed any inter-clique edge."""
        return self._inter_clique_messages

    def messages_sent_by_clique(self, clique: int) -> int:
        """Messages sent by nodes of ``clique`` (Lemma 18's ``Msgs(C)``)."""
        return self._messages_by_clique[clique]

    def total_messages(self) -> int:
        """Total messages observed (equals the run's message count)."""
        return sum(self._messages_by_clique)

    def spontaneous_cliques(self) -> Set[int]:
        """Cliques whose first inter-clique *send* precedes any inter-clique receive."""
        spontaneous = set()
        for clique, send_round in self._first_inter_send.items():
            receive_round = self._first_inter_receive.get(clique)
            if receive_round is None or send_round <= receive_round:
                spontaneous.add(clique)
        return spontaneous

    def connected_components(self) -> List[Set[int]]:
        """Connected components of ``CG`` (singletons included)."""
        parent = list(range(self._num_cliques))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        for edge in self._edges:
            a, b = tuple(edge)
            union(a, b)
        components: Dict[int, Set[int]] = {}
        for clique in range(self._num_cliques):
            components.setdefault(find(clique), set()).add(clique)
        return list(components.values())

    def non_singleton_components(self) -> List[Set[int]]:
        """Components of ``CG`` that contain at least one edge."""
        return [c for c in self.connected_components() if len(c) > 1]

    def disjointness_holds(self) -> bool:
        """The event ``Disj`` of Lemma 20: every component has at most one spontaneous clique."""
        spontaneous = self.spontaneous_cliques()
        for component in self.connected_components():
            if len(component & spontaneous) > 1:
                return False
            if len(component) > 1 and not (component & spontaneous):
                return False
        return True
