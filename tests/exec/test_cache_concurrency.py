"""Concurrency and crash-safety tests for the SQLite cache backend.

The backend's contract for multi-machine (and multi-process-per-machine)
campaigns: concurrent writers on one database lose nothing, a SIGKILL in the
middle of a write burst leaves the store readable (every landed entry intact,
the in-flight one simply absent), and resuming a killed campaign re-executes
exactly the trials whose results never landed -- never a completed one.

All child processes run through ``sys.executable`` with the repo's ``src``
on ``PYTHONPATH``, so these tests exercise true OS-level concurrency, not
threads sharing one connection.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import CampaignRunner
from repro.exec import ResultCache

#: Campaign used by the kill/resume tests.  The child process builds the
#: identical spec by executing this same snippet, so parent and child agree
#: on every fingerprint by construction.
CAMPAIGN_SNIPPET = """
from repro.campaign import CampaignSpec
from repro.core import ElectionParameters
from repro.exec import GraphSpec, SweepSpec, TrialSpec

campaign = CampaignSpec(
    name="chaos",
    sweeps=(
        SweepSpec(
            name="main",
            configs=(
                TrialSpec(
                    graph=GraphSpec("clique", (16,)),
                    algorithm="election",
                    params=ElectionParameters(c1=3.0, c2=0.5),
                ),
            ),
            trials=60,
            base_seed=3,
        ),
    ),
)
"""

WRITER_SCRIPT = """
import sys

from repro.core import ElectionParameters
from repro.exec import GraphSpec, ResultCache, TrialSpec, execute_trial

worker, count, root = int(sys.argv[1]), int(sys.argv[2]), sys.argv[3]
spec = TrialSpec(
    graph=GraphSpec("clique", (8,)),
    algorithm="election",
    params=ElectionParameters(c1=3.0, c2=0.5),
    seed=worker,
)
outcome = execute_trial(spec)
cache = ResultCache(root, backend="sqlite")
for index in range(count):
    # 64-hex synthetic fingerprints, disjoint across workers.
    fingerprint = "%02x" % worker + format(index, "062x")
    cache.put(fingerprint, spec, outcome, 0.001)
print("worker %d stored %d" % (worker, count))
"""

CAMPAIGN_SCRIPT = (
    """
import os
import sys
"""
    + CAMPAIGN_SNIPPET
    + """
from repro.campaign import CampaignRunner
from repro.exec import ResultCache

directory = sys.argv[1]
cache = ResultCache(os.path.join(directory, "cache"), backend="sqlite")
CampaignRunner(campaign, cache, workers=1, directory=directory).run()
print("campaign complete")
"""
)


def _child_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_CACHE_BACKEND", None)
    return env


def _build_campaign():
    namespace = {}
    exec(CAMPAIGN_SNIPPET, namespace)
    return namespace["campaign"]


def _poll_entries(root, minimum, deadline_seconds=60.0):
    """Wait until the store at ``root`` holds at least ``minimum`` entries."""
    deadline = time.monotonic() + deadline_seconds
    while time.monotonic() < deadline:
        if os.path.exists(os.path.join(root, "cache.sqlite")):
            count = len(ResultCache(root, backend="sqlite"))
            if count >= minimum:
                return count
        time.sleep(0.01)
    raise AssertionError("store never reached %d entries" % minimum)


class TestConcurrentWriters:
    def test_parallel_processes_lose_no_entries(self, tmp_path):
        """N processes hammer one database; the union of their writes lands."""
        workers, per_worker = 3, 60
        root = str(tmp_path / "shared")
        processes = [
            subprocess.Popen(
                [sys.executable, "-c", WRITER_SCRIPT, str(worker), str(per_worker), root],
                env=_child_env(),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
            )
            for worker in range(workers)
        ]
        for process in processes:
            _, stderr = process.communicate(timeout=120)
            assert process.returncode == 0, stderr.decode("utf-8", "replace")

        cache = ResultCache(root, backend="sqlite")
        assert len(cache) == workers * per_worker
        # Every entry is intact: the full documents parse and carry their key.
        fingerprints = set()
        for document in cache.entries():
            fingerprints.add(document["fingerprint"])
            assert document["outcome"]["algorithm"] == "election"
        assert len(fingerprints) == workers * per_worker


class TestKillDuringWrites:
    def test_sigkill_mid_write_leaves_store_readable(self, tmp_path):
        """SIGKILL during a write burst: every landed entry stays readable."""
        root = str(tmp_path / "victim")
        process = subprocess.Popen(
            [sys.executable, "-c", WRITER_SCRIPT, "0", "100000", root],
            env=_child_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            _poll_entries(root, minimum=20)
        finally:
            process.kill()
            process.wait()

        cache = ResultCache(root, backend="sqlite")
        landed = len(cache)
        assert landed >= 20
        documents = list(cache.entries())
        assert len(documents) == landed  # nothing half-written survives
        for document in documents:
            assert document["outcome"]["type"] == "trial"
        stats = cache.stats()
        assert stats.backend == "sqlite"
        assert stats.total_bytes > 0


class TestResumeAfterKill:
    def test_resume_re_executes_only_missing_trials(self, tmp_path):
        """Kill a campaign mid-flight; the resume serves every completed
        trial from cache and executes exactly the remainder."""
        directory = str(tmp_path / "campaign")
        os.makedirs(directory)
        process = subprocess.Popen(
            [sys.executable, "-c", CAMPAIGN_SCRIPT, directory],
            env=_child_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        cache_root = os.path.join(directory, "cache")
        try:
            _poll_entries(cache_root, minimum=5)
        finally:
            os.kill(process.pid, signal.SIGKILL)
            process.wait()

        campaign = _build_campaign()
        cache = ResultCache(cache_root, backend="sqlite")
        completed = len(cache)
        assert 0 < completed  # the kill interrupted a partially-done campaign

        result = CampaignRunner(campaign, cache, workers=1, directory=directory).run()
        assert result.cache_hits == completed
        assert result.executed == campaign.num_trials - completed
        assert result.failed == 0

        # A second resume is a pure replay: zero executions.
        fresh = ResultCache(cache_root, backend="sqlite")
        replay = CampaignRunner(campaign, fresh, workers=1, directory=directory).run()
        assert replay.executed == 0
        assert replay.cache_hits == campaign.num_trials


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-v"]))
