"""Node-side API of the synchronous CONGEST simulator.

A distributed algorithm is written as a subclass of :class:`Protocol`.  The
simulator constructs one protocol instance per node, handing it a
:class:`NodeContext` which exposes exactly what the paper's model allows a
node to see:

* its own degree and port numbers (but *not* who is behind each port),
* the network size ``n`` when the scenario says it is known,
* a private random source,
* the current round number (the network is synchronous and all nodes wake up
  together, so round numbers are common knowledge).

Sending is done through ``ctx.send(port, message)``; a message sent in round
``r`` is delivered at the start of round ``r + 1`` on the receiving node's
corresponding port.
"""

from __future__ import annotations

import abc
import random
from typing import Any, Callable, Dict, List, Optional

from .errors import ProtocolError
from .message import Message

__all__ = ["NodeContext", "Protocol", "Inbox", "ProtocolFactory"]

#: The inbox handed to ``Protocol.on_round``: arriving messages keyed by port.
Inbox = Dict[int, List[Message]]


class NodeContext:
    """Everything a node is allowed to know and do.

    Instances are created by the network; protocol code only consumes them.
    """

    def __init__(
        self,
        node_index: int,
        degree: int,
        rng: random.Random,
        known_n: Optional[int],
        send_callback: Callable[[int, int, Message], None],
        wake_callback: Callable[[int, int], None],
    ) -> None:
        self._node_index = node_index
        self._degree = degree
        self._rng = rng
        self._known_n = known_n
        self._send_callback = send_callback
        self._wake_callback = wake_callback
        self._round = 0
        self._halted = False

    # --------------------------------------------------------------- queries
    @property
    def node_index(self) -> int:
        """Simulator-internal index of this node.

        It exists for debugging and result collection only -- protocols must
        not treat it as a distributed identifier (the model is anonymous).
        """
        return self._node_index

    @property
    def degree(self) -> int:
        """Number of ports (= degree) of this node."""
        return self._degree

    @property
    def ports(self) -> range:
        """Iterable over this node's ports ``0 .. degree - 1``."""
        return range(self._degree)

    @property
    def rng(self) -> random.Random:
        """Private source of randomness."""
        return self._rng

    @property
    def known_n(self) -> Optional[int]:
        """The network size ``n`` if the scenario grants that knowledge, else ``None``."""
        return self._known_n

    @property
    def round(self) -> int:
        """Current round number (0-based)."""
        return self._round

    @property
    def halted(self) -> bool:
        """Whether this node has permanently stopped."""
        return self._halted

    # --------------------------------------------------------------- actions
    def send(self, port: int, message: Message) -> None:
        """Queue ``message`` for delivery through ``port`` at the next round."""
        if self._halted:
            raise ProtocolError("node %d attempted to send after halting" % self._node_index)
        if not 0 <= port < self._degree:
            raise ProtocolError(
                "node %d has no port %d (degree %d)" % (self._node_index, port, self._degree)
            )
        self._send_callback(self._node_index, port, message)

    def wake_at(self, round_number: int) -> None:
        """Request an ``on_round`` call at ``round_number`` even without messages."""
        if round_number <= self._round:
            round_number = self._round + 1
        self._wake_callback(self._node_index, round_number)

    def wake_next_round(self) -> None:
        """Convenience wrapper for ``wake_at(current round + 1)``."""
        self.wake_at(self._round + 1)

    def halt(self) -> None:
        """Permanently stop: the node will send no further messages."""
        self._halted = True

    # ------------------------------------------------------------- internals
    def _set_round(self, round_number: int) -> None:
        self._round = round_number


class Protocol(abc.ABC):
    """Base class for node algorithms.

    Lifecycle: ``on_start`` is invoked once in round 0 for every node; after
    that ``on_round`` is invoked whenever the node has incoming messages or a
    pending wake-up.  A protocol that wants to act every round simply calls
    ``ctx.wake_next_round()`` before returning.
    """

    def __init__(self, ctx: NodeContext) -> None:
        self.ctx = ctx

    @abc.abstractmethod
    def on_start(self) -> None:
        """Round-0 initialisation; may send messages and schedule wake-ups."""

    @abc.abstractmethod
    def on_round(self, inbox: Inbox) -> None:
        """Handle one activation (messages arrived and/or a wake-up fired)."""

    def result(self) -> Dict[str, Any]:
        """Protocol-defined outcome of this node (e.g. ``{"leader": True}``)."""
        return {}


#: Factory signature the network accepts: it receives the context and returns the protocol.
ProtocolFactory = Callable[[NodeContext], Protocol]
