#!/usr/bin/env python3
"""Compare the paper's algorithm with prior-work baselines (experiment E3).

On well-connected graphs the paper's election beats every ``Omega(m)``
flooding-style algorithm in message complexity while matching the known-t_mix
algorithm of Kutten et al. [25] without needing the mixing time as input.

All algorithm runs are expressed as ``repro.exec`` trial specs and executed
by one ``BatchRunner`` -- pass ``--workers N`` to run the comparison table's
rows concurrently (identical numbers to the serial run).

Run with::

    python examples/baseline_comparison.py [n] [--workers N]
"""

from __future__ import annotations

import argparse

from repro import complete_graph, expander_graph
from repro.analysis import format_table
from repro.exec import BatchRunner, TrialSpec, default_worker_count
from repro.graphs import mixing_time

#: (table label, algorithm registry name) in paper-presentation order.
ALGORITHM_ROWS = [
    ("this paper (unknown t_mix)", "election"),
    ("Kutten et al. [25] (t_mix known)", "known_tmix"),
    ("flood-max (O(mD) msgs)", "flood_max"),
    ("controlled flooding (O(m log n))", "controlled_flooding"),
]
CLIQUE_ROW = ("Kutten et al. [25] clique-only", "clique_sublinear")


def compare_on(graph, name, seed, runner, include_clique_baseline=False):
    t_mix = mixing_time(graph)
    algorithms = list(ALGORITHM_ROWS) + ([CLIQUE_ROW] if include_clique_baseline else [])
    specs = [
        TrialSpec(
            graph=graph,
            algorithm=algorithm,
            seed=seed,
            # Pin the oracle baseline to the t_mix computed here so the table
            # header and the algorithm input are visibly the same number.
            algo_kwargs={"mixing_time": t_mix} if algorithm == "known_tmix" else {},
            label=label,
        )
        for label, algorithm in algorithms
    ]
    results = runner.run(specs)
    rows = [
        {
            "algorithm": result.spec.label,
            "messages": result.outcome.messages,
            "rounds": result.outcome.rounds,
            "leaders": result.outcome.num_leaders,
        }
        for result in results
    ]
    print("\n=== %s  (n=%d, m=%d, t_mix=%d) ===" % (name, graph.num_nodes, graph.num_edges, t_mix))
    print(format_table(rows))


def main(n: int = 128, seed: int = 5, workers: int = 1) -> None:
    runner = BatchRunner(workers=workers)
    compare_on(expander_graph(n, seed=seed), "random 4-regular expander", seed, runner)
    compare_on(complete_graph(n), "complete graph K_n", seed, runner, include_clique_baseline=True)
    print("\nReading: the random-walk elections use far fewer messages than any "
          "flooding baseline on dense/well-connected graphs, and the paper's "
          "algorithm achieves this without knowing t_mix.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("n", nargs="?", type=int, default=128, help="graph size (default 128)")
    parser.add_argument(
        "--workers",
        type=int,
        default=default_worker_count(),
        help="worker processes for the batch runner (default: CPU count)",
    )
    arguments = parser.parse_args()
    main(arguments.n, workers=arguments.workers)
