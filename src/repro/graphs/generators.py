"""Graph families used by the paper's examples and by the benchmarks.

The introduction of the paper motivates the result with well-connected
families (expanders, hypercubes, cliques) and contrasts them with poorly
connected ones (cycles, paths).  The lower-bound section additionally needs
random regular graphs as super-node graphs.  Every generator returns a
:class:`repro.graphs.topology.Graph` with vertices ``0 .. n - 1``.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Optional, Tuple

from .topology import Graph

__all__ = [
    "gilbert_graph",
    "gilbert_connectivity_radius",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "grid_graph",
    "torus_graph",
    "hypercube_graph",
    "complete_bipartite_graph",
    "binary_tree_graph",
    "barbell_graph",
    "lollipop_graph",
    "random_regular_graph",
    "erdos_renyi_graph",
    "connected_erdos_renyi_graph",
    "expander_graph",
    "GraphFamily",
    "FAMILIES",
    "get_family",
]


def complete_graph(n: int) -> Graph:
    """The clique ``K_n`` (constant conductance, constant mixing time)."""
    graph = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v)
    return graph


def cycle_graph(n: int) -> Graph:
    """The cycle ``C_n`` (conductance ``Theta(1/n)``)."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 nodes, got %d" % n)
    graph = Graph(n)
    for u in range(n):
        graph.add_edge(u, (u + 1) % n)
    return graph


def path_graph(n: int) -> Graph:
    """The path ``P_n``."""
    if n < 2:
        raise ValueError("a path needs at least 2 nodes, got %d" % n)
    graph = Graph(n)
    for u in range(n - 1):
        graph.add_edge(u, u + 1)
    return graph


def star_graph(n: int) -> Graph:
    """Star with centre 0 and ``n - 1`` leaves."""
    if n < 2:
        raise ValueError("a star needs at least 2 nodes, got %d" % n)
    graph = Graph(n)
    for leaf in range(1, n):
        graph.add_edge(0, leaf)
    return graph


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` 2-dimensional grid (open boundaries)."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    graph = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                graph.add_edge(v, v + 1)
            if r + 1 < rows:
                graph.add_edge(v, v + cols)
    return graph


def torus_graph(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` torus (wrap-around grid)."""
    if rows < 3 or cols < 3:
        raise ValueError("torus dimensions must be at least 3 to stay simple")
    graph = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            right = r * cols + (c + 1) % cols
            down = ((r + 1) % rows) * cols + c
            if not graph.has_edge(v, right):
                graph.add_edge(v, right)
            if not graph.has_edge(v, down):
                graph.add_edge(v, down)
    return graph


def hypercube_graph(dimension: int) -> Graph:
    """The ``dimension``-dimensional hypercube on ``2**dimension`` nodes.

    The paper's introduction cites hypercubes as a family with mixing time
    ``O(log n log log n)``.
    """
    if dimension < 1:
        raise ValueError("hypercube dimension must be at least 1")
    n = 1 << dimension
    graph = Graph(n)
    for v in range(n):
        for bit in range(dimension):
            u = v ^ (1 << bit)
            if v < u:
                graph.add_edge(v, u)
    return graph


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """The complete bipartite graph ``K_{a,b}``."""
    if a < 1 or b < 1:
        raise ValueError("both sides of K_{a,b} must be non-empty")
    graph = Graph(a + b)
    for u in range(a):
        for v in range(a, a + b):
            graph.add_edge(u, v)
    return graph


def binary_tree_graph(n: int) -> Graph:
    """Complete-ish binary tree on ``n`` nodes (heap indexing)."""
    if n < 1:
        raise ValueError("tree needs at least one node")
    graph = Graph(n)
    for child in range(1, n):
        parent = (child - 1) // 2
        graph.add_edge(parent, child)
    return graph


def barbell_graph(clique_size: int, bridge_length: int = 0) -> Graph:
    """Two cliques of ``clique_size`` nodes joined by a path of ``bridge_length`` nodes.

    A classic poorly-connected graph (conductance ``O(1/n^2)``), useful as a
    stress case for the guess-and-double walk-length estimation.
    """
    if clique_size < 2:
        raise ValueError("each bell needs at least 2 nodes")
    n = 2 * clique_size + bridge_length
    graph = Graph(n)
    for u in range(clique_size):
        for v in range(u + 1, clique_size):
            graph.add_edge(u, v)
    offset = clique_size + bridge_length
    for u in range(offset, n):
        for v in range(u + 1, n):
            graph.add_edge(u, v)
    chain = [clique_size - 1] + list(range(clique_size, clique_size + bridge_length)) + [offset]
    for a, b in zip(chain, chain[1:]):
        graph.add_edge(a, b)
    return graph


def lollipop_graph(clique_size: int, path_length: int) -> Graph:
    """A clique with a path (the classic slow-mixing lollipop)."""
    if clique_size < 2 or path_length < 1:
        raise ValueError("lollipop needs clique_size >= 2 and path_length >= 1")
    n = clique_size + path_length
    graph = Graph(n)
    for u in range(clique_size):
        for v in range(u + 1, clique_size):
            graph.add_edge(u, v)
    previous = clique_size - 1
    for v in range(clique_size, n):
        graph.add_edge(previous, v)
        previous = v
    return graph


def random_regular_graph(n: int, degree: int, seed: Optional[int] = None) -> Graph:
    """A uniformly random ``degree``-regular simple graph.

    Random regular graphs of constant degree are expanders with high
    probability (Bollobas [7] in the paper); the lower-bound super-node graph
    ``GS`` is exactly a random 4-regular graph.
    """
    if n * degree % 2 != 0:
        raise ValueError("n * degree must be even (n=%d, degree=%d)" % (n, degree))
    if degree >= n:
        raise ValueError("degree must be smaller than n")
    import networkx as nx

    rng = random.Random(seed)
    for _ in range(64):
        candidate = nx.random_regular_graph(degree, n, seed=rng.randrange(2**31))
        if nx.is_connected(candidate):
            return Graph.from_networkx(candidate)
    raise RuntimeError("failed to sample a connected random regular graph")


def erdos_renyi_graph(n: int, probability: float, seed: Optional[int] = None) -> Graph:
    """The Erdos-Renyi random graph ``G(n, p)`` (possibly disconnected)."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must lie in [0, 1]")
    rng = random.Random(seed)
    graph = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < probability:
                graph.add_edge(u, v)
    return graph


def connected_erdos_renyi_graph(
    n: int, probability: float, seed: Optional[int] = None, max_attempts: int = 64
) -> Graph:
    """Sample ``G(n, p)`` repeatedly until a connected instance appears."""
    rng = random.Random(seed)
    for _ in range(max_attempts):
        graph = erdos_renyi_graph(n, probability, seed=rng.randrange(2**31))
        if graph.is_connected():
            return graph
    raise RuntimeError(
        "no connected G(%d, %.3f) found in %d attempts" % (n, probability, max_attempts)
    )


def gilbert_graph(n: int, radius: float, seed: Optional[int] = None) -> Graph:
    """Gilbert's random geometric (disc) model, largest component extracted.

    ``n`` points are dropped uniformly at random in the unit square and two
    points are adjacent whenever their Euclidean distance is at most
    ``radius`` -- the classic Gilbert disc model whose limit theory
    (Reitzner-Schulte-Thaele; Ahlberg-Tykesson) motivates it as a
    well-connected-in-the-bulk workload beside expanders and hypercubes.
    Because the model disconnects below the connectivity threshold
    ``radius ~ sqrt(log n / (pi n))``, the **largest connected component** is
    returned (nodes relabelled ``0 .. k-1`` in increasing original order), so
    every returned graph is valid election/broadcast input.  The returned
    graph may therefore have fewer than ``n`` nodes.

    Candidate pairs are found by bucketing points into a ``radius``-sized
    cell grid (only the 3x3 neighbourhood of a cell can hold partners), so
    sparse instances cost ``O(n)`` expected work instead of ``O(n^2)``.
    """
    if n < 1:
        raise ValueError("a Gilbert graph needs at least 1 point, got %d" % n)
    if not 0.0 < radius:
        raise ValueError("radius must be positive, got %r" % radius)
    rng = random.Random(seed)
    points = [(rng.random(), rng.random()) for _ in range(n)]

    cell_size = min(1.0, radius)
    cells: Dict[Tuple[int, int], List[int]] = {}
    for index, (x, y) in enumerate(points):
        cells.setdefault((int(x / cell_size), int(y / cell_size)), []).append(index)

    graph = Graph(n)
    radius_sq = radius * radius
    for (cx, cy), members in cells.items():
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                neighbours = cells.get((cx + dx, cy + dy))
                if neighbours is None:
                    continue
                for u in members:
                    ux, uy = points[u]
                    for v in neighbours:
                        # Each unordered pair is reached exactly once: the
                        # reverse cell offset is skipped here, so no
                        # duplicate-edge guard is needed.
                        if v <= u:
                            continue
                        vx, vy = points[v]
                        if (ux - vx) ** 2 + (uy - vy) ** 2 <= radius_sq:
                            graph.add_edge(u, v)

    # Largest connected component; equal sizes tie-break on the smallest
    # member node so the choice is deterministic whatever order the
    # components are emitted in.
    best = sorted(
        max(graph.connected_components(), key=lambda c: (len(c), -min(c)))
    )
    relabel = {node: index for index, node in enumerate(best)}
    extracted = Graph(len(best))
    for u, v in graph.edges():
        if u in relabel and v in relabel:
            extracted.add_edge(relabel[u], relabel[v])
    return extracted


def gilbert_connectivity_radius(n: int, factor: float = 1.5) -> float:
    """A radius ``factor`` times the connectivity threshold of ``G(n, r)``.

    The disc model connects w.h.p. once ``pi n r^2 > log n``; experiments
    wanting mostly-intact instances pass the result to :func:`gilbert_graph`.

    >>> 0.2 < gilbert_connectivity_radius(64) < 0.4
    True
    """
    if n < 2:
        raise ValueError("n must be at least 2, got %d" % n)
    return factor * math.sqrt(math.log(n) / (math.pi * n))


def expander_graph(n: int, degree: int = 4, seed: Optional[int] = None) -> Graph:
    """Convenience alias: a connected random ``degree``-regular graph.

    This is the family the paper's headline example ("expanders have mixing
    time ``O(log n)``") refers to.
    """
    return random_regular_graph(n, degree, seed=seed)


class GraphFamily:
    """A named, parameterised graph family used by the sweep experiments."""

    def __init__(
        self,
        name: str,
        builder: Callable[..., Graph],
        description: str,
        supports_seed: bool = False,
    ) -> None:
        self.name = name
        self.builder = builder
        self.description = description
        self.supports_seed = supports_seed

    def build(self, *args, seed: Optional[int] = None, **kwargs) -> Graph:
        """Build one instance, passing ``seed`` only to randomised families."""
        if self.supports_seed:
            return self.builder(*args, seed=seed, **kwargs)
        return self.builder(*args, **kwargs)

    def __repr__(self) -> str:
        return "GraphFamily(%r)" % self.name


FAMILIES: Dict[str, GraphFamily] = {
    "clique": GraphFamily("clique", complete_graph, "complete graph K_n"),
    "cycle": GraphFamily("cycle", cycle_graph, "cycle C_n"),
    "path": GraphFamily("path", path_graph, "path P_n"),
    "star": GraphFamily("star", star_graph, "star graph"),
    "grid": GraphFamily("grid", grid_graph, "2d grid"),
    "torus": GraphFamily("torus", torus_graph, "2d torus"),
    "hypercube": GraphFamily("hypercube", hypercube_graph, "d-dimensional hypercube"),
    "binary_tree": GraphFamily("binary_tree", binary_tree_graph, "binary tree"),
    "barbell": GraphFamily("barbell", barbell_graph, "two cliques joined by a path"),
    "lollipop": GraphFamily("lollipop", lollipop_graph, "clique with a tail"),
    "expander": GraphFamily(
        "expander", expander_graph, "random regular expander", supports_seed=True
    ),
    "random_regular": GraphFamily(
        "random_regular", random_regular_graph, "random d-regular graph", supports_seed=True
    ),
    "erdos_renyi": GraphFamily(
        "erdos_renyi",
        connected_erdos_renyi_graph,
        "connected Erdos-Renyi graph",
        supports_seed=True,
    ),
    "gilbert": GraphFamily(
        "gilbert",
        gilbert_graph,
        "Gilbert random geometric graph (largest component)",
        supports_seed=True,
    ),
}


def get_family(name: str) -> GraphFamily:
    """Look up a registered :class:`GraphFamily` by name."""
    try:
        return FAMILIES[name]
    except KeyError:
        raise KeyError(
            "unknown graph family %r; known families: %s"
            % (name, ", ".join(sorted(FAMILIES)))
        ) from None
