"""The event/span tracer every layer of the stack emits telemetry through.

``repro.obs`` exists to make the paper's *quantitative* claims observable
while they are being measured: where rounds and message units are spent
inside a run, what a worker pool is doing right now, how a campaign is
progressing -- without changing a single computed bit.  The contract that
makes that safe:

* **determinism** -- tracing is write-only side-channel output.  Records
  carry wall-clock timestamps and durations, but nothing a trace sink sees
  ever flows back into seed streams, fingerprints or outcomes; the
  property suite asserts outcomes, fingerprints and cache keys are
  byte-identical with tracing on and off
  (``tests/obs/test_trace_determinism.py``);
* **zero overhead when off** -- the default tracer has no sinks:
  :meth:`Tracer.event` returns after one attribute check and
  :meth:`Tracer.span` hands back a shared no-op context manager, so the
  instrumented hot paths cost one branch when nobody is listening;
* **pluggable sinks** -- a :class:`TraceSink` receives plain-dict records;
  :class:`NullSink` drops them, :class:`~repro.obs.sinks.JsonlTraceSink`
  persists them as versioned JSONL, and
  :class:`~repro.obs.sinks.MetricsAggregator` folds them into
  counters/histograms for the telemetry report.

Records are flat dictionaries::

    {"kind": "event" | "span", "name": "trial.finished", "ts": <unix time>,
     "attrs": {...}}                      # spans add "dur_s"

Attribute keys starting with ``_`` are in-process only (they may hold live
Python objects for same-process subscribers, e.g. the legacy progress
reporter bridge); serialising sinks drop them.  Numeric aggregates a sink
should accumulate travel under the reserved ``attrs["metrics"]`` mapping.

>>> from repro.obs import Tracer, use_tracer
>>> class Collect(TraceSink):
...     def __init__(self):
...         self.records = []
...     def emit(self, record):
...         self.records.append(record)
>>> sink = Collect()
>>> with use_tracer(Tracer(sink)) as tracer:
...     tracer.event("demo.event", n=8)
>>> [record["name"] for record in sink.records]
['demo.event']
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "TraceSink",
    "NullSink",
    "Tracer",
    "current_tracer",
    "set_tracer",
    "use_tracer",
]

#: Version stamp of the trace record schema.  Written into every JSONL trace
#: header; consumers (the watch dashboard, the telemetry report) refuse to
#: guess at records of a version this code does not speak.
#: 1: initial schema -- flat records with kind/name/ts/attrs (+ dur_s on
#: spans), underscore-prefixed attrs in-process only, numeric aggregates
#: under ``attrs["metrics"]``.
TRACE_SCHEMA_VERSION = 1


class TraceSink:
    """Where trace records go; subclass and override :meth:`emit`.

    Sinks must tolerate being called from multiple threads (the worker-pool
    backend emits from its serve threads) and must never raise into the
    instrumented code path -- a sink that cannot handle a record should drop
    it.
    """

    def emit(self, record: Dict[str, object]) -> None:
        """Receive one trace record (shared, do not mutate)."""

    def close(self) -> None:
        """Release any resources (idempotent); records may stop arriving."""


class NullSink(TraceSink):
    """The default sink: drops everything.

    A tracer whose only sinks are null is *disabled* -- instrumented code
    skips record construction entirely, which is what keeps the default
    configuration bit-for-bit identical to an uninstrumented build in both
    behaviour and (within one branch) speed.
    """


class _NoopSpan:
    """The shared do-nothing context manager a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class _Span:
    """A live span: emits one record with its duration when it exits."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        attrs = self._attrs
        if exc_type is not None:
            attrs = dict(attrs)
            attrs["error"] = "%s: %s" % (exc_type.__name__, exc)
        self._tracer._emit(
            {
                "kind": "span",
                "name": self._name,
                "ts": time.time(),
                "dur_s": duration,
                "attrs": attrs,
            }
        )
        return False


class Tracer:
    """Emits events and spans to a fixed set of sinks.

    Construction filters out :class:`NullSink` instances; a tracer with no
    remaining sinks is disabled and every call no-ops.  Tracers are
    immutable -- :meth:`with_sinks` builds a widened copy, which is how the
    batch runner composes its per-run progress sinks with whatever the
    process-wide tracer already carries.
    """

    __slots__ = ("sinks", "enabled")

    def __init__(self, sinks: Union[TraceSink, Sequence[TraceSink]] = ()) -> None:
        if isinstance(sinks, TraceSink):
            sinks = (sinks,)
        self.sinks: Tuple[TraceSink, ...] = tuple(
            sink for sink in sinks if not isinstance(sink, NullSink)
        )
        self.enabled = bool(self.sinks)

    # ------------------------------------------------------------------- emit
    def event(self, name: str, **attrs: object) -> None:
        """Emit one point-in-time record (free when the tracer is disabled)."""
        if not self.enabled:
            return
        self._emit({"kind": "event", "name": name, "ts": time.time(), "attrs": attrs})

    def span(self, name: str, **attrs: object):
        """A context manager timing its body; one record on exit.

        Disabled tracers return a shared no-op context manager, so callers
        can unconditionally ``with tracer.span(...)`` on hot paths.
        """
        if not self.enabled:
            return _NOOP_SPAN
        return _Span(self, name, attrs)

    def _emit(self, record: Dict[str, object]) -> None:
        for sink in self.sinks:
            sink.emit(record)

    # ------------------------------------------------------------ composition
    def with_sinks(self, extra: Sequence[TraceSink]) -> "Tracer":
        """This tracer widened by ``extra`` sinks (self when nothing to add)."""
        extra = tuple(sink for sink in extra if not isinstance(sink, NullSink))
        if not extra:
            return self
        return Tracer(self.sinks + extra)

    def close(self) -> None:
        """Close every sink (the tracer stays usable but records are lost)."""
        for sink in self.sinks:
            sink.close()


#: The process-wide tracer instrumented layers consult; disabled by default.
_CURRENT = Tracer()


def current_tracer() -> Tracer:
    """The tracer instrumented code should emit through right now."""
    return _CURRENT


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` (``None`` resets to disabled); returns the previous one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = tracer if tracer is not None else Tracer()
    return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for the duration of the ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
