"""The known-mixing-time election of Kutten et al. [25].

The prior sublinear algorithm assumes every node *knows* ``t_mix`` and runs a
single random-walk phase of exactly that length; contenders then simply keep
the largest id they have heard of through shared proxies.  Removing the
known-``t_mix`` assumption is the main algorithmic contribution of the
reproduced paper, so this baseline is the natural ablation: identical
machinery, but the guess-and-double loop replaced by one oracle-length phase.

We reuse :class:`repro.core.LeaderElectionNode` and override only the decision
rule: the single phase always stops, and the contender with the largest id in
its ``I4`` view elects itself.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

from ..core.leader_election import LeaderElectionNode
from ..core.params import DEFAULT_PARAMETERS, ElectionParameters
from ..core.result import ElectionOutcome, TrialOutcome, outcome_from_simulation
from ..core.schedule import PhaseSchedule
from ..faults.plan import FaultPlan
from ..graphs.mixing import cached_mixing_time
from ..graphs.topology import Graph
from ..sim.harness import run_protocol
from ..sim.network import MessageObserver, SimulationResult
from ..sim.node import NodeContext

__all__ = [
    "KnownTmixNode",
    "known_tmix_factory",
    "known_tmix_trial",
    "simulate_known_tmix",
    "run_known_tmix_election",
]


class KnownTmixNode(LeaderElectionNode):
    """Single-phase election with an oracle-provided walk length."""

    def _decide(self, window) -> None:
        """Always stop after the first (only) phase and elect on the largest id."""
        own_tree = self._tree(self.identifier, window.index, create=False)
        if own_tree is not None and own_tree.is_proxy:
            own_tree.local_report_contribution(self.proxy_origins)
            ids, distinct, _ = own_tree.report_payload()
            self.adjacency_ids |= ids
            self.distinct_count_phase += distinct

        self.active = False
        self.stopped = True
        self.satisfied_intersection = True
        self.satisfied_distinctness = True

        competitors = self.i4_ids | self.adjacency_ids
        has_largest_id = all(self.identifier >= other for other in competitors)
        if has_largest_id and not self.heard_winner:
            self.is_leader = True
            self.heard_winner = True
            self._announce_victory(window)


def known_tmix_factory(
    mixing_time: int,
    params: ElectionParameters = DEFAULT_PARAMETERS,
    safety_factor: float = 1.0,
):
    """Protocol factory with the walk length pinned to ``safety_factor * t_mix``."""
    walk_length = max(1, round(safety_factor * mixing_time))
    pinned = params.with_overrides(initial_walk_length=walk_length)

    def factory(ctx: NodeContext) -> KnownTmixNode:
        return KnownTmixNode(ctx, params=pinned)

    return factory


def simulate_known_tmix(
    graph: Graph,
    mixing_time: int,
    params: ElectionParameters,
    safety_factor: float,
    seed: Optional[int],
    fault_plan: Optional[FaultPlan],
    max_rounds: int,
    observers: Sequence[MessageObserver],
) -> SimulationResult:
    """One [25]-baseline run on the shared harness (historical seed streams).

    Phase-anchored crash plans resolve against the schedule of the *pinned*
    parameters -- the walk length every node actually runs with.
    """
    walk_length = max(1, round(safety_factor * mixing_time))
    pinned = params.with_overrides(initial_walk_length=walk_length)
    schedule = PhaseSchedule(pinned)
    return run_protocol(
        graph,
        known_tmix_factory(mixing_time, params=params, safety_factor=safety_factor),
        seed=seed,
        port_stream=0x41,
        network_stream=0x42,
        fault_plan=fault_plan,
        phase_start_of=lambda index: schedule.window(index).start,
        observers=observers,
        max_rounds=max_rounds,
    )


def known_tmix_trial(
    graph: Graph,
    mixing_time: Optional[int] = None,
    *,
    params: ElectionParameters = DEFAULT_PARAMETERS,
    safety_factor: float = 1.0,
    seed: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    max_rounds: int = 1_000_000,
    observers: Sequence[MessageObserver] = (),
    simulator: str = "reference",
) -> TrialOutcome:
    """Run the [25] baseline and return the unified trial outcome.

    ``mixing_time=None`` computes the exact ``t_mix`` of ``graph`` through
    :func:`~repro.graphs.mixing.cached_mixing_time`, so a sweep that reuses
    one graph instance pays the dense-matrix power iteration once, not once
    per trial.  A non-empty ``fault_plan`` runs the single oracle-length
    phase against that adversary.  ``simulator="vectorized"`` runs the
    oracle-length phase on the numpy engine of :mod:`repro.sim.vectorized`
    (falling back to the reference simulator, with the reason recorded in
    ``extras["simulator"]``, when the engine declines the configuration).
    """
    if simulator not in ("reference", "vectorized"):
        raise ValueError(
            "unknown simulator %r; expected 'reference' or 'vectorized'" % simulator
        )
    if mixing_time is None:
        mixing_time = cached_mixing_time(graph)
    if simulator == "vectorized":
        from ..sim.vectorized import (
            VectorizedUnsupported,
            run_vectorized_known_tmix,
            vectorized_unsupported_reason,
        )

        reason = vectorized_unsupported_reason(
            fault_plan=fault_plan, observers=tuple(observers)
        )
        outcome = None
        if reason is None:
            try:
                outcome = run_vectorized_known_tmix(
                    graph,
                    mixing_time,
                    params=params,
                    safety_factor=safety_factor,
                    seed=seed,
                    fault_plan=fault_plan,
                    max_rounds=max_rounds,
                )
            except VectorizedUnsupported as exc:
                reason = str(exc)
        if outcome is None:
            result = simulate_known_tmix(
                graph,
                mixing_time,
                params,
                safety_factor,
                seed,
                fault_plan,
                max_rounds,
                observers,
            )
            outcome = outcome_from_simulation(result)
            outcome.simulator = "reference-fallback:%s" % reason
        trial = TrialOutcome.from_election("known_tmix", outcome)
        trial.extras["mixing_time"] = mixing_time
        return trial
    result = simulate_known_tmix(
        graph, mixing_time, params, safety_factor, seed, fault_plan, max_rounds, observers
    )
    outcome = outcome_from_simulation(result)
    trial = TrialOutcome.from_election("known_tmix", outcome)
    trial.extras["mixing_time"] = mixing_time
    return trial


def run_known_tmix_election(
    graph: Graph,
    mixing_time: int,
    params: ElectionParameters = DEFAULT_PARAMETERS,
    safety_factor: float = 1.0,
    seed: Optional[int] = None,
    max_rounds: int = 1_000_000,
    observers: Sequence[MessageObserver] = (),
) -> ElectionOutcome:
    """Deprecated shim: the [25] baseline as an :class:`ElectionOutcome`.

    .. deprecated::
        Use :func:`known_tmix_trial` (or ``TrialSpec(algorithm="known_tmix")``
        through :mod:`repro.exec`); numbers are identical, only the envelope
        changed.
    """
    warnings.warn(
        "run_known_tmix_election is deprecated; use known_tmix_trial or the "
        "'known_tmix' entry of the repro.exec algorithm registry",
        DeprecationWarning,
        stacklevel=2,
    )
    result = simulate_known_tmix(
        graph, mixing_time, params, safety_factor, seed, None, max_rounds, observers
    )
    return outcome_from_simulation(result)
