"""Outcome of one leader-election run, aggregated from per-node results.

Runs executed under a :mod:`repro.faults` plan additionally carry the set of
crash-stopped nodes and a degraded-outcome ``classification``: ``"elected"``
(exactly one live leader), ``"leader_crashed"`` (the unique leader was
crash-stopped), ``"multiple_leaders"`` or ``"no_leader"``.  Fault-free runs
classify as ``"elected"`` or the same failure labels, so the field is safe to
aggregate across mixed campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim.metrics import RunMetrics
from ..sim.network import SimulationResult

__all__ = ["ElectionOutcome", "outcome_from_simulation", "CLASSIFICATIONS"]

#: Every value ``ElectionOutcome.classification`` can take.
CLASSIFICATIONS = ("elected", "leader_crashed", "multiple_leaders", "no_leader")


@dataclass
class ElectionOutcome:
    """What happened in one election: who won, how long it took, what it cost."""

    num_nodes: int
    leaders: List[int]
    contenders: List[int]
    metrics: RunMetrics
    forced_stop: bool
    max_phases: int
    final_walk_length: int
    simulation: Optional[SimulationResult] = None
    crashed_nodes: List[int] = field(default_factory=list)

    @property
    def num_leaders(self) -> int:
        """How many nodes elected themselves (the paper wants exactly one)."""
        return len(self.leaders)

    @property
    def num_contenders(self) -> int:
        """How many nodes nominated themselves in Algorithm 1."""
        return len(self.contenders)

    @property
    def success(self) -> bool:
        """Implicit leader election succeeded: exactly one leader."""
        return self.num_leaders == 1

    @property
    def leader(self) -> Optional[int]:
        """The unique leader's node index, or ``None`` if the run failed."""
        if self.success:
            return self.leaders[0]
        return None

    @property
    def num_crashed(self) -> int:
        """How many nodes were crash-stopped by the fault plan."""
        return len(self.crashed_nodes)

    @property
    def classification(self) -> str:
        """Degraded-outcome label (one of :data:`CLASSIFICATIONS`)."""
        if self.num_leaders == 0:
            return "no_leader"
        if self.num_leaders > 1:
            return "multiple_leaders"
        if self.leaders[0] in self.crashed_nodes:
            return "leader_crashed"
        return "elected"

    @property
    def rounds(self) -> int:
        """Rounds until the network went quiet."""
        return self.metrics.rounds

    @property
    def messages(self) -> int:
        """Number of physical messages sent."""
        return self.metrics.messages

    @property
    def message_units(self) -> int:
        """Number of ``O(log n)``-bit message units (the paper's measure)."""
        return self.metrics.message_units

    def as_record(self) -> Dict[str, object]:
        """Flat dictionary useful for sweep tables and CSV-ish output."""
        return {
            "num_nodes": self.num_nodes,
            "num_leaders": self.num_leaders,
            "num_contenders": self.num_contenders,
            "success": self.success,
            "rounds": self.rounds,
            "messages": self.messages,
            "message_units": self.message_units,
            "forced_stop": self.forced_stop,
            "max_phases": self.max_phases,
            "final_walk_length": self.final_walk_length,
            "classification": self.classification,
            "num_crashed": self.num_crashed,
        }

    def __str__(self) -> str:
        return (
            "ElectionOutcome(n=%d, leaders=%d, contenders=%d, rounds=%d, messages=%d, success=%s)"
            % (
                self.num_nodes,
                self.num_leaders,
                self.num_contenders,
                self.rounds,
                self.messages,
                self.success,
            )
        )


def outcome_from_simulation(
    result: SimulationResult, keep_simulation: bool = False
) -> ElectionOutcome:
    """Aggregate a :class:`SimulationResult` of the election protocol."""
    leaders = result.nodes_with("leader", True)
    contenders = result.nodes_with("contender", True)
    forced = any(res.get("forced_stop") for res in result.node_results)
    max_phases = max((res.get("phases", 0) for res in result.node_results), default=0)
    final_walk = max((res.get("final_walk_length", 0) for res in result.node_results), default=0)
    return ElectionOutcome(
        num_nodes=len(result.node_results),
        leaders=leaders,
        contenders=contenders,
        metrics=result.metrics,
        forced_stop=forced,
        max_phases=max_phases,
        final_walk_length=final_walk,
        simulation=result if keep_simulation else None,
        crashed_nodes=list(result.crashed_nodes),
    )
