"""Dispatch trial batches through an arbitrary command template.

The shape an SSH or job-queue dispatcher needs: each chunk of a batch is
handed, as one JSON request document on stdin, to a fresh invocation of a
user-supplied command, which must behave like
``python -m repro.exec.worker`` -- execute the trials and print the JSON
response document to stdout.  The default template *is* that local worker,
so the backend round-trips out of the box; pointing the same machinery at
another machine is just a different template::

    CommandBackend(template="ssh worker-3 python -m repro.exec.worker")
    CommandBackend(template="docker run -i repro-worker", jobs=4)

A failing invocation (non-zero exit, unparseable output, a killed remote)
costs only its own chunk: every trial in it is recaptured as an
``on_error="capture"`` failure carrying the exit status and the tail of the
command's stderr, and the remaining chunks keep going.
"""

from __future__ import annotations

import json
import shlex
import subprocess
from concurrent.futures import Future, ThreadPoolExecutor, as_completed
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from ..execute import TrialPayload
from ..spec import TrialSpec
from ..wire import WIRE_VERSION, payload_from_dict
from .base import JsonWireBackend
from .workerpool import worker_command, worker_environment

__all__ = ["CommandBackend"]

#: How much of a failing command's stderr lands in the captured error.
_STDERR_TAIL = 400


class CommandBackend(JsonWireBackend):
    """One worker-protocol command invocation per chunk of trials."""

    name = "command"
    survives_worker_death = True

    def __init__(
        self,
        template: Union[None, str, Sequence[str]] = None,
        jobs: int = 1,
        chunk_size: Optional[int] = None,
        preload: Sequence[str] = (),
        extra_paths: Sequence[str] = (),
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1, got %d" % jobs)
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be at least 1, got %d" % chunk_size)
        self.preload = tuple(preload)
        self.extra_paths = tuple(extra_paths)
        if template is None:
            self.argv = worker_command(serve=False, preload=self.preload)
        elif isinstance(template, str):
            self.argv = shlex.split(template)
        else:
            self.argv = list(template)
        if not self.argv:
            raise ValueError("the command template must name a command")
        self.jobs = jobs
        self.chunk_size = chunk_size
        super().__init__()

    # -------------------------------------------------------------- dispatch
    def submit(self, spec: TrialSpec) -> "Future[TrialPayload]":
        """Run a one-trial invocation; the returned future is resolved."""
        future: "Future[TrialPayload]" = Future()
        future.set_result(self._run_chunk([spec])[0])
        return future

    def map(self, specs: Sequence[TrialSpec]) -> Iterator[Tuple[int, TrialPayload]]:
        chunks = self._chunks(len(specs))
        if self.jobs == 1 or len(chunks) == 1:
            for start, stop in chunks:
                for offset, payload in enumerate(self._run_chunk(specs[start:stop])):
                    yield start + offset, payload
            return
        with ThreadPoolExecutor(max_workers=min(self.jobs, len(chunks))) as pool:
            futures = {
                pool.submit(self._run_chunk, specs[start:stop]): start
                for start, stop in chunks
            }
            for future in as_completed(futures):
                start = futures[future]
                for offset, payload in enumerate(future.result()):
                    yield start + offset, payload

    # ------------------------------------------------------------- internals
    def _chunks(self, total: int) -> List[Tuple[int, int]]:
        if total == 0:
            return []
        size = self.chunk_size
        if size is None:
            size = max(1, -(-total // self.jobs))  # ceil: one chunk per job
        return [(start, min(start + size, total)) for start in range(0, total, size)]

    def _run_chunk(self, specs: Sequence[TrialSpec]) -> List[TrialPayload]:
        """Execute one chunk through one command invocation."""
        payloads: List[Optional[TrialPayload]] = [None] * len(specs)
        documents, positions = [], []
        for index, spec in enumerate(specs):
            document, unsafe = self._wire_document(spec)
            if unsafe is not None:
                payloads[index] = TrialPayload(outcome=None, error=unsafe, elapsed_seconds=0.0)
            else:
                documents.append(document)
                positions.append(index)
        if documents:
            request = json.dumps({"version": WIRE_VERSION, "trials": documents})
            for index, payload in zip(positions, self._dispatch(request, len(documents))):
                payloads[index] = payload
        if any(payload is None for payload in payloads):
            # Every slot must be filled; compacting a gap away would shift
            # later payloads onto the wrong specs (silent cache poisoning).
            raise RuntimeError("command backend bug: chunk left payload slots unfilled")
        return payloads

    def _dispatch(self, request: str, count: int) -> List[TrialPayload]:
        def chunk_failure(reason: str) -> List[TrialPayload]:
            message = "command backend %r failed: %s" % (" ".join(self.argv), reason)
            return [
                TrialPayload(outcome=None, error=message, elapsed_seconds=0.0)
                for _ in range(count)
            ]

        try:
            completed = subprocess.run(
                self.argv,
                input=request.encode("utf-8"),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                env=worker_environment(self.extra_paths),
            )
        except OSError as exc:
            return chunk_failure(str(exc))
        if completed.returncode != 0:
            stderr = completed.stderr.decode("utf-8", "replace")[-_STDERR_TAIL:].strip()
            return chunk_failure(
                "exit status %d%s"
                % (completed.returncode, (": %s" % stderr) if stderr else "")
            )
        try:
            response = json.loads(completed.stdout.decode("utf-8"))
            results = response["results"]
            if len(results) != count:
                raise ValueError("expected %d results, got %d" % (count, len(results)))
            return [payload_from_dict(document) for document in results]
        except (ValueError, KeyError, TypeError) as exc:
            return chunk_failure("unusable response: %s" % exc)
