"""Unit tests for the algorithm parameters and derived thresholds."""

import math

import pytest

from repro.core import DEFAULT_PARAMETERS, ElectionParameters, paper_parameters


class TestValidation:
    def test_defaults_are_valid(self):
        assert DEFAULT_PARAMETERS.c1 > 0
        assert DEFAULT_PARAMETERS.c2 > 0

    def test_rejects_non_positive_constants(self):
        with pytest.raises(ValueError):
            ElectionParameters(c1=0)
        with pytest.raises(ValueError):
            ElectionParameters(c2=-1)

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            ElectionParameters(intersection_fraction=0)
        with pytest.raises(ValueError):
            ElectionParameters(distinctness_fraction=1.5)

    def test_rejects_bad_schedule_knobs(self):
        with pytest.raises(ValueError):
            ElectionParameters(initial_walk_length=0)
        with pytest.raises(ValueError):
            ElectionParameters(congestion_slack=0)
        with pytest.raises(ValueError):
            ElectionParameters(segment_margin=0)

    def test_rejects_small_id_space(self):
        with pytest.raises(ValueError):
            ElectionParameters(id_space_exponent=1)

    def test_with_overrides_returns_copy(self):
        updated = DEFAULT_PARAMETERS.with_overrides(c1=9.0)
        assert updated.c1 == 9.0
        assert DEFAULT_PARAMETERS.c1 != 9.0


class TestDerivedQuantities:
    def test_contender_probability_formula(self):
        params = ElectionParameters(c1=2.0)
        n = 128
        assert params.contender_probability(n) == pytest.approx(2.0 * math.log(n) / n)

    def test_contender_probability_clipped(self):
        params = ElectionParameters(c1=100.0)
        assert params.contender_probability(8) == 1.0

    def test_contender_probability_tiny_network(self):
        assert ElectionParameters().contender_probability(1) == 1.0

    def test_num_walks_formula(self):
        params = ElectionParameters(c2=2.0)
        n = 100
        assert params.num_walks(n) == math.ceil(2.0 * math.sqrt(n) * math.log(n))

    def test_num_walks_minimum(self):
        assert ElectionParameters().num_walks(1) == 1

    def test_intersection_threshold_scales_with_c1(self):
        small = ElectionParameters(c1=2.0).intersection_threshold(256)
        large = ElectionParameters(c1=8.0).intersection_threshold(256)
        assert large > small

    def test_distinctness_threshold_is_half_the_walks(self):
        params = ElectionParameters(c2=1.0, distinctness_fraction=0.5)
        n = 256
        assert params.distinctness_threshold(n) == pytest.approx(
            math.ceil(0.5 * math.sqrt(n) * math.log(n))
        )

    def test_id_space_is_n_to_the_fourth(self):
        assert ElectionParameters().id_space(10) == 10**4

    def test_walk_length_cap_default(self):
        assert ElectionParameters().walk_length_cap(100) == 100
        assert ElectionParameters().walk_length_cap(4) == 8

    def test_walk_length_cap_override(self):
        assert ElectionParameters(max_walk_length=64).walk_length_cap(100) == 64

    def test_paper_parameters_use_three_quarters(self):
        params = paper_parameters()
        assert params.intersection_fraction == pytest.approx(0.75)
        assert params.c2 >= 2.0
