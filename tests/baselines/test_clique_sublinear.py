"""Tests for the clique-only sublinear baseline ([25])."""

import math

from repro.baselines import run_clique_sublinear_election
from repro.graphs import complete_graph


class TestCliqueSublinear:
    def test_at_most_one_leader(self):
        for seed in range(4):
            outcome = run_clique_sublinear_election(complete_graph(64), seed=seed)
            assert outcome.num_leaders <= 1

    def test_usually_exactly_one_leader(self):
        successes = sum(
            run_clique_sublinear_election(complete_graph(64), seed=seed).success
            for seed in range(5)
        )
        assert successes >= 4

    def test_constant_round_count(self):
        outcome = run_clique_sublinear_election(complete_graph(64), seed=1)
        assert outcome.rounds <= 3

    def test_message_cost_is_sublinear_in_edges(self):
        graph = complete_graph(100)
        outcome = run_clique_sublinear_election(graph, seed=2)
        assert outcome.messages < graph.num_edges / 4

    def test_message_cost_tracks_sqrt_n_polylog(self):
        n = 100
        outcome = run_clique_sublinear_election(complete_graph(n), seed=3)
        reference = math.sqrt(n) * math.log(n) ** 1.5
        # contenders ~ 2 ln n, each sending ~ sqrt(n) ln n probes plus replies.
        assert outcome.messages <= 40 * reference

    def test_contenders_are_few(self):
        outcome = run_clique_sublinear_election(complete_graph(128), seed=4)
        assert outcome.contenders <= 30
