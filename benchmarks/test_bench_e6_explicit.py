"""E6 -- Corollary 14: explicit election = implicit election + push-pull broadcast.

Measures the message split between the election phase and the broadcast phase
on a well-connected graph.  The paper's point: the explicit variant pays an
extra Theta(n log n / phi) for dissemination, so the *election itself* is the
cheap part -- which is why the implicit variant can break the Omega(n) barrier.
"""

from repro.analysis import explicit_broadcast_messages
from repro.core import run_explicit_leader_election
from repro.graphs import estimate_conductance, expander_graph

SEED = 303
N = 128

_CACHE = {}


def _run():
    graph = expander_graph(N, degree=4, seed=SEED)
    outcome = run_explicit_leader_election(graph, seed=SEED)
    _CACHE["graph"] = graph
    _CACHE["outcome"] = outcome
    return outcome


def test_e6_explicit_election(benchmark):
    outcome = benchmark.pedantic(_run, rounds=1, iterations=1)
    graph = _CACHE["graph"]
    phi = estimate_conductance(graph).best_estimate
    benchmark.extra_info.update(
        {
            "n": N,
            "phi": round(phi, 4),
            "election_messages": outcome.election_messages,
            "broadcast_messages": outcome.broadcast_messages,
            "total_messages": outcome.total_messages,
            "total_rounds": outcome.total_rounds,
            "broadcast_reference": round(explicit_broadcast_messages(N, phi), 1),
        }
    )
    assert outcome.success


def test_e6_broadcast_cost_is_near_linear(benchmark):
    """The dissemination phase costs Theta(n polylog) messages -- the linear part."""

    def measure():
        if "outcome" not in _CACHE:
            _run()
        return _CACHE["outcome"]

    outcome = benchmark.pedantic(measure, rounds=1, iterations=1)
    phi = estimate_conductance(_CACHE["graph"]).best_estimate
    reference = explicit_broadcast_messages(N, phi)
    benchmark.extra_info.update(
        {
            "broadcast_messages": outcome.broadcast_messages,
            "reference_n_logn_over_phi": round(reference, 1),
        }
    )
    assert outcome.broadcast_messages >= N - 1
    assert outcome.broadcast_messages <= 10 * reference
