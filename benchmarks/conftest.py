"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artefacts (see
DESIGN.md's per-experiment index and EXPERIMENTS.md for the recorded results).
Benchmarks use ``benchmark.pedantic`` with a single round because each run is
a full distributed-protocol simulation, and attach the measured quantities the
paper actually talks about (messages, rounds, leaders, ...) as ``extra_info``
so that ``--benchmark-json`` output contains the whole table.

Everything collected from this directory is auto-tagged with the ``bench``
marker.  ``--bench-smoke`` keeps only the first (smallest) test of each
benchmark file -- one tiny trial per experiment -- which is what the CI
smoke job runs to catch driver breakage without paying for full campaigns.
``--backend NAME`` routes every ``BatchRunner`` in the session through the
named execution backend (it sets the ``REPRO_EXEC_BACKEND`` override), so
the E12/E13 campaign drivers -- and every other driver -- can be exercised
under the worker-pool or command dispatcher without touching driver code.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


def pytest_addoption(parser):
    parser.addoption(
        "--bench-smoke",
        action="store_true",
        default=False,
        help="run one tiny trial per benchmark file (CI smoke mode)",
    )
    parser.addoption(
        "--backend",
        default="",
        help="execution backend for every BatchRunner in the session "
        "(serial, process, workerpool, command); sets REPRO_EXEC_BACKEND",
    )


def pytest_configure(config):
    backend = config.getoption("--backend")
    if backend:
        from repro.exec import backend_names

        if backend not in backend_names():
            raise pytest.UsageError(
                "--backend must be one of %s, got %r"
                % (", ".join(backend_names()), backend)
            )
        os.environ["REPRO_EXEC_BACKEND"] = backend


def _is_benchmark_item(item) -> bool:
    try:
        return os.path.abspath(str(item.path)).startswith(_BENCH_DIR + os.sep)
    except Exception:
        return False


def pytest_collection_modifyitems(config, items):
    for item in items:
        if _is_benchmark_item(item):
            item.add_marker(pytest.mark.bench)

    if not config.getoption("--bench-smoke"):
        return
    seen_modules = set()
    selected, deselected = [], []
    for item in items:
        if not _is_benchmark_item(item):
            selected.append(item)
            continue
        module = item.nodeid.split("::", 1)[0]
        if module in seen_modules:
            deselected.append(item)
        else:
            seen_modules.add(module)
            selected.append(item)
    if deselected:
        config.hook.pytest_deselected(items=deselected)
        items[:] = selected
