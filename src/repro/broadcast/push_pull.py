"""Push-pull rumor spreading (Karp et al. [22]), used for explicit leader election.

Corollary 14 of the paper turns the implicit election into an explicit one by
letting the leader broadcast its identity with push-pull gossip, which takes
``O(log n / phi)`` rounds and ``O(n log n / phi)`` messages on a graph of
conductance ``phi`` (Giakkoupis [17]).

Protocol per round:

* every *informed* node pushes the rumor to one uniformly random port for
  ``push_rounds`` rounds after it first learned the rumor;
* every *uninformed* node sends a pull request to one uniformly random port;
  an informed node answers pull requests with the rumor.

Once every node is informed, pulls cease and pushes die out after
``push_rounds`` more rounds, so the network goes quiet on its own and no node
needs global knowledge to terminate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set

from ..core.result import TrialOutcome, classify_broadcast
from ..faults.plan import FaultPlan
from ..graphs.topology import Graph
from ..sim.harness import run_protocol
from ..sim.message import Message, counter_bits, id_bits
from ..sim.metrics import RunMetrics
from ..sim.network import SimulationResult
from ..sim.node import Inbox, NodeContext, Protocol

__all__ = [
    "PushPullNode",
    "push_pull_factory",
    "BroadcastOutcome",
    "push_pull_trial",
    "run_push_pull_broadcast",
]

PUSH = "push"
PULL_REQUEST = "pull_request"
PULL_REPLY = "pull_reply"


class PushPullNode(Protocol):
    """One node of the push-pull rumor-spreading protocol."""

    def __init__(
        self,
        ctx: NodeContext,
        sources: Set[int],
        rumor: int,
        push_rounds: Optional[int] = None,
    ) -> None:
        super().__init__(ctx)
        n = ctx.known_n if ctx.known_n is not None else 2
        self.rumor: Optional[int] = rumor if ctx.node_index in sources else None
        self.informed_at: Optional[int] = 0 if self.rumor is not None else None
        if push_rounds is None:
            push_rounds = max(4, 2 * math.ceil(math.log2(max(2, n))))
        self.push_rounds = push_rounds
        self._rumor_bits = id_bits(max(2, n)) + counter_bits(1)

    # ------------------------------------------------------------------ hooks
    def on_start(self) -> None:
        self.ctx.wake_next_round()

    def on_round(self, inbox: Inbox) -> None:
        pull_ports = []
        for port, batch in inbox.items():
            for message in batch:
                if message.kind in (PUSH, PULL_REPLY):
                    self._learn(message.payload["rumor"])
                elif message.kind == PULL_REQUEST:
                    pull_ports.append(port)
        # Answer pull requests if informed.
        if self.rumor is not None:
            for port in pull_ports:
                self.ctx.send(port, self._rumor_message(PULL_REPLY))
        if self.ctx.degree == 0:
            return
        if self.rumor is None:
            # Uninformed: pull from a random neighbour and try again next round.
            port = self.ctx.rng.randrange(self.ctx.degree)
            self.ctx.send(port, Message(kind=PULL_REQUEST, payload={}, size_bits=1))
            self.ctx.wake_next_round()
        else:
            elapsed = self.ctx.round - self.informed_at
            if elapsed < self.push_rounds:
                port = self.ctx.rng.randrange(self.ctx.degree)
                self.ctx.send(port, self._rumor_message(PUSH))
                self.ctx.wake_next_round()

    def result(self) -> Dict[str, object]:
        return {"informed": self.rumor is not None, "rumor": self.rumor}

    # -------------------------------------------------------------- internals
    def _learn(self, rumor: int) -> None:
        if self.rumor is None:
            self.rumor = rumor
            self.informed_at = self.ctx.round

    def _rumor_message(self, kind: str) -> Message:
        return Message(kind=kind, payload={"rumor": self.rumor}, size_bits=self._rumor_bits)


def push_pull_factory(sources: Set[int], rumor: int, push_rounds: Optional[int] = None):
    """Protocol factory for :class:`repro.sim.Network`."""

    def factory(ctx: NodeContext) -> PushPullNode:
        return PushPullNode(ctx, sources=sources, rumor=rumor, push_rounds=push_rounds)

    return factory


@dataclass
class BroadcastOutcome:
    """Result of a broadcast run."""

    num_nodes: int
    informed: int
    metrics: RunMetrics

    @property
    def all_informed(self) -> bool:
        """Did the rumor reach every node?"""
        return self.informed == self.num_nodes

    @property
    def messages(self) -> int:
        return self.metrics.messages

    @property
    def rounds(self) -> int:
        return self.metrics.rounds


def _simulate(
    graph: Graph,
    sources: Set[int],
    rumor: int,
    seed: Optional[int],
    push_rounds: Optional[int],
    fault_plan: Optional[FaultPlan],
    max_rounds: int,
) -> SimulationResult:
    """One push-pull run on the shared harness (historical seed streams)."""
    if not sources:
        raise ValueError("at least one source node is required")
    return run_protocol(
        graph,
        push_pull_factory(sources, rumor, push_rounds=push_rounds),
        seed=seed,
        port_stream=0x9,
        network_stream=0xA,
        fault_plan=fault_plan,
        max_rounds=max_rounds,
    )


def push_pull_trial(
    graph: Graph,
    sources: Iterable[int] = (0,),
    rumor: int = 1,
    *,
    seed: Optional[int] = None,
    push_rounds: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    max_rounds: int = 10_000,
) -> TrialOutcome:
    """Run push-pull gossip from ``sources`` and return the unified outcome.

    Dropped pulls only delay the spread (the puller retries every round), so
    the gossip degrades gracefully under message faults -- which is exactly
    what the E13 cross-algorithm robustness comparison measures.  The flip
    side of those retries is that a crash plan which kills every informed
    node leaves the survivors pulling against the dead forever; the default
    ``max_rounds`` is therefore a round budget far above any healthy run
    (push-pull needs ``O(log n / phi)`` rounds) but small enough that the
    pathological case ends promptly and classifies as ``"partial"`` /
    ``"informed_live"`` instead of burning the simulator's million-round
    ceiling.
    """
    source_set = set(sources)
    result = _simulate(
        graph, source_set, rumor, seed, push_rounds, fault_plan, max_rounds
    )
    informed = result.nodes_with("informed", True)
    uninformed = sorted(set(range(graph.num_nodes)) - set(informed))
    return TrialOutcome(
        algorithm="push_pull",
        kind="broadcast",
        num_nodes=graph.num_nodes,
        winners=sorted(source_set),
        classification=classify_broadcast(uninformed, result.crashed_nodes),
        metrics=result.metrics,
        crashed_nodes=list(result.crashed_nodes),
        extras={"informed": len(informed), "rumor": rumor},
    )


def run_push_pull_broadcast(
    graph: Graph,
    sources: Set[int],
    rumor: int = 1,
    seed: Optional[int] = None,
    push_rounds: Optional[int] = None,
    max_rounds: int = 1_000_000,
    fault_plan: Optional[FaultPlan] = None,
) -> BroadcastOutcome:
    """Run push-pull rumor spreading from ``sources`` until the network goes quiet."""
    result = _simulate(
        graph, set(sources), rumor, seed, push_rounds, fault_plan, max_rounds
    )
    informed = len(result.nodes_with("informed", True))
    return BroadcastOutcome(num_nodes=graph.num_nodes, informed=informed, metrics=result.metrics)
