"""Asyncio framing and payload codec for the live election transport.

The live deployment speaks the exact :mod:`repro.exec.wire` frame format --
4-byte big-endian length prefix, UTF-8 JSON body -- over TCP or Unix-domain
sockets instead of stdio pipes.  Sockets fragment arbitrarily, so reads go
through the incremental :class:`~repro.exec.wire.FrameDecoder` (a frame may
arrive one byte at a time) and writes ship :func:`~repro.exec.wire.encode_frame`
buffers through the stream writer.

Two address forms are understood everywhere a transport endpoint is named::

    uds:/tmp/election.sock      # Unix-domain socket path
    tcp:127.0.0.1:9944          # TCP host:port (port 0 = ephemeral)

The payload codec extends plain JSON with two tags so the election's
protocol messages cross the wire *exactly*: ``frozenset`` payload values
(the ``ids`` sets of report/distribute/collect messages) and the
:class:`~repro.sim.message.Message` envelope itself.  ``set == frozenset``
in Python, so decoded payloads compare equal to their simulator-side
originals.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Tuple, Union

from ..exec.wire import FrameDecoder, encode_frame
from ..sim.message import Message
from ..sim.node import Inbox

__all__ = [
    "NET_WIRE_VERSION",
    "parse_address",
    "format_address",
    "FrameStream",
    "message_to_wire",
    "message_from_wire",
    "inbox_to_wire",
    "inbox_from_wire",
    "value_to_wire",
    "value_from_wire",
]

#: Version stamp of the node <-> coordinator frame protocol; either side
#: refuses a peer of a different version instead of misparsing it.
NET_WIRE_VERSION = 1

#: Tag key marking an encoded frozenset payload value.
_FROZENSET_TAG = "__frozenset__"

#: How many bytes to pull from the socket per read; frames smaller than this
#: usually arrive whole, larger ones reassemble through the decoder.
_READ_CHUNK = 1 << 16


# ----------------------------------------------------------------- addresses
def parse_address(address: str) -> Union[Tuple[str, str], Tuple[str, str, int]]:
    """Parse ``uds:<path>`` / ``tcp:<host>:<port>`` into a scheme tuple."""
    scheme, _, rest = address.partition(":")
    if scheme == "uds" and rest:
        return ("uds", rest)
    if scheme == "tcp" and rest:
        host, _, port = rest.rpartition(":")
        if host and port.isdigit():
            return ("tcp", host, int(port))
    raise ValueError(
        "unknown transport address %r; expected uds:<path> or tcp:<host>:<port>"
        % (address,)
    )


def format_address(parsed: Union[Tuple[str, str], Tuple[str, str, int]]) -> str:
    """Inverse of :func:`parse_address`."""
    if parsed[0] == "uds":
        return "uds:%s" % parsed[1]
    return "tcp:%s:%d" % (parsed[1], parsed[2])


# ------------------------------------------------------------------- streams
class FrameStream:
    """One framed, bidirectional connection over an asyncio stream pair."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder()
        self._ready: List[Dict[str, object]] = []

    @classmethod
    async def connect(cls, address: str) -> "FrameStream":
        """Open a client connection to ``address`` (``uds:``/``tcp:`` form)."""
        parsed = parse_address(address)
        if parsed[0] == "uds":
            reader, writer = await asyncio.open_unix_connection(parsed[1])
        else:
            reader, writer = await asyncio.open_connection(parsed[1], parsed[2])
        return cls(reader, writer)

    async def send(self, document: Dict[str, object]) -> None:
        """Write one frame and drain the transport buffer."""
        self._writer.write(encode_frame(document))
        await self._writer.drain()

    async def receive(self) -> Optional[Dict[str, object]]:
        """Read one frame; ``None`` on clean EOF, ``EOFError`` on truncation."""
        while not self._ready:
            chunk = await self._reader.read(_READ_CHUNK)
            if not chunk:
                if self._decoder.pending_bytes:
                    raise EOFError(
                        "connection closed mid-frame (%d bytes buffered)"
                        % self._decoder.pending_bytes
                    )
                return None
            self._ready.extend(self._decoder.feed(chunk))
        return self._ready.pop(0)

    async def close(self) -> None:
        """Close the underlying transport, swallowing teardown races."""
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, BrokenPipeError, OSError):
            pass

    def abort(self) -> None:
        """Tear the connection down immediately (peer process is dead)."""
        try:
            self._writer.transport.abort()
        except (ConnectionError, BrokenPipeError, OSError):
            pass


# --------------------------------------------------------------- the codec
def value_to_wire(value: object) -> object:
    """Encode one payload value into its JSON wire form (tagging frozensets)."""
    if isinstance(value, (frozenset, set)):
        return {_FROZENSET_TAG: sorted(value)}
    if isinstance(value, dict):
        return {str(key): value_to_wire(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [value_to_wire(item) for item in value]
    return value


def value_from_wire(value: object) -> object:
    """Decode one payload value from its JSON wire form."""
    if isinstance(value, dict):
        if set(value) == {_FROZENSET_TAG}:
            return frozenset(value[_FROZENSET_TAG])
        return {key: value_from_wire(item) for key, item in value.items()}
    if isinstance(value, list):
        return [value_from_wire(item) for item in value]
    return value


def message_to_wire(message: Message) -> Dict[str, object]:
    """Flatten one protocol :class:`Message` into a JSON document."""
    return {
        "kind": message.kind,
        "payload": value_to_wire(message.payload),
        "size_bits": message.size_bits,
    }


def message_from_wire(document: Dict[str, object]) -> Message:
    """Rebuild the :class:`Message` a wire document describes."""
    return Message(
        kind=document["kind"],
        payload=value_from_wire(document["payload"]),
        size_bits=document["size_bits"],
    )


def inbox_to_wire(inbox: Inbox) -> Dict[str, List[Dict[str, object]]]:
    """Encode one round's inbox, preserving port insertion order.

    The walk-tree construction picks its parent edge from the *first* token
    to arrive in processing order, so the port iteration order of the inbox
    is protocol-visible.  JSON objects and Python dicts both preserve
    insertion order, so encoding ports as string keys in their existing
    order keeps the live inbox iteration identical to the simulator's.
    """
    return {
        str(port): [message_to_wire(message) for message in messages]
        for port, messages in inbox.items()
    }


def inbox_from_wire(document: Dict[str, List[Dict[str, object]]]) -> Inbox:
    """Decode one round's inbox, preserving port insertion order."""
    return {
        int(port): [message_from_wire(entry) for entry in entries]
        for port, entries in document.items()
    }
