#!/usr/bin/env python3
"""Distributed campaign over a host fleet (the ``repro.fleet`` quickstart).

Runs a small election-scaling campaign across several hosts at once: the
campaign's deterministic ``Shard(k, m)`` partitions are placed onto a host
inventory by the :class:`repro.fleet.FleetDispatcher`, supervised by
heartbeats, with straggler and dead-host shards re-placed by work stealing.
Every host executes into its own cache; the dispatcher merges them and the
final ``report.md`` / ``report.json`` are byte-identical to a
single-machine run of the same campaign.

By default the fleet is ``--hosts N`` local process groups -- each "host" a
``python -m repro.fleet.host --serve`` subprocess, which is also what the
chaos tests and CI's fleet-smoke job drive.  Point ``--inventory`` at a
JSON file to run the same campaign over SSH or k8s command templates
instead (see docs/architecture.md "Fleet dispatch" for the format and
recipes).

Run with::

    python examples/fleet_campaign.py [--quick] [--hosts N]
        [--inventory FILE] [--dir DIR]

Watch it live from another terminal (per-host health panel included)::

    python -m repro.obs.watch .campaign/fleet
"""

from __future__ import annotations

import argparse
import os

from repro.campaign import CampaignSpec
from repro.exec import (
    ExecutionProfile,
    GraphSpec,
    SweepSpec,
    TrialSpec,
    add_execution_arguments,
)
from repro.fleet import FleetDispatcher, load_inventory, local_inventory

BASE_SEED = 23


def build_campaign(quick: bool) -> CampaignSpec:
    sizes = [32, 64] if quick else [32, 64, 128, 256]
    trials = 2 if quick else 3
    return CampaignSpec(
        name="fleet-campaign",
        sweeps=(
            SweepSpec(
                name="expander-fleet",
                configs=tuple(
                    TrialSpec(
                        graph=GraphSpec("expander", (n,), {"degree": 4}),
                        label="n=%d" % n,
                    )
                    for n in sizes
                ),
                trials=trials,
                base_seed=BASE_SEED,
            ),
        ),
    )


def main(
    quick: bool = False,
    hosts: int = 3,
    inventory: str = "",
    directory: str = os.path.join(".campaign", "fleet"),
    profile: ExecutionProfile = ExecutionProfile(),
) -> None:
    campaign = build_campaign(quick)
    fleet = (
        load_inventory(inventory)
        if inventory
        else local_inventory(hosts, workers=profile.effective_workers(default=1))
    )
    dispatcher = FleetDispatcher(
        spec=campaign,
        hosts=fleet,
        directory=directory,
        profile=profile,
    )
    result = dispatcher.run()
    print(result.describe())
    print(
        "\nreport written to %s (byte-identical to a single-machine run; "
        "re-running resumes from the merged cache for free)"
        % os.path.join(directory, "report.md")
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="tiny sweep for a fast sanity check")
    parser.add_argument(
        "--hosts",
        type=int,
        default=3,
        help="size of the default local process-group fleet (default 3)",
    )
    parser.add_argument(
        "--inventory",
        default="",
        metavar="FILE",
        help="JSON host inventory (SSH/k8s command templates); overrides --hosts",
    )
    parser.add_argument(
        "--dir",
        default=os.path.join(".campaign", "fleet"),
        metavar="DIR",
        help="campaign directory: merged cache, manifest.json, fleet.json, report.md/json",
    )
    add_execution_arguments(parser, workers_default=1)
    arguments = parser.parse_args()
    main(
        quick=arguments.quick,
        hosts=arguments.hosts,
        inventory=arguments.inventory,
        directory=arguments.dir,
        profile=ExecutionProfile.from_arguments(arguments),
    )
