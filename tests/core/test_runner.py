"""Tests for the runner wiring (network construction, observers, options)."""

from repro.core import DEFAULT_PARAMETERS, run_leader_election
from repro.core.runner import build_election_network
from repro.graphs import complete_graph


class TestBuildElectionNetwork:
    def test_network_has_one_protocol_per_node(self):
        graph = complete_graph(12)
        network = build_election_network(graph, seed=1)
        assert network.num_nodes == 12

    def test_word_bits_follow_graph_size(self):
        graph = complete_graph(16)
        network = build_election_network(graph, seed=1)
        assert network.word_bits >= 16


class TestRunnerOptions:
    def test_observers_receive_messages(self):
        events = []

        def observer(round_number, sender, receiver, message):
            events.append(message.kind)

        outcome = run_leader_election(complete_graph(16), seed=5, observers=(observer,))
        assert len(events) == outcome.messages

    def test_keep_simulation_flag(self):
        graph = complete_graph(16)
        without = run_leader_election(graph, seed=6)
        with_sim = run_leader_election(graph, seed=6, keep_simulation=True)
        assert without.simulation is None
        assert with_sim.simulation is not None
        assert len(with_sim.simulation.node_results) == 16

    def test_edge_capacity_accounting_can_be_enabled(self):
        outcome = run_leader_election(
            complete_graph(16), seed=7, edge_capacity_words=1, congest_mode="count"
        )
        assert outcome.metrics.max_edge_bits_in_round > 0

    def test_default_parameters_used_when_not_given(self):
        outcome = run_leader_election(complete_graph(16), seed=8)
        expected_walks = DEFAULT_PARAMETERS.num_walks(16)
        assert outcome.metrics.messages_by_kind.get("walk_token", 0) > 0
        assert expected_walks > 0
