"""Telemetry summaries: render what a trace stream measured, Markdown + JSON.

The campaign report (:mod:`repro.campaign.report`) answers *what the trials
computed*; the telemetry report answers *how the run behaved*: trials per
second, per-phase durations, cache hit ratio, worker deaths and hangs.  It
is rendered either live from a :class:`~repro.obs.sinks.MetricsAggregator`
or offline by replaying a JSONL trace file (:func:`summarize_trace`), and
:func:`write_telemetry_report` drops ``telemetry.md`` / ``telemetry.json``
next to the campaign's cache-rendered ``report.md`` / ``report.json``.

:func:`campaign_telemetry` is the one-liner examples use: a context manager
that installs a tracer writing ``<directory>/trace.jsonl`` plus an
aggregator, and writes the telemetry report on exit.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Union

from .sinks import JsonlTraceSink, MetricsAggregator
from .tracer import TRACE_SCHEMA_VERSION, current_tracer, use_tracer

__all__ = [
    "read_trace",
    "summarize_trace",
    "telemetry_summary",
    "render_telemetry_markdown",
    "write_telemetry_report",
    "campaign_telemetry",
]

#: File names ``write_telemetry_report`` produces inside a campaign directory.
TELEMETRY_JSON = "telemetry.json"
TELEMETRY_MARKDOWN = "telemetry.md"


def read_trace(path: Union[str, os.PathLike]) -> Iterator[Dict[str, object]]:
    """Yield the records of one JSONL trace file (header checked, skipped).

    Unparseable lines are skipped rather than fatal: a live producer may be
    mid-write on the last line when a dashboard reads the file.  The file is
    read in *binary* mode for the same reason -- a producer caught mid-record
    can leave a torn multibyte UTF-8 sequence at the end of the file, which
    text-mode iteration would turn into a ``UnicodeDecodeError`` instead of a
    skippable line.
    """
    with open(os.fspath(path), "rb") as handle:
        for raw in handle:
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue
            if not isinstance(record, dict):
                continue
            if record.get("kind") == "header":
                version = record.get("version")
                if version != TRACE_SCHEMA_VERSION:
                    raise ValueError(
                        "trace file %s carries schema version %r; this code reads %d"
                        % (path, version, TRACE_SCHEMA_VERSION)
                    )
                continue
            yield record


def summarize_trace(path: Union[str, os.PathLike]) -> MetricsAggregator:
    """Replay one trace file into a fresh :class:`MetricsAggregator`."""
    aggregator = MetricsAggregator()
    for record in read_trace(path):
        aggregator.emit(record)
    return aggregator


def _ratio(hits: float, misses: float) -> Optional[float]:
    lookups = hits + misses
    if lookups <= 0:
        return None
    return round(hits / lookups, 4)


def telemetry_summary(aggregator: MetricsAggregator) -> Dict[str, object]:
    """One JSON-able document: counters, histograms and derived rates."""
    snapshot = aggregator.snapshot()
    counters = snapshot["counters"]
    derived: Dict[str, object] = {
        "trials_per_second": aggregator.rate("trial.finished"),
        "cache_hit_ratio": _ratio(
            counters.get("cache.hit", 0), counters.get("cache.miss", 0)
        ),
        "worker_deaths": counters.get("worker.death", 0),
        "worker_hangs": counters.get("worker.hung", 0),
        "worker_respawns": counters.get("worker.spawned.respawns", 0),
        "trials_finished": counters.get("trial.finished", 0),
        "trials_failed": counters.get("trial.finished.failed", 0),
        "trials_cached": counters.get("trial.finished.cached", 0),
        "rounds": counters.get("trial.finished.rounds", 0),
        "message_units": counters.get("trial.finished.message_units", 0),
    }
    return {
        "schema": "repro.obs/telemetry",
        "version": TRACE_SCHEMA_VERSION,
        "derived": derived,
        "counters": counters,
        "histograms": snapshot["histograms"],
    }


def _format_number(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return "%.4g" % value
    return str(value)


def render_telemetry_markdown(summary: Dict[str, object]) -> str:
    """Render a :func:`telemetry_summary` document as Markdown."""
    lines = ["# Telemetry summary", ""]
    derived = summary.get("derived", {})
    if derived:
        lines += ["| metric | value |", "| --- | --- |"]
        lines += [
            "| %s | %s |" % (key, _format_number(derived[key])) for key in sorted(derived)
        ]
        lines.append("")
    counters = summary.get("counters", {})
    if counters:
        lines += ["## Counters", "", "| counter | value |", "| --- | --- |"]
        lines += [
            "| `%s` | %s |" % (name, _format_number(counters[name]))
            for name in sorted(counters)
        ]
        lines.append("")
    histograms = {
        name: stats for name, stats in summary.get("histograms", {}).items() if stats
    }
    if histograms:
        lines += [
            "## Durations (seconds)",
            "",
            "| span | count | total | mean | p50 | p90 | max |",
            "| --- | --- | --- | --- | --- | --- | --- |",
        ]
        for name in sorted(histograms):
            stats = histograms[name]
            lines.append(
                "| `%s` | %d | %s | %s | %s | %s | %s |"
                % (
                    name,
                    stats["count"],
                    _format_number(stats["total"]),
                    _format_number(stats["mean"]),
                    _format_number(stats["p50"]),
                    _format_number(stats["p90"]),
                    _format_number(stats["max"]),
                )
            )
        lines.append("")
    return "\n".join(lines)


def write_telemetry_report(
    directory: Union[str, os.PathLike],
    aggregator: MetricsAggregator,
) -> tuple:
    """Write ``telemetry.md`` + ``telemetry.json`` under ``directory``.

    Returns ``(markdown_path, json_path)``.  Writes are atomic, matching the
    campaign report's protocol, so a watch consumer polling the directory
    never reads a truncated file.
    """
    from ..exec.cache import atomic_write_bytes

    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    summary = telemetry_summary(aggregator)
    json_path = os.path.join(directory, TELEMETRY_JSON)
    atomic_write_bytes(
        json_path, (json.dumps(summary, sort_keys=True, indent=2) + "\n").encode("utf-8")
    )
    markdown_path = os.path.join(directory, TELEMETRY_MARKDOWN)
    atomic_write_bytes(markdown_path, render_telemetry_markdown(summary).encode("utf-8"))
    return markdown_path, json_path


@contextmanager
def campaign_telemetry(
    directory: Union[str, os.PathLike], trace_name: str = "trace.jsonl"
) -> Iterator[MetricsAggregator]:
    """Trace everything inside the block into ``<directory>/<trace_name>``.

    Installs (on top of whatever tracer is already current) a
    :class:`JsonlTraceSink` plus a :class:`MetricsAggregator`, and writes the
    telemetry report into ``directory`` on exit -- the campaign examples'
    ``--trace`` flag is exactly this context manager around their run.
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    aggregator = MetricsAggregator()
    sink = JsonlTraceSink(os.path.join(directory, trace_name))
    try:
        with use_tracer(current_tracer().with_sinks((sink, aggregator))):
            yield aggregator
    finally:
        sink.close()
        write_telemetry_report(directory, aggregator)
