"""Prior-work election baselines used by the comparison experiments (E3, E13).

Each baseline exposes a ``*_trial`` function returning the unified
:class:`~repro.core.result.TrialOutcome` (fault-aware via the shared
``fault_plan`` hook) and is registered with the :mod:`repro.exec` algorithm
registry; the historical ``run_*_election`` entry points remain as deprecated
shims with identical numbers.
"""

from .clique_sublinear import (
    CliqueSublinearNode,
    clique_sublinear_factory,
    clique_sublinear_trial,
    run_clique_sublinear_election,
)
from .controlled_flooding import (
    ControlledFloodingNode,
    controlled_flooding_factory,
    controlled_flooding_trial,
    run_controlled_flooding_election,
)
from .flood_max import (
    BaselineOutcome,
    FloodMaxNode,
    flood_max_factory,
    flood_max_trial,
    run_flood_max_election,
)
from .known_tmix import (
    KnownTmixNode,
    known_tmix_factory,
    known_tmix_trial,
    run_known_tmix_election,
    simulate_known_tmix,
)

__all__ = [
    "BaselineOutcome",
    "FloodMaxNode",
    "flood_max_factory",
    "flood_max_trial",
    "run_flood_max_election",
    "ControlledFloodingNode",
    "controlled_flooding_factory",
    "controlled_flooding_trial",
    "run_controlled_flooding_election",
    "KnownTmixNode",
    "known_tmix_factory",
    "known_tmix_trial",
    "simulate_known_tmix",
    "run_known_tmix_election",
    "CliqueSublinearNode",
    "clique_sublinear_factory",
    "clique_sublinear_trial",
    "run_clique_sublinear_election",
]
