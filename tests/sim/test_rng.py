"""Unit tests for deterministic per-node randomness."""

from repro.sim import derive_seed, fresh_master_seed, node_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, 7) == derive_seed(42, 7)

    def test_streams_differ(self):
        assert derive_seed(42, 7) != derive_seed(42, 8)

    def test_masters_differ(self):
        assert derive_seed(42, 7) != derive_seed(43, 7)

    def test_output_fits_64_bits(self):
        assert 0 <= derive_seed(2**70, 2**70) < 2**64


class TestNodeRng:
    def test_same_node_same_sequence(self):
        a = node_rng(5, 3)
        b = node_rng(5, 3)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_nodes_diverge(self):
        a = node_rng(5, 3)
        b = node_rng(5, 4)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_none_master_gives_unseeded_rng(self):
        rng = node_rng(None, 0)
        assert 0.0 <= rng.random() < 1.0

    def test_fresh_master_seed_range(self):
        seed = fresh_master_seed()
        assert 0 <= seed < 2**63
