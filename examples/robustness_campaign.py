#!/usr/bin/env python3
"""Robustness campaign: the election under message loss and crashes (E11).

The paper's model is synchronous and fault free; this campaign measures what
its election actually does when the network misbehaves.  For expanders and
hypercubes it sweeps the per-message drop rate and the number of
crash-stopped nodes, reporting success probability, degraded-outcome
classification (no leader / multiple leaders / leader crashed) and message
overhead relative to the fault-free baseline.

Fault parameters live in a plain-data ``repro.faults.FaultPlan``, so every
trial is bit-for-bit replayable from the base seed, runs unchanged on
``--workers N`` processes, and participates in ``--cache DIR`` result caching
alongside fault-free campaigns.

Run with::

    python examples/robustness_campaign.py [--quick] [--workers N] [--cache DIR]
"""

from __future__ import annotations

import argparse

from repro.analysis import format_table, robustness_sweep
from repro.exec import ResultCache, TextReporter, default_worker_count
from repro.graphs import expander_graph, hypercube_graph


def sweep_family(name, graph, drop_rates, crash_counts, trials, workers, cache):
    print("\n=== %s (n=%d) ===" % (name, graph.num_nodes))
    records = robustness_sweep(
        graph,
        drop_rates=drop_rates,
        crash_counts=crash_counts,
        trials=trials,
        base_seed=1107,
        workers=workers,
        cache=cache,
        reporter=TextReporter(prefix=name),
    )
    print(format_table([record.as_dict() for record in records]))
    worst = min(records, key=lambda record: record.success_rate)
    print(
        "worst configuration: drop=%g crashes=%d -> success %.2f"
        % (worst.drop_rate, worst.crash_count, worst.success_rate)
    )
    return records


def main(quick: bool = False, workers: int = 1, cache_dir: str = "") -> None:
    if quick:
        drop_rates = [0.0, 0.1]
        crash_counts = [0, 4]
        trials = 2
        expander_n, hypercube_dim = 64, 6
    else:
        drop_rates = [0.0, 0.02, 0.05, 0.1, 0.2, 0.4]
        crash_counts = [0, 4, 16]
        trials = 5
        expander_n, hypercube_dim = 128, 7

    cache = ResultCache(cache_dir) if cache_dir else None
    sweep_family(
        "random 4-regular expander",
        expander_graph(expander_n, degree=4, seed=1107),
        drop_rates,
        crash_counts,
        trials,
        workers,
        cache,
    )
    sweep_family(
        "hypercube",
        hypercube_graph(hypercube_dim),
        drop_rates,
        crash_counts,
        trials,
        workers,
        cache,
    )
    print(
        "\nInterpretation: the election tolerates mild loss (walk tokens are "
        "redundant), but heavy loss starves the intersection/distinctness "
        "thresholds -- runs then end with no leader or with several, and "
        "crashes of contenders can take the would-be winner down with them."
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="tiny sweep for a fast sanity check")
    parser.add_argument(
        "--workers",
        type=int,
        default=default_worker_count(),
        help="worker processes for the batch runner (default: CPU count)",
    )
    parser.add_argument(
        "--cache", default="", metavar="DIR", help="result-cache directory (default: no cache)"
    )
    arguments = parser.parse_args()
    main(quick=arguments.quick, workers=arguments.workers, cache_dir=arguments.cache)
