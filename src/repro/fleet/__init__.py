"""repro.fleet -- distributed campaign dispatch over a host inventory.

The fleet layer is the last rung of the scaling ladder: a campaign's
deterministic ``Shard(k, m)`` partitions, the serve-mode wire workers and
``ResultCache.merge_from`` already existed -- this package wires them
together into one supervised distributed run:

* :class:`HostSpec` / :func:`local_inventory` / :func:`load_inventory` --
  the declarative inventory (:mod:`repro.fleet.inventory`): each host is an
  argv template (local process groups by default; SSH and k8s are template
  recipes, see docs/architecture.md "Fleet dispatch");
* :mod:`repro.fleet.host` -- the host-side serve loop
  (``python -m repro.fleet.host --serve``): executes ``run_shard`` frames
  through a local batch runner into the host's own cache, streaming worker
  vocabulary progress frames;
* :class:`FleetDispatcher` (:mod:`repro.fleet.dispatcher`) -- placement,
  heartbeat supervision, work-stealing reassignment of straggler and
  dead-host shards, cache collection and live ``fleet.json`` health
  snapshots for :mod:`repro.obs.watch`.

Quickstart::

    from repro.exec import ExecutionProfile
    from repro.fleet import FleetDispatcher, local_inventory

    result = FleetDispatcher(
        spec=campaign,                      # a repro.campaign CampaignSpec
        hosts=local_inventory(3, workers=2),
        directory="runs/fleet-demo",
        profile=ExecutionProfile(cache_backend="sqlite"),
    ).run()
    print(result.describe())

The merged ``report.md``/``report.json`` under ``directory`` are
byte-identical to the same campaign run on a single machine -- the property
the chaos tests pin, SIGKILLed hosts included.
"""

from .dispatcher import (
    FLEET_STATUS_NAME,
    FLEET_STATUS_SCHEMA,
    FleetDispatcher,
    FleetHostHungError,
    FleetResult,
)
from .inventory import (
    INVENTORY_VERSION,
    HostSpec,
    inventory_to_document,
    load_inventory,
    local_inventory,
    parse_inventory,
)

__all__ = [
    "FleetDispatcher",
    "FleetHostHungError",
    "FleetResult",
    "FLEET_STATUS_NAME",
    "FLEET_STATUS_SCHEMA",
    "HostSpec",
    "INVENTORY_VERSION",
    "inventory_to_document",
    "load_inventory",
    "local_inventory",
    "parse_inventory",
]
