"""Message-budgeted election: the executable form of the Theorem 15 adversary.

The lower bound says any algorithm that spends ``o(sqrt(n) / phi^{3/4})``
messages on the Section 4.1 graph elects zero or several leaders with constant
probability.  The mechanism (Lemma 18) is that a clique has ``clique_size^2``
ports of which only four lead outside, so an algorithm with a small message
budget never discovers an inter-clique edge and the symmetric cliques decide
independently.

:class:`RandomProbeNode` is a natural budget-limited election: candidates
probe a bounded number of uniformly random ports, contacted nodes echo the
largest candidate id they have heard, and a candidate that never hears a
larger id elects itself.  On a clique (or a clique-of-cliques with enough
probes) this is exactly the [25]-style sublinear election; with a budget below
``clique_size^2`` the cliques of the lower-bound graph stay mutually unaware
and several local winners emerge -- which is what the E5 experiment measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..graphs.ports import PortNumberedGraph
from ..graphs.topology import Graph
from ..sim.message import Message, id_bits
from ..sim.metrics import RunMetrics
from ..sim.network import MessageObserver, Network
from ..sim.node import Inbox, NodeContext, Protocol
from ..sim.rng import derive_seed

__all__ = [
    "RandomProbeNode",
    "random_probe_factory",
    "ProbeElectionOutcome",
    "run_budgeted_probe_election",
    "run_walk_budget_election",
    "sample_clique_discovery_messages",
]

PROBE = "probe"
ECHO = "echo"


class RandomProbeNode(Protocol):
    """Candidate nodes probe a bounded number of random ports and compare ids."""

    def __init__(
        self,
        ctx: NodeContext,
        probes_per_candidate: int,
        candidate_probability: Optional[float] = None,
        decision_round: int = 8,
    ) -> None:
        super().__init__(ctx)
        n = ctx.known_n if ctx.known_n is not None else max(2, ctx.degree + 1)
        self.n = max(2, n)
        self.identifier = ctx.rng.randint(1, self.n**4)
        if candidate_probability is None:
            candidate_probability = min(1.0, 2.0 * math.log(self.n) / self.n)
        self.is_candidate = ctx.rng.random() < candidate_probability
        self.probes_per_candidate = max(0, probes_per_candidate)
        self.decision_round = max(2, decision_round)
        self.best_heard = self.identifier if self.is_candidate else 0
        self.best_echo = 0
        self.decided = False
        self.is_leader = False
        self._id_bits = id_bits(self.n)

    def on_start(self) -> None:
        if self.is_candidate:
            self._send_probes()
            self.ctx.wake_at(self.decision_round)

    def on_round(self, inbox: Inbox) -> None:
        probe_ports: List[int] = []
        for port, batch in inbox.items():
            for message in batch:
                value = message.payload["value"]
                if message.kind == PROBE:
                    self.best_echo = max(self.best_echo, value)
                    probe_ports.append(port)
                elif message.kind == ECHO:
                    self.best_heard = max(self.best_heard, value)
        if probe_ports:
            echo = Message(kind=ECHO, payload={"value": self.best_echo}, size_bits=self._id_bits)
            for port in probe_ports:
                self.ctx.send(port, echo)
        if (
            self.is_candidate
            and not self.decided
            and self.ctx.round >= self.decision_round
        ):
            self.decided = True
            self.is_leader = self.best_heard <= self.identifier

    def result(self) -> Dict[str, object]:
        return {
            "leader": self.is_leader,
            "contender": self.is_candidate,
            "id": self.identifier,
        }

    def _send_probes(self) -> None:
        if self.ctx.degree == 0 or self.probes_per_candidate == 0:
            return
        message = Message(kind=PROBE, payload={"value": self.identifier}, size_bits=self._id_bits)
        for _ in range(self.probes_per_candidate):
            port = self.ctx.rng.randrange(self.ctx.degree)
            self.ctx.send(port, message)


def random_probe_factory(
    probes_per_candidate: int,
    candidate_probability: Optional[float] = None,
    decision_round: int = 8,
):
    """Protocol factory for :class:`repro.sim.Network`."""

    def factory(ctx: NodeContext) -> RandomProbeNode:
        return RandomProbeNode(
            ctx,
            probes_per_candidate=probes_per_candidate,
            candidate_probability=candidate_probability,
            decision_round=decision_round,
        )

    return factory


@dataclass
class ProbeElectionOutcome:
    """Outcome of one budgeted probe election."""

    num_nodes: int
    leaders: List[int]
    candidates: int
    metrics: RunMetrics

    @property
    def num_leaders(self) -> int:
        return len(self.leaders)

    @property
    def success(self) -> bool:
        """Exactly one leader (what the lower bound says cannot reliably happen cheaply)."""
        return self.num_leaders == 1

    @property
    def messages(self) -> int:
        return self.metrics.messages


def run_walk_budget_election(
    graph: Graph,
    walk_length: int,
    seed: Optional[int] = None,
    observers: Sequence[MessageObserver] = (),
    c1: float = 3.0,
    c2: float = 1.0,
    max_rounds: int = 1_000_000,
):
    """Budget-limited election via bounded-length random walks.

    This is the natural "spend roughly ``#walks * walk_length`` messages"
    election: one phase of the [25]-style sampling election with the walk
    length pinned to ``walk_length``.  On the lower-bound graph short walks
    stay inside their clique (each step leaves with probability about
    ``4 / clique_size^2``), so cliques decide independently and several
    leaders emerge -- the Theorem 15 failure mode.  Longer walks (and hence
    larger message budgets) restore a unique leader.

    Returns the :class:`repro.core.ElectionOutcome` of the run.
    """
    from ..baselines.known_tmix import simulate_known_tmix
    from ..core.params import ElectionParameters
    from ..core.result import outcome_from_simulation

    params = ElectionParameters(c1=c1, c2=c2)
    result = simulate_known_tmix(
        graph,
        mixing_time=walk_length,
        params=params,
        safety_factor=1.0,
        seed=seed,
        fault_plan=None,
        max_rounds=max_rounds,
        observers=observers,
    )
    return outcome_from_simulation(result)


def sample_clique_discovery_messages(clique_size: int, rng) -> int:
    """Monte Carlo version of Lemma 18's mechanism.

    A clique has ``clique_size**2`` ports of which 4 lead to other cliques;
    an algorithm that has received nothing from outside can do no better than
    trying ports it has not used yet.  This samples how many port activations
    happen before the first inter-clique port is hit (drawing without
    replacement), whose expectation is ``Theta(clique_size**2)``.
    """
    if clique_size < 3:
        raise ValueError("clique_size must be at least 3")
    total_ports = clique_size * clique_size
    external_ports = 4
    messages = 0
    remaining_total = total_ports
    remaining_external = external_ports
    while remaining_external > 0:
        messages += 1
        if rng.random() < remaining_external / remaining_total:
            return messages
        remaining_total -= 1
    return messages


def run_budgeted_probe_election(
    graph: Graph,
    probes_per_candidate: int,
    candidate_probability: Optional[float] = None,
    seed: Optional[int] = None,
    observers: Sequence[MessageObserver] = (),
    max_rounds: int = 10_000,
) -> ProbeElectionOutcome:
    """Run the budget-limited probe election and report how many leaders emerged."""
    port_graph = PortNumberedGraph(graph, seed=None if seed is None else derive_seed(seed, 0x61))
    network = Network(
        port_graph,
        random_probe_factory(
            probes_per_candidate=probes_per_candidate,
            candidate_probability=candidate_probability,
        ),
        seed=None if seed is None else derive_seed(seed, 0x62),
        observers=observers,
    )
    result = network.run(max_rounds=max_rounds)
    leaders = result.nodes_with("leader", True)
    candidates = len(result.nodes_with("contender", True))
    return ProbeElectionOutcome(
        num_nodes=graph.num_nodes,
        leaders=leaders,
        candidates=candidates,
        metrics=result.metrics,
    )
