#!/usr/bin/env python3
"""Executable tour of the lower-bound machinery (experiments E4 and E5).

Builds the Section 4.1 clique-of-cliques graph, verifies that its conductance
scales like the chosen ``alpha``, measures Lemma 18's "messages before an
inter-clique edge is found" quantity, and sweeps the walk-length budget of a
single-phase election to show the zero-or-many-leaders failure mode below the
``Omega(sqrt(n)/phi^{3/4})`` message threshold of Theorem 15.

Run with::

    python examples/lower_bound_demo.py [n] [clique_size]
"""

from __future__ import annotations

import random
import sys

from repro.analysis import format_table, lower_bound_messages
from repro.lowerbound import (
    CliqueCommunicationTracker,
    build_lower_bound_graph,
    lemma18_expected_messages,
    run_walk_budget_election,
    sample_clique_discovery_messages,
)


def main(n: int = 240, clique_size: int = 8, seed: int = 3) -> None:
    lb = build_lower_bound_graph(n, clique_size=clique_size, seed=seed)
    print("lower-bound graph: n=%d, %d cliques of %d nodes, alpha=%.4f"
          % (lb.num_nodes, lb.num_cliques, lb.clique_size, lb.alpha))
    print("predicted conductance (Lemma 16): %.4f" % lb.predicted_conductance())
    print("balanced super-node cut conductance: %.4f" % lb.balanced_supernode_cut_conductance())
    print("Theorem 15 message threshold ~ sqrt(n)/phi^{3/4} = %.0f"
          % lower_bound_messages(lb.num_nodes, lb.alpha))

    rng = random.Random(seed)
    samples = [sample_clique_discovery_messages(lb.clique_size, rng) for _ in range(200)]
    print("\nLemma 18 (messages before an inter-clique port is found):")
    mean_messages = sum(samples) / len(samples)
    print(
        "  measured mean = %.1f   paper bound >= %.1f   (clique_size^2 = %d ports, 4 external)"
        % (mean_messages, lemma18_expected_messages(lb.clique_size), lb.clique_size**2)
    )

    print("\nTheorem 15: budget-limited elections on the lower-bound graph")
    rows = []
    for walk_length in (1, 2, 4, 8, 16, 32):
        tracker = CliqueCommunicationTracker(lb.node_to_clique)
        outcome = run_walk_budget_election(
            lb.graph, walk_length=walk_length, seed=seed, observers=(tracker,)
        )
        rows.append(
            {
                "walk_length": walk_length,
                "messages": outcome.messages,
                "leaders": outcome.num_leaders,
                "cg_edges": tracker.num_edges,
                "spontaneous": len(tracker.spontaneous_cliques()),
                "disjoint": tracker.disjointness_holds(),
            }
        )
    print(format_table(rows))
    print("\nReading: with short walks (small message budgets) the cliques never "
          "communicate, the clique communication graph stays sparse, and several "
          "local leaders emerge -- exactly the failure mode Theorem 15 proves is "
          "unavoidable below Omega(sqrt(n)/phi^{3/4}) messages.")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 240
    clique = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    main(size, clique)
