"""Per-trial status ledger of one campaign run, persisted as JSON.

The manifest answers "what happened to every trial of this campaign on this
machine": served from cache, executed (after how many attempts), failed with
which error, or skipped because it belongs to another shard.  It is pure
bookkeeping -- results live in the fingerprint-keyed
:class:`~repro.exec.cache.ResultCache`, and resume correctness never depends
on the manifest -- but it is what an operator reads after an interrupted or
partially failed campaign, and what the dashboard uses to show failures.

Writes are atomic (temp file + ``os.replace``), matching the cache's
crash-safety: killing a campaign mid-write never leaves a half-written
manifest behind.

>>> entry = TrialEntry(
...     sweep="scaling", index=0, fingerprint="ab" * 32,
...     label="n=64", status="cached",
... )
>>> manifest = CampaignManifest(campaign="demo", fingerprint="cd" * 32)
>>> manifest.record(entry)
>>> manifest.counts()["cached"]
1
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Union

from ..exec.cache import atomic_write_bytes

__all__ = ["TrialEntry", "CampaignManifest", "TRIAL_STATUSES"]

#: Every state a trial of a campaign run can end in.
TRIAL_STATUSES = ("cached", "executed", "failed", "other_shard")


@dataclass
class TrialEntry:
    """Status of one expanded trial in one campaign run.

    ``index`` is the trial's position within its sweep's expansion (the
    canonical config-major order), ``attempts`` how many times it actually
    ran this time (0 for cache hits and other-shard trials).
    """

    sweep: str
    index: int
    fingerprint: str
    label: str
    status: str
    attempts: int = 0
    elapsed_seconds: float = 0.0
    error: Optional[str] = None

    def __post_init__(self) -> None:
        if self.status not in TRIAL_STATUSES:
            raise ValueError(
                "unknown trial status %r; expected one of %s"
                % (self.status, ", ".join(TRIAL_STATUSES))
            )


class CampaignManifest:
    """The ledger one :class:`~repro.campaign.runner.CampaignRunner` run writes."""

    def __init__(
        self,
        campaign: str,
        fingerprint: str,
        shard: Optional[str] = None,
        created: Optional[float] = None,
    ) -> None:
        self.campaign = campaign
        self.fingerprint = fingerprint
        self.shard = shard
        self.created = time.time() if created is None else created
        self.entries: List[TrialEntry] = []

    # -------------------------------------------------------------- recording
    def record(self, entry: TrialEntry) -> None:
        """Append one trial's status (expansion order is the caller's job)."""
        self.entries.append(entry)

    def counts(self) -> Dict[str, int]:
        """How many trials ended in each status (all statuses always present)."""
        counts = {status: 0 for status in TRIAL_STATUSES}
        for entry in self.entries:
            counts[entry.status] += 1
        return counts

    def failures(self) -> List[TrialEntry]:
        """The entries that exhausted their attempts without an outcome."""
        return [entry for entry in self.entries if entry.status == "failed"]

    # ------------------------------------------------------------ persistence
    def to_document(self) -> Dict[str, object]:
        """The JSON-serialisable form ``save`` writes and ``load`` reads."""
        return {
            "campaign": self.campaign,
            "fingerprint": self.fingerprint,
            "shard": self.shard,
            "created": self.created,
            "counts": self.counts(),
            "trials": [asdict(entry) for entry in self.entries],
        }

    @classmethod
    def from_document(cls, document: Dict[str, object]) -> "CampaignManifest":
        """Rebuild a manifest from its ``to_document`` form."""
        manifest = cls(
            campaign=document["campaign"],
            fingerprint=document["fingerprint"],
            shard=document.get("shard"),
            created=float(document.get("created", 0.0)),
        )
        for raw in document.get("trials", []):
            manifest.record(TrialEntry(**raw))
        return manifest

    def save(self, path: Union[str, os.PathLike]) -> None:
        """Write the manifest atomically (same protocol as the result cache)."""
        document = json.dumps(self.to_document(), sort_keys=True, indent=2) + "\n"
        atomic_write_bytes(os.fspath(path), document.encode("utf-8"))

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "CampaignManifest":
        """Read a manifest previously written by :meth:`save`."""
        with open(os.fspath(path), "r", encoding="utf-8") as handle:
            return cls.from_document(json.load(handle))
