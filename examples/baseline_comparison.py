#!/usr/bin/env python3
"""Compare the paper's algorithm with prior-work baselines (experiment E3).

On well-connected graphs the paper's election beats every ``Omega(m)``
flooding-style algorithm in message complexity while matching the known-t_mix
algorithm of Kutten et al. [25] without needing the mixing time as input.

Run with::

    python examples/baseline_comparison.py [n]
"""

from __future__ import annotations

import sys

from repro import complete_graph, expander_graph, run_leader_election
from repro.analysis import format_table
from repro.baselines import (
    run_clique_sublinear_election,
    run_controlled_flooding_election,
    run_flood_max_election,
    run_known_tmix_election,
)
from repro.graphs import mixing_time


def compare_on(graph, name, seed, include_clique_baseline=False):
    t_mix = mixing_time(graph)
    rows = []

    ours = run_leader_election(graph, seed=seed)
    rows.append({"algorithm": "this paper (unknown t_mix)", "messages": ours.messages,
                 "rounds": ours.rounds, "leaders": ours.num_leaders})

    known = run_known_tmix_election(graph, t_mix, seed=seed)
    rows.append({"algorithm": "Kutten et al. [25] (t_mix known)", "messages": known.messages,
                 "rounds": known.rounds, "leaders": known.num_leaders})

    flood = run_flood_max_election(graph, seed=seed)
    rows.append({"algorithm": "flood-max (O(mD) msgs)", "messages": flood.messages,
                 "rounds": flood.rounds, "leaders": flood.num_leaders})

    controlled = run_controlled_flooding_election(graph, seed=seed)
    rows.append({"algorithm": "controlled flooding (O(m log n))", "messages": controlled.messages,
                 "rounds": controlled.rounds, "leaders": controlled.num_leaders})

    if include_clique_baseline:
        clique = run_clique_sublinear_election(graph, seed=seed)
        rows.append({"algorithm": "Kutten et al. [25] clique-only", "messages": clique.messages,
                     "rounds": clique.rounds, "leaders": clique.num_leaders})

    print("\n=== %s  (n=%d, m=%d, t_mix=%d) ===" % (name, graph.num_nodes, graph.num_edges, t_mix))
    print(format_table(rows))


def main(n: int = 128, seed: int = 5) -> None:
    compare_on(expander_graph(n, seed=seed), "random 4-regular expander", seed)
    compare_on(complete_graph(n), "complete graph K_n", seed, include_clique_baseline=True)
    print("\nReading: the random-walk elections use far fewer messages than any "
          "flooding baseline on dense/well-connected graphs, and the paper's "
          "algorithm achieves this without knowing t_mix.")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    main(size)
