"""End-to-end integration tests across the whole stack.

These exercise the public API the way a downstream user would: build a graph,
run the algorithms, compare costs against the theory, combine with the
broadcast substrate and the baselines.
"""

import pytest

from repro import (
    complete_graph,
    expander_graph,
    hypercube_graph,
    run_explicit_leader_election,
    run_leader_election,
)
from repro.analysis import (
    fit_power_law,
    lower_bound_messages,
    run_election_trials,
    scaling_sweep,
    upper_bound_messages_congest,
)
from repro.baselines import flood_max_trial, known_tmix_trial
from repro.core import ElectionParameters
from repro.graphs import estimate_conductance, mixing_time
from repro.lowerbound import build_lower_bound_graph, run_walk_budget_election

pytestmark = pytest.mark.slow


FAST = ElectionParameters(c1=3.0, c2=0.5)


class TestTheoremThirteenShape:
    """The headline upper bound: sublinear messages on well-connected graphs."""

    def test_messages_within_theorem13_envelope(self, small_expander, small_expander_outcome):
        # "Within a moderate constant" of O(sqrt(n) log^{7/2} n t_mix): the point
        # is the shape, not the hidden constant, so allow a generous factor.
        n = small_expander.num_nodes
        t_mix = mixing_time(small_expander)
        envelope = upper_bound_messages_congest(n, t_mix, constant=16.0)
        assert small_expander_outcome.message_units <= envelope

    def test_messages_exceed_theorem15_lower_bound(self, small_expander, small_expander_outcome):
        phi = estimate_conductance(small_expander).best_estimate
        assert small_expander_outcome.messages >= lower_bound_messages(
            small_expander.num_nodes, phi, constant=0.1
        )

    def test_message_scaling_is_sublinear_in_m_times_n(self):
        """On cliques (m = Theta(n^2)) the election cost grows far slower than m.

        The seed is fixed: a small fraction of runs draw too few contenders for
        the intersection threshold and degrade to the walk-length cap (see
        EXPERIMENTS.md), which would distort a tiny unseeded sample.
        """
        records = scaling_sweep(
            lambda n, seed: complete_graph(n),
            sizes=[32, 64, 128],
            trials=2,
            base_seed=13,
        )
        messages_fit = fit_power_law(
            [r.num_nodes for r in records], [r.mean_messages for r in records]
        )
        edges_fit = fit_power_law(
            [r.num_nodes for r in records], [r.num_edges for r in records]
        )
        assert messages_fit.exponent < edges_fit.exponent - 0.5

    def test_success_rate_is_high_on_well_connected_graphs(self):
        trial_set = run_election_trials(
            complete_graph(64), num_trials=4, params=FAST, base_seed=5
        )
        assert trial_set.success_rate >= 0.75


class TestCrossAlgorithmConsistency:
    def test_adaptive_matches_known_tmix_cost_scale(self):
        """Not knowing t_mix costs at most the guess-and-double overhead."""
        graph = expander_graph(48, seed=3)
        t_mix = mixing_time(graph)
        ours = run_leader_election(graph, seed=4)
        oracle = known_tmix_trial(graph, t_mix, seed=4)
        assert ours.messages <= 12 * max(1, oracle.messages)

    def test_beats_flooding_on_dense_graphs(self):
        graph = complete_graph(96)
        ours = run_leader_election(graph, params=FAST, seed=5)
        flood = flood_max_trial(graph, seed=5)
        assert ours.success
        assert ours.messages < flood.messages

    def test_explicit_election_cost_decomposition(self):
        graph = hypercube_graph(5)
        explicit = run_explicit_leader_election(graph, seed=6)
        assert explicit.success
        assert explicit.total_messages == explicit.election_messages + explicit.broadcast_messages


class TestLowerBoundStory:
    def test_budget_threshold_behaviour(self):
        lb = build_lower_bound_graph(160, clique_size=8, seed=9)
        cheap = run_walk_budget_election(lb.graph, walk_length=1, seed=10)
        rich = run_walk_budget_election(lb.graph, walk_length=24, seed=10)
        assert cheap.num_leaders > 1
        assert rich.num_leaders == 1
        assert rich.messages > cheap.messages

    def test_lower_bound_graph_mixing_is_slow(self):
        lb = build_lower_bound_graph(120, clique_size=6, seed=11)
        expander_t = mixing_time(expander_graph(120, seed=11))
        lb_t = mixing_time(lb.graph)
        assert lb_t > expander_t
