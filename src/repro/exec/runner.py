"""The batch orchestrator: run many independent trials on any backend.

``BatchRunner`` executes :class:`~repro.exec.spec.TrialSpec` lists through a
pluggable :class:`~repro.exec.backends.ExecutionBackend` -- in-process
(``serial``), process pool (``process``), persistent wire workers
(``workerpool``) or an arbitrary dispatch command (``command``).  The runner
itself stays the single deterministic orchestrator: every bit of randomness
a trial consumes is derived from fields of its spec -- never from worker
identity, dispatch order or shared state -- and results always come back in
submission order, so **all backends are bit-identical** for a fixed master
seed (pinned registry-wide by ``tests/exec/test_algorithm_registry.py``).

The backend is chosen per run, strongest selector first: an
:class:`ExecutionBackend` instance (caller owns its lifecycle), a registry
name string, the ``REPRO_EXEC_BACKEND`` environment override, and finally
the historical default -- serial for ``workers=1`` (or single-trial
batches), a process pool otherwise.  Since the
:class:`~repro.exec.config.ExecutionProfile` redesign that chain is the
profile's precedence rule (explicit > CLI > env > default):
``BatchRunner(profile=...)`` is the configuration surface, and the legacy
``backend=`` keyword survives as a ``DeprecationWarning`` shim that folds
into the profile.  Trials that cannot reach a wire
backend's fresh worker interpreters (locally registered algorithms,
``keep_simulation`` transcripts, non-JSON kwargs) transparently execute
in-process instead: the backend never changes *what* a run returns, only
*where* trials execute.

An optional :class:`~repro.exec.cache.ResultCache` is consulted before
dispatch and filled from the parent process after execution (a single
writer, though entry writes are atomic anyway), making re-runs of large
campaigns free.

Two extensions serve multi-machine campaigns (see :mod:`repro.campaign`):
``run(specs, shard=Shard(k, m))`` executes only the trials whose fingerprint
assigns them to shard ``k`` of ``m``, and ``on_error="capture"`` turns a
failing trial into a :class:`TrialResult` with ``error`` set instead of
aborting the whole batch -- the campaign runner's bounded-retry loop is
built on it.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..core.result import TrialOutcome
from ..graphs.generators import get_family
from ..obs.tracer import Tracer, TraceSink, current_tracer
from .algorithms import get_algorithm
from .backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    TrialExecutionError,
    make_backend,
)
from .cache import ResultCache
from .config import ExecutionProfile, _fold_deprecated_backend
from .execute import (
    TrialPayload,
    _check_capabilities,
    default_worker_count,
    execute_trial,
    guarded_payload,
)
from .fingerprint import trial_fingerprint
from .report import BatchSummary, ProgressReporter, ReporterSink
from .shard import Shard
from .spec import GraphSpec, SweepSpec, TrialSpec

__all__ = ["BatchRunner", "TrialResult", "execute_trial", "default_worker_count"]


@dataclass
class TrialResult:
    """One executed (or cache-served, or failed-and-captured) trial.

    ``fingerprint`` is only computed when the runner has a cache configured
    or the batch is sharded (the inline-graph digest is O(m)); it is the
    empty string otherwise.  ``error`` is ``None`` for successful trials; a
    runner in ``on_error="capture"`` mode sets it to the failure's
    one-line description and leaves ``outcome`` as ``None``.
    """

    spec: TrialSpec
    fingerprint: str
    outcome: Optional[TrialOutcome]
    elapsed_seconds: float
    from_cache: bool
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        """Whether this trial raised instead of producing an outcome."""
        return self.error is not None


class BatchRunner:
    """Deterministic executor for independent trials over a chosen backend."""

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        reporter: Optional[ProgressReporter] = None,
        on_error: str = "raise",
        backend: Union[None, str, ExecutionBackend] = None,
        sinks: Sequence[TraceSink] = (),
        profile: Optional[ExecutionProfile] = None,
    ) -> None:
        if on_error not in ("raise", "capture"):
            raise ValueError("on_error must be 'raise' or 'capture', got %r" % on_error)
        if backend is not None and not isinstance(backend, (str, ExecutionBackend)):
            raise TypeError(
                "backend must be a name, an ExecutionBackend instance or None; "
                "got %r" % type(backend).__name__
            )
        if profile is not None and not isinstance(profile, ExecutionProfile):
            raise TypeError(
                "profile must be an ExecutionProfile or None; got %r"
                % type(profile).__name__
            )
        # Deprecation shim: the legacy backend= keyword folds into the
        # profile, which is the single selection surface since the
        # ExecutionProfile redesign.
        self.profile = _fold_deprecated_backend(profile, backend, "BatchRunner")
        workers = workers if workers is not None else self.profile.effective_workers(default=1)
        if workers < 1:
            raise ValueError("workers must be at least 1, got %d" % workers)
        self.sinks: Tuple[TraceSink, ...] = tuple(sinks)
        for sink in self.sinks:
            if not isinstance(sink, TraceSink):
                raise TypeError(
                    "sinks must be TraceSink instances; got %r" % type(sink).__name__
                )
        self.reporter = reporter
        if reporter is not None:
            # Deprecation shim: the observer interface is bridged onto the
            # sink API; existing reporters keep receiving their exact
            # historical callbacks.
            warnings.warn(
                "BatchRunner(reporter=...) is deprecated; pass "
                "sinks=(ProgressSink(...),) or wrap a custom reporter in "
                "ReporterSink (see repro.exec.report)",
                DeprecationWarning,
                stacklevel=2,
            )
            self.sinks += (ReporterSink(reporter),)
        self.workers = workers
        self.cache = cache
        self.on_error = on_error
        #: Kept readable for callers of the pre-profile API; the resolution
        #: itself goes through ``self.profile``.
        self.backend = self.profile.backend
        self.last_summary: Optional[BatchSummary] = None
        #: Registry name of the backend the most recent ``run`` dispatched to.
        self.last_backend_name: Optional[str] = None

    # ------------------------------------------------------------ validation
    def _validate_spec(self, spec: TrialSpec) -> None:
        """Fail fast on specs that would execute wrongly or non-reproducibly."""
        get_algorithm(spec.algorithm)  # unknown algorithm name
        _check_capabilities(spec)
        if isinstance(spec.graph, GraphSpec):
            family = get_family(spec.graph.family)  # unknown family name
            if family.supports_seed and spec.graph.seed is None:
                raise ValueError(
                    "randomised graph family %r needs an explicit seed: an unseeded "
                    "build differs per execution, which would break the runner's "
                    "determinism and poison the cache (SweepSpec.expand derives "
                    "graph seeds automatically)" % spec.graph.family
                )
        if self.cache is not None and spec.algo_kwargs.get("keep_simulation"):
            raise ValueError(
                "keep_simulation cannot be combined with a result cache: the raw "
                "simulation transcript is not cached, so hits would silently "
                "return outcomes without it"
            )

    # ------------------------------------------------------------------- api
    def run(
        self,
        specs: Iterable[TrialSpec],
        shard: Optional[Shard] = None,
        fingerprints: Optional[List[str]] = None,
    ) -> List[TrialResult]:
        """Execute every spec and return results in submission order.

        With ``shard=Shard(k, m)`` only the trials whose fingerprint assigns
        them to shard ``k`` of ``m`` are executed; the returned list covers
        just those trials (still in submission order).  Because assignment is
        by fingerprint, the union of the ``m`` shard runs equals the
        unsharded run trial for trial, and all shards fill compatible cache
        entries.

        ``fingerprints`` may carry the specs' precomputed trial fingerprints
        (one per spec, in order) to spare recomputation -- the inline-graph
        digest is O(m), and campaign runners already hold them.
        """
        spec_list = list(specs)
        if self.profile.effective_simulator() is not None:
            # The profile's run-wide engine is applied before validation and
            # fingerprinting (the simulator participates in the trial
            # fingerprint).  Callers passing precomputed ``fingerprints``
            # must pass profile-applied specs -- the campaign runner does.
            spec_list = [self.profile.apply_to_spec(spec) for spec in spec_list]
        for spec in spec_list:
            self._validate_spec(spec)

        if fingerprints is not None and len(fingerprints) != len(spec_list):
            raise ValueError(
                "expected %d fingerprints, got %d" % (len(spec_list), len(fingerprints))
            )
        if fingerprints is None:
            # The fingerprint is only worth computing when something keys off
            # it: a cache to consult or a shard assignment to decide.
            need_fingerprint = self.cache is not None or shard is not None
            fingerprints = [
                trial_fingerprint(spec) if need_fingerprint else "" for spec in spec_list
            ]
        if shard is not None:
            keep = [i for i, fp in enumerate(fingerprints) if shard.owns(fp)]
            spec_list = [spec_list[i] for i in keep]
            fingerprints = [fingerprints[i] for i in keep]

        total = len(spec_list)
        tracer = current_tracer().with_sinks(self.sinks)
        traced = tracer.enabled
        tracer.event("batch.started", total=total, workers=self.workers)
        start = time.perf_counter()

        results: List[Optional[TrialResult]] = [None] * total
        done = 0
        cache_hits = 0
        failures = 0
        compute_seconds = 0.0

        # Serve cache hits first, collect the misses for execution.  The
        # lookup is one batched get_many call (a handful of indexed queries
        # on the SQLite backend instead of one per trial); hit/miss
        # accounting and the per-trial trace events are unchanged.
        cached_list: List[Optional[object]] = (
            self.cache.get_many(fingerprints) if self.cache is not None else []
        )
        pending: List[Tuple[int, str, TrialSpec]] = []
        for index, (spec, fingerprint) in enumerate(zip(spec_list, fingerprints)):
            cached = cached_list[index] if self.cache is not None else None
            if traced and self.cache is not None:
                tracer.event(
                    "cache.hit" if cached is not None else "cache.miss",
                    fingerprint=fingerprint,
                )
            if cached is not None:
                results[index] = TrialResult(
                    spec=spec,
                    fingerprint=fingerprint,
                    outcome=cached.outcome,
                    elapsed_seconds=0.0,
                    from_cache=True,
                )
                done += 1
                cache_hits += 1
                self._trial_finished(tracer, results[index], done, total)
            else:
                pending.append((index, fingerprint, spec))

        if pending:
            for index, result in self._execute_pending(pending):
                results[index] = result
                compute_seconds += result.elapsed_seconds
                if result.failed:
                    failures += 1
                elif self.cache is not None:
                    with tracer.span("cache.put", fingerprint=result.fingerprint):
                        self.cache.put(
                            result.fingerprint,
                            result.spec,
                            result.outcome,
                            result.elapsed_seconds,
                        )
                done += 1
                self._trial_finished(tracer, result, done, total)

        summary = BatchSummary(
            trials=total,
            executed=len(pending) - failures,
            cache_hits=cache_hits,
            workers=self.workers,
            wall_seconds=time.perf_counter() - start,
            compute_seconds=compute_seconds,
            failures=failures,
        )
        self.last_summary = summary
        tracer.event(
            "batch.finished",
            trials=total,
            executed=summary.executed,
            cache_hits=cache_hits,
            failures=failures,
            wall_s=summary.wall_seconds,
            compute_s=summary.compute_seconds,
            _summary=summary,
        )
        return [result for result in results if result is not None]

    def _trial_finished(
        self, tracer: Tracer, result: TrialResult, done: int, total: int
    ) -> None:
        """Emit one trial's completion event (free when nothing subscribes)."""
        if not tracer.enabled:
            return
        outcome = result.outcome
        metrics = {"cached": int(result.from_cache), "failed": int(result.failed)}
        if outcome is not None:
            metrics.update(
                messages=outcome.messages,
                message_units=outcome.message_units,
                rounds=outcome.rounds,
            )
        tracer.event(
            "trial.finished",
            done=done,
            total=total,
            label=result.spec.describe(),
            algorithm=result.spec.algorithm,
            cached=result.from_cache,
            failed=result.failed,
            error=result.error,
            elapsed_s=result.elapsed_seconds,
            metrics=metrics,
            _result=result,
        )

    def run_sweep(self, sweep: SweepSpec, shard: Optional[Shard] = None) -> List[TrialResult]:
        """Expand a sweep and run it (flat, ``expand``-ordered results)."""
        return self.run(sweep.expand(), shard=shard)

    # ------------------------------------------------------------- execution
    def _resolve_backend(self, pending_count: int) -> Tuple[ExecutionBackend, bool]:
        """The backend this run dispatches to, plus whether this run owns it.

        Selection order (the profile's precedence rule): explicit instance
        (caller-owned, left running for the next batch), explicit name, the
        ``REPRO_EXEC_BACKEND`` environment override, then the
        workers-derived historical default -- in-process for ``workers=1``
        and single-trial batches, a process pool otherwise.
        """
        choice = self.profile.effective_backend()
        if isinstance(choice, ExecutionBackend):
            return choice, False
        if isinstance(choice, str):
            return make_backend(choice, workers=self.workers), True
        if self.workers == 1 or pending_count == 1:
            return SerialBackend(), True
        return ProcessPoolBackend(workers=min(self.workers, pending_count)), True

    def _execute_pending(
        self, pending: List[Tuple[int, str, TrialSpec]]
    ) -> Iterable[Tuple[int, TrialResult]]:
        backend, owned = self._resolve_backend(len(pending))
        self.last_backend_name = backend.name
        wired, inline = [], []
        for entry in pending:
            (wired if backend.wire_safe(entry[2]) else inline).append(entry)
        try:
            if owned:
                backend.start()
            if wired:
                specs = [spec for _, _, spec in wired]
                for position, payload in backend.map(specs):
                    index, fingerprint, spec = wired[position]
                    yield index, self._to_result(spec, fingerprint, payload)
            # Trials the backend's workers cannot reach (see the module
            # docstring) execute in the orchestrating process instead;
            # outcomes are identical wherever a trial runs.
            for index, fingerprint, spec in inline:
                yield index, self._to_result(spec, fingerprint, guarded_payload(spec))
        finally:
            if owned:
                backend.close()

    def _to_result(self, spec: TrialSpec, fingerprint: str, payload: TrialPayload) -> TrialResult:
        """Wrap a backend payload into a TrialResult (raise mode re-raises)."""
        if payload.error is not None and self.on_error != "capture":
            if payload.exception is not None:
                raise payload.exception
            raise TrialExecutionError(payload.error)
        return TrialResult(
            spec=spec,
            fingerprint=fingerprint,
            outcome=payload.outcome,
            elapsed_seconds=payload.elapsed_seconds,
            from_cache=False,
            error=payload.error,
        )
