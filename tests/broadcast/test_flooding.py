"""Tests for flooding broadcast."""

import pytest

from repro.broadcast import run_flooding_broadcast
from repro.graphs import complete_graph, cycle_graph, expander_graph, path_graph


class TestFlooding:
    def test_informs_everyone(self):
        outcome = run_flooding_broadcast(expander_graph(48, seed=1), sources={0}, seed=2)
        assert outcome.all_informed

    def test_requires_a_source(self):
        with pytest.raises(ValueError):
            run_flooding_broadcast(cycle_graph(8), sources=set())

    def test_message_cost_is_theta_m(self):
        graph = complete_graph(32)
        outcome = run_flooding_broadcast(graph, sources={0}, seed=3)
        assert graph.num_edges <= outcome.messages <= 2 * graph.num_edges

    def test_round_count_tracks_eccentricity(self):
        graph = path_graph(20)
        outcome = run_flooding_broadcast(graph, sources={0}, seed=4)
        assert outcome.rounds >= 19

    def test_multiple_sources_reduce_rounds(self):
        graph = path_graph(21)
        single = run_flooding_broadcast(graph, sources={0}, seed=5)
        double = run_flooding_broadcast(graph, sources={0, 20}, seed=5)
        assert double.rounds <= single.rounds

    def test_rumor_value_propagates(self):
        outcome = run_flooding_broadcast(cycle_graph(10), sources={3}, rumor=777, seed=6)
        assert outcome.all_informed
