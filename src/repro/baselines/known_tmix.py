"""The known-mixing-time election of Kutten et al. [25].

The prior sublinear algorithm assumes every node *knows* ``t_mix`` and runs a
single random-walk phase of exactly that length; contenders then simply keep
the largest id they have heard of through shared proxies.  Removing the
known-``t_mix`` assumption is the main algorithmic contribution of the
reproduced paper, so this baseline is the natural ablation: identical
machinery, but the guess-and-double loop replaced by one oracle-length phase.

We reuse :class:`repro.core.LeaderElectionNode` and override only the decision
rule: the single phase always stops, and the contender with the largest id in
its ``I4`` view elects itself.
"""

from __future__ import annotations

from typing import Optional

from ..core.leader_election import LeaderElectionNode
from ..core.params import DEFAULT_PARAMETERS, ElectionParameters
from ..core.result import ElectionOutcome, outcome_from_simulation
from typing import Sequence

from ..graphs.ports import PortNumberedGraph
from ..graphs.topology import Graph
from ..sim.network import MessageObserver, Network
from ..sim.node import NodeContext
from ..sim.rng import derive_seed

__all__ = ["KnownTmixNode", "known_tmix_factory", "run_known_tmix_election"]


class KnownTmixNode(LeaderElectionNode):
    """Single-phase election with an oracle-provided walk length."""

    def _decide(self, window) -> None:
        """Always stop after the first (only) phase and elect on the largest id."""
        own_tree = self._tree(self.identifier, window.index, create=False)
        if own_tree is not None and own_tree.is_proxy:
            own_tree.local_report_contribution(self.proxy_origins)
            ids, distinct, _ = own_tree.report_payload()
            self.adjacency_ids |= ids
            self.distinct_count_phase += distinct

        self.active = False
        self.stopped = True
        self.satisfied_intersection = True
        self.satisfied_distinctness = True

        competitors = self.i4_ids | self.adjacency_ids
        has_largest_id = all(self.identifier >= other for other in competitors)
        if has_largest_id and not self.heard_winner:
            self.is_leader = True
            self.heard_winner = True
            self._announce_victory(window)


def known_tmix_factory(
    mixing_time: int,
    params: ElectionParameters = DEFAULT_PARAMETERS,
    safety_factor: float = 1.0,
):
    """Protocol factory with the walk length pinned to ``safety_factor * t_mix``."""
    walk_length = max(1, round(safety_factor * mixing_time))
    pinned = params.with_overrides(initial_walk_length=walk_length)

    def factory(ctx: NodeContext) -> KnownTmixNode:
        return KnownTmixNode(ctx, params=pinned)

    return factory


def run_known_tmix_election(
    graph: Graph,
    mixing_time: int,
    params: ElectionParameters = DEFAULT_PARAMETERS,
    safety_factor: float = 1.0,
    seed: Optional[int] = None,
    max_rounds: int = 1_000_000,
    observers: Sequence[MessageObserver] = (),
) -> ElectionOutcome:
    """Run the [25] baseline: one phase of walks of length ``safety_factor * t_mix``."""
    port_graph = PortNumberedGraph(graph, seed=None if seed is None else derive_seed(seed, 0x41))
    network = Network(
        port_graph,
        known_tmix_factory(mixing_time, params=params, safety_factor=safety_factor),
        seed=None if seed is None else derive_seed(seed, 0x42),
        observers=observers,
    )
    result = network.run(max_rounds=max_rounds)
    return outcome_from_simulation(result)
