"""The cache-backend protocol shared by the JSON-tree and SQLite stores.

A backend owns the *physical* representation of fingerprint-keyed trial
entries; everything semantic -- payload construction, hit/miss accounting,
prune budgets, outcome (de)serialisation -- lives in the
:class:`~repro.exec.cache.ResultCache` facade, so the two store layouts can
never drift apart behaviourally.  The unit both sides exchange is the *entry
document*: the exact JSON payload the cache has always written to disk
(``fingerprint`` / ``trial`` / ``label`` / ``outcome`` / ``elapsed_seconds``
/ ``created``), serialised with sorted keys.  Backends store and return that
document verbatim, which is what keeps a merged SQLite cache byte-identical
to the JSON tree at the report level.

Backends additionally serve :class:`OutcomeSummary` rows -- a tiny derived
projection (classification, success, message/round counts) -- and
:class:`SummaryAggregate` folds of whole configuration groups, which is what
the streaming report path actually consumes: exact counts and integer sums,
never a full outcome.  The SQLite backend materialises summaries as
dedicated columns at write time and folds aggregates inside the database;
the JSON backend derives both on read.
"""

from __future__ import annotations

import logging
import os
import tempfile
from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional, Tuple

from ...core.result import TrialOutcome
from ..serialize import outcome_from_dict

__all__ = [
    "CacheBackend",
    "OutcomeSummary",
    "SummaryAggregate",
    "aggregate_summaries",
    "atomic_write_bytes",
    "summary_from_outcome",
    "summary_from_document",
]

#: Every backend logs corruption on the historical cache logger name, so
#: ``caplog.at_level(..., logger="repro.exec.cache")`` keeps observing all of
#: them whichever store is active.
logger = logging.getLogger("repro.exec.cache")


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` so readers never see a partial file.

    The single crash-safety protocol every on-disk artefact of a campaign
    uses (cache entries, cache merges, manifests): write to a same-directory
    ``.tmp-`` file, then ``os.replace`` -- atomic on POSIX and Windows -- and
    unlink the temp file if anything goes wrong in between.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, temp_path = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".json")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


class OutcomeSummary(NamedTuple):
    """The aggregate-relevant projection of one cached trial outcome.

    Carries exactly the fields :func:`repro.analysis.experiments.sweep_summary`
    reads per outcome, so streaming reports over millions of entries parse a
    ~100-byte row instead of a full payload.  ``success`` is stored
    explicitly (it is kind-aware on :class:`TrialOutcome`), so the summary
    never re-derives semantics.  A ``NamedTuple`` rather than a dataclass on
    purpose: the streaming report path constructs one of these per cached
    row, and tuple construction is several times cheaper than frozen
    dataclass ``__init__``.
    """

    algorithm: str
    kind: str
    classification: str
    success: bool
    messages: int
    message_units: int
    rounds: int

    def to_document(self) -> Dict[str, object]:
        """Plain JSON-serialisable form (the SQLite ``summary`` column)."""
        return {
            "algorithm": self.algorithm,
            "kind": self.kind,
            "classification": self.classification,
            "success": self.success,
            "messages": self.messages,
            "message_units": self.message_units,
            "rounds": self.rounds,
        }

    @classmethod
    def from_document(cls, document: Dict[str, object]) -> "OutcomeSummary":
        return cls(
            algorithm=str(document["algorithm"]),
            kind=str(document["kind"]),
            classification=str(document["classification"]),
            success=bool(document["success"]),
            messages=int(document["messages"]),
            message_units=int(document["message_units"]),
            rounds=int(document["rounds"]),
        )


def summary_from_outcome(outcome: TrialOutcome) -> OutcomeSummary:
    """Project one full outcome down to its aggregate summary."""
    return OutcomeSummary(
        algorithm=outcome.algorithm,
        kind=outcome.kind,
        classification=outcome.classification,
        success=bool(outcome.success),
        messages=outcome.messages,
        message_units=outcome.message_units,
        rounds=outcome.rounds,
    )


def summary_from_document(document: Dict[str, object]) -> OutcomeSummary:
    """Derive the summary of a full entry document (raises on corruption)."""
    return summary_from_outcome(outcome_from_dict(document["outcome"]))


class SummaryAggregate(NamedTuple):
    """One configuration group's summaries, already folded to exact integers.

    This is the unit the streaming report path asks a backend for: instead
    of materialising one :class:`OutcomeSummary` per trial, the backend
    folds a whole configuration's rows down to the handful of counts and
    integer sums the aggregate table is made of (the SQLite backend does the
    fold inside the database with one ``GROUP BY`` query per fingerprint
    chunk).  All fields are exact -- counts and integer sums, never floats --
    so the report row computed from an aggregate is bit-identical to the
    one computed by folding the individual summaries in Python, whichever
    backend produced it.

    ``kind`` selects the classification label family of the row (``None``
    when nothing was found); if a group ever mixes outcome kinds (only
    possible with a hand-edited cache -- a configuration runs one
    algorithm), the lexicographically smallest kind is chosen, a rule every
    backend can implement identically.
    """

    #: Distinct fingerprints asked about (the group's trial count).
    requested: int
    #: How many of them the store answered (the ``done`` column).
    done: int
    #: Summaries whose kind-aware success flag was set.
    successes: int
    sum_messages: int
    sum_message_units: int
    sum_rounds: int
    kind: Optional[str]
    #: ``(classification, count)`` pairs, sorted by label.
    classification_counts: Tuple[Tuple[str, int], ...]


def aggregate_summaries(
    requested: int, summaries: Iterable[Optional[OutcomeSummary]]
) -> SummaryAggregate:
    """Fold summary rows into a :class:`SummaryAggregate` (the reference
    implementation every backend's ``aggregate`` must agree with)."""
    done = successes = sum_messages = sum_message_units = sum_rounds = 0
    counts: Dict[str, int] = {}
    kinds = set()
    for summary in summaries:
        if summary is None:
            continue
        done += 1
        if summary.success:
            successes += 1
        sum_messages += summary.messages
        sum_message_units += summary.message_units
        sum_rounds += summary.rounds
        counts[summary.classification] = counts.get(summary.classification, 0) + 1
        kinds.add(summary.kind)
    return SummaryAggregate(
        requested=requested,
        done=done,
        successes=successes,
        sum_messages=sum_messages,
        sum_message_units=sum_message_units,
        sum_rounds=sum_rounds,
        kind=min(kinds) if kinds else None,
        classification_counts=tuple(sorted(counts.items())),
    )


class CacheBackend:
    """Physical store interface behind :class:`~repro.exec.cache.ResultCache`.

    Subclasses implement fingerprint-keyed storage of entry documents.  Any
    method may assume the facade already validated semantics; backends only
    guarantee atomicity/durability of their own representation and must treat
    their *own* corrupt entries as logged ``None`` results, never raise.
    """

    #: Registry name ("json" / "sqlite"), also reported by ``stats()``.
    name: str = "?"

    def __init__(self, root: str) -> None:
        self.root = root

    # ------------------------------------------------------------------ entries
    def load(self, fingerprint: str) -> Optional[Dict[str, object]]:
        """The stored entry document, or ``None`` when absent or corrupt."""
        raise NotImplementedError

    def load_many(self, fingerprints: List[str]) -> List[Optional[Dict[str, object]]]:
        """Batched :meth:`load`; same order as ``fingerprints``."""
        return [self.load(fingerprint) for fingerprint in fingerprints]

    def store(self, fingerprint: str, document: Dict[str, object]) -> None:
        """Persist one entry document atomically (replacing any previous)."""
        raise NotImplementedError

    def summaries(self, fingerprints: List[str]) -> List[Optional[OutcomeSummary]]:
        """Batched aggregate summaries; ``None`` where absent or corrupt."""
        results: List[Optional[OutcomeSummary]] = []
        for document in self.load_many(fingerprints):
            if document is None:
                results.append(None)
                continue
            try:
                results.append(summary_from_document(document))
            except (ValueError, KeyError, TypeError) as exc:
                logger.warning(
                    "treating unsummarisable cache entry %s as a miss (%s: %s)",
                    document.get("fingerprint", "?"),
                    type(exc).__name__,
                    exc,
                )
                results.append(None)
        return results

    def aggregate(self, fingerprints: List[str]) -> SummaryAggregate:
        """One configuration group's summaries folded to exact counts/sums.

        Defined over the *distinct* fingerprints (stores hold one entry per
        fingerprint, so duplicates cannot contribute twice).  Backends may
        override with a push-down implementation, but must return exactly
        what :func:`aggregate_summaries` over :meth:`summaries` returns --
        the report byte-identity property rests on it.
        """
        distinct = list(dict.fromkeys(fingerprints))
        return aggregate_summaries(len(distinct), self.summaries(distinct))

    # ---------------------------------------------------------------- inventory
    def fingerprints(self) -> Iterator[str]:
        """Every stored fingerprint, sorted."""
        raise NotImplementedError

    def documents(self) -> Iterator[Dict[str, object]]:
        """Every readable entry document (corrupt ones silently skipped)."""
        raise NotImplementedError

    def count(self) -> int:
        """Number of stored entries."""
        raise NotImplementedError

    def total_bytes(self) -> int:
        """Payload bytes the store holds (its accounting unit)."""
        raise NotImplementedError

    def stamped(self) -> List[Tuple[float, str]]:
        """``(created, fingerprint)`` pairs; corrupt entries stamp ``0.0``."""
        raise NotImplementedError

    # -------------------------------------------------------------- maintenance
    def delete(self, fingerprints: Iterable[str]) -> int:
        """Remove the given entries; return how many actually existed."""
        raise NotImplementedError

    def merge_from(self, other: "CacheBackend") -> int:
        """Import every entry of ``other`` this store lacks; return the count."""
        raise NotImplementedError

    def compact(self) -> None:
        """Reclaim physical space after deletions (no-op where meaningless)."""

    def path_for(self, fingerprint: str) -> str:
        """Filesystem path of one entry, for stores that have one per entry."""
        raise NotImplementedError(
            "the %r cache backend does not store one file per entry; "
            "use get()/entries() instead of path_for()" % self.name
        )

    def close(self) -> None:
        """Release store handles (safe to call more than once)."""
