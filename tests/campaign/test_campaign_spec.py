"""Tests for CampaignSpec/RetryPolicy: validation, expansion, fingerprints."""

import pytest

from repro.campaign import CampaignSpec, RetryPolicy
from repro.core import ElectionParameters
from repro.exec import GraphSpec, SweepSpec, TrialSpec

FAST = ElectionParameters(c1=3.0, c2=0.5)


def _sweep(name="scaling", sizes=(12, 16), trials=2, base_seed=7):
    return SweepSpec(
        name=name,
        configs=tuple(
            TrialSpec(graph=GraphSpec("clique", (n,)), params=FAST, label="n=%d" % n)
            for n in sizes
        ),
        trials=trials,
        base_seed=base_seed,
    )


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.retries == 2

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestCampaignSpec:
    def test_requires_name_and_sweeps(self):
        with pytest.raises(ValueError):
            CampaignSpec(name="", sweeps=(_sweep(),))
        with pytest.raises(ValueError):
            CampaignSpec(name="c", sweeps=())

    def test_rejects_duplicate_sweep_names(self):
        with pytest.raises(ValueError):
            CampaignSpec(name="c", sweeps=(_sweep("a"), _sweep("a")))

    def test_num_trials_sums_sweeps(self):
        campaign = CampaignSpec(name="c", sweeps=(_sweep("a"), _sweep("b", trials=3)))
        assert campaign.num_trials == 4 + 6

    def test_sweep_lookup(self):
        campaign = CampaignSpec(name="c", sweeps=(_sweep("a"), _sweep("b")))
        assert campaign.sweep("b").name == "b"
        with pytest.raises(KeyError):
            campaign.sweep("missing")

    def test_expand_is_sweep_major_and_matches_sweep_expansion(self):
        first, second = _sweep("a"), _sweep("b", base_seed=9)
        campaign = CampaignSpec(name="c", sweeps=(first, second))
        pairs = campaign.expand()
        assert [name for name, _ in pairs] == ["a"] * 4 + ["b"] * 4
        assert [spec for name, spec in pairs if name == "a"] == first.expand()
        assert [spec for name, spec in pairs if name == "b"] == second.expand()

    def test_fingerprint_stable_and_sensitive(self):
        campaign = CampaignSpec(name="c", sweeps=(_sweep(),))
        again = CampaignSpec(name="c", sweeps=(_sweep(),))
        assert campaign.fingerprint() == again.fingerprint()
        renamed = CampaignSpec(name="d", sweeps=(_sweep(),))
        reseeded = CampaignSpec(name="c", sweeps=(_sweep(base_seed=8),))
        retried = CampaignSpec(
            name="c", sweeps=(_sweep(),), retry=RetryPolicy(max_attempts=5)
        )
        fingerprints = {
            campaign.fingerprint(),
            renamed.fingerprint(),
            reseeded.fingerprint(),
            retried.fingerprint(),
        }
        assert len(fingerprints) == 4
