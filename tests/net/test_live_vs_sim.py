"""The cross-validation contract: live deployments equal the simulator.

Every test here runs a real deployment -- one OS process per node, frames
over a Unix-domain socket -- and asserts the resulting
:class:`~repro.core.result.TrialOutcome` is *identical* to the simulator's
for the same spec: winners, classification, crashed nodes, and every
model-level metric, with only ``metrics.net_events`` allowed to differ.
"""

import pytest

from repro.core import ElectionParameters
from repro.exec import GraphSpec, TrialSpec
from repro.faults import CrashFaults, FaultPlan, MessageFaults
from repro.net.coordinator import compare_outcomes, cross_validate, run_live_trial

FAST = ElectionParameters(c1=3.0, c2=0.5)

#: Three structurally different families, all on 8 nodes.
GRAPHS = {
    "expander": GraphSpec("expander", (8,), {"degree": 4}, seed=5),
    "hypercube": GraphSpec("hypercube", (3,)),
    "gilbert": GraphSpec("gilbert", (8, 0.9), seed=11),
}

#: A mixed-fault adversary: message loss plus two crash-stops mid-run.
FAULTY = FaultPlan(
    messages=MessageFaults(drop_probability=0.05),
    crashes=CrashFaults(count=2, at_round=20),
)

GRID = [
    pytest.param(algorithm, family, plan, id="%s-%s-%s" % (algorithm, family, label))
    for algorithm in ("election", "known_tmix")
    for family in GRAPHS
    for label, plan in (("faultfree", None), ("faulty", FAULTY))
]


@pytest.mark.parametrize("algorithm,family,plan", GRID)
def test_live_outcome_equals_simulated_outcome(algorithm, family, plan):
    spec = TrialSpec(
        graph=GRAPHS[family],
        algorithm=algorithm,
        seed=42,
        params=FAST,
        fault_plan=plan,
    )
    agreement = cross_validate(spec)
    assert agreement.agrees, "\n".join(agreement.mismatches)
    # The contract's fine print: live metrics match the simulator's exactly
    # (fault counters included), and transport costs are recorded separately.
    assert agreement.live.metrics.fault_events == agreement.sim.metrics.fault_events
    assert agreement.live.metrics.net_events
    assert not agreement.sim.metrics.net_events
    if plan is not None:
        assert agreement.live.crashed_nodes == agreement.sim.crashed_nodes
        assert len(agreement.live.crashed_nodes) == 2


def test_tcp_transport_matches_too():
    spec = TrialSpec(
        graph=GRAPHS["expander"], algorithm="election", seed=7, params=FAST
    )
    agreement = cross_validate(spec, transport="tcp")
    assert agreement.agrees, "\n".join(agreement.mismatches)


def test_live_run_is_replayable():
    spec = TrialSpec(
        graph=GRAPHS["hypercube"], algorithm="election", seed=13, params=FAST
    )
    first = run_live_trial(spec)
    second = run_live_trial(spec)
    # Two independent live deployments of the same seed are the same trial.
    assert not compare_outcomes(first, second)


def test_live_run_requires_a_seed():
    spec = TrialSpec(graph=GRAPHS["expander"], algorithm="election", seed=None)
    with pytest.raises(ValueError, match="seed"):
        run_live_trial(spec)
