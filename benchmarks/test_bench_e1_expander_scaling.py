"""E1 -- Theorem 13 on expanders: messages ~ sqrt(n) polylog(n) t_mix, rounds ~ t_mix polylog.

The paper's headline example: on expander graphs (t_mix = O(log n)) implicit
leader election costs O(sqrt(n) log^{9/2} n) messages -- sublinear in n for
large n, and in particular far below the Omega(m) cost of flooding-based
algorithms.  Each sweep point is a ``repro.exec`` trial spec executed through
the batch runner (the timed portion is exactly one election, graph build
included, as before); the companion assertions check the shape: the fitted
message exponent stays well below the exponent of m (= 1 for constant-degree
expanders would be matched only asymptotically; what we check is that the
measured exponent stays below ~0.95).
"""

from dataclasses import replace

import pytest

from repro.analysis import fit_power_law, upper_bound_messages_congest
from repro.exec import BatchRunner, GraphSpec, TrialSpec, build_graph
from repro.graphs import mixing_time

SIZES = [64, 128, 256]
SEED = 2024

_RUNNER = BatchRunner(workers=1)
_GRAPHS = {}
_OUTCOMES = {}


def _spec(n):
    return TrialSpec(
        graph=GraphSpec("expander", (n,), {"degree": 4}, seed=SEED + n),
        algorithm="election",
        seed=SEED + 7 * n,
        label="e1 n=%d" % n,
    )


def _graph(n):
    if n not in _GRAPHS:
        _GRAPHS[n] = build_graph(_spec(n).graph)
    return _GRAPHS[n]


def _run(n):
    # Build once inside the timed region (as the original driver did) and
    # hand the instance to the runner inline, so extra_info reuses it.
    spec = _spec(n)
    _GRAPHS[n] = build_graph(spec.graph)
    outcome = _RUNNER.run([replace(spec, graph=_GRAPHS[n])])[0].outcome
    _OUTCOMES[n] = outcome
    return outcome


@pytest.mark.parametrize("n", SIZES)
def test_e1_expander_election(benchmark, n):
    outcome = benchmark.pedantic(_run, args=(n,), rounds=1, iterations=1)
    t_mix = mixing_time(_graph(n))
    benchmark.extra_info.update(
        {
            "n": n,
            "m": _graph(n).num_edges,
            "t_mix": t_mix,
            "messages": outcome.messages,
            "message_units": outcome.message_units,
            "rounds": outcome.rounds,
            "contenders": outcome.num_contenders,
            "leaders": outcome.num_leaders,
            "bound_congest": round(upper_bound_messages_congest(n, t_mix), 1),
        }
    )
    assert outcome.success
    # Within a moderate constant of the Theorem 13 envelope.
    assert outcome.message_units <= upper_bound_messages_congest(n, t_mix, constant=16.0)


def test_e1_messages_track_the_theorem13_curve(benchmark):
    """The measured cost follows the O(sqrt(n) log^{7/2} n t_mix) reference shape.

    At laptop sizes the polylog factors dominate a comparison against m on
    sparse expanders (the asymptotic crossover needs n in the tens of
    thousands), so the shape check is done against the reference curve: the
    ratio measured / bound must stay within a narrow band across sizes.
    """

    def measure():
        ratios = []
        for n in SIZES:
            if n not in _OUTCOMES:
                _run(n)
            bound = upper_bound_messages_congest(n, mixing_time(_graph(n)))
            ratios.append(_OUTCOMES[n].message_units / bound)
        fit = fit_power_law(SIZES, [_OUTCOMES[n].messages for n in SIZES])
        return ratios, fit

    ratios, fit = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "ratios_to_bound": [round(r, 3) for r in ratios],
            "fitted_message_exponent": round(fit.exponent, 3),
        }
    )
    assert max(ratios) / min(ratios) <= 4.0
