"""Explicit leader election (Corollary 14): implicit election + push-pull broadcast.

The paper observes that, once an implicit leader exists, broadcasting its id
with push-pull gossip costs ``O(n log n / phi)`` messages and
``O(log n / phi)`` rounds, and that for well-connected graphs the election
dominates the broadcast in *time* while the broadcast dominates in *messages*
(which is why the implicit variant can beat the ``Omega(n)`` explicit bound).
This module composes the two phases and reports both cost components so the
E6 experiment can show the split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..broadcast.push_pull import BroadcastOutcome, run_push_pull_broadcast
from ..graphs.topology import Graph
from ..sim.rng import derive_seed
from .params import DEFAULT_PARAMETERS, ElectionParameters
from .result import ElectionOutcome
from .runner import run_leader_election

__all__ = ["ExplicitElectionOutcome", "run_explicit_leader_election"]


@dataclass
class ExplicitElectionOutcome:
    """Combined outcome of the election phase and the broadcast phase."""

    election: ElectionOutcome
    broadcast: Optional[BroadcastOutcome]

    @property
    def success(self) -> bool:
        """Exactly one leader was elected and every node learned its identity."""
        if not self.election.success:
            return False
        return self.broadcast is not None and self.broadcast.all_informed

    @property
    def election_messages(self) -> int:
        return self.election.messages

    @property
    def broadcast_messages(self) -> int:
        return self.broadcast.messages if self.broadcast is not None else 0

    @property
    def total_messages(self) -> int:
        return self.election_messages + self.broadcast_messages

    @property
    def total_rounds(self) -> int:
        rounds = self.election.rounds
        if self.broadcast is not None:
            rounds += self.broadcast.rounds
        return rounds

    def as_record(self) -> dict:
        """Flat dictionary for sweep tables."""
        record = self.election.as_record()
        record.update(
            {
                "broadcast_messages": self.broadcast_messages,
                "total_messages": self.total_messages,
                "total_rounds": self.total_rounds,
                "explicit_success": self.success,
            }
        )
        return record


def run_explicit_leader_election(
    graph: Graph,
    params: ElectionParameters = DEFAULT_PARAMETERS,
    seed: Optional[int] = None,
    push_rounds: Optional[int] = None,
    max_rounds: int = 10_000_000,
) -> ExplicitElectionOutcome:
    """Run Corollary 14: implicit election followed by push-pull dissemination.

    The broadcast phase only runs when the election produced a unique leader;
    otherwise the outcome reports the election failure and no broadcast cost.
    """
    election = run_leader_election(
        graph,
        params=params,
        seed=seed,
        max_rounds=max_rounds,
        keep_simulation=True,
    )
    broadcast = None
    if election.success and election.leader is not None:
        leader_index = election.leader
        leader_id = election.simulation.node_results[leader_index].get("id", leader_index)
        broadcast = run_push_pull_broadcast(
            graph,
            sources={leader_index},
            rumor=leader_id,
            seed=None if seed is None else derive_seed(seed, 0xB0),
            push_rounds=push_rounds,
            max_rounds=max_rounds,
        )
    return ExplicitElectionOutcome(election=election, broadcast=broadcast)
