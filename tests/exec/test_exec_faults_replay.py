"""Deterministic replay of faulty trials through the batch executor.

These tests pin the subsystem's headline guarantee: the same (master seed,
fault plan) pair produces identical outcomes and identical fault-event
counts, serially and with a 4-worker :class:`~repro.exec.runner.BatchRunner`
-- and an empty plan leaves every result exactly as the fault-free run.
"""

import pytest

from repro.core import ElectionParameters
from repro.exec import BatchRunner, GraphSpec, SweepSpec, TrialSpec, trial_fingerprint
from repro.faults import FaultPlan
from repro.faults.plan import CrashFaults, DelayFaults, MessageFaults

#: Cheap election constants -- these tests pin determinism, not statistics.
FAST = ElectionParameters(c1=3.0, c2=0.5)

PLAN = FaultPlan(
    messages=MessageFaults(drop_probability=0.1, duplicate_probability=0.05),
    crashes=CrashFaults(count=3, at_phase=1),
    delays=DelayFaults(max_delay=2),
)


def faulty_sweep():
    return SweepSpec(
        name="replay",
        configs=(
            TrialSpec(
                graph=GraphSpec("expander", (32,), {"degree": 4}),
                algorithm="election",
                params=FAST,
                fault_plan=PLAN,
            ),
        ),
        trials=4,
        base_seed=404,
    )


def outcome_records(results):
    return [
        (result.outcome.as_record(), result.outcome.metrics.fault_events)
        for result in results
    ]


class TestReplayDeterminism:
    def test_serial_reruns_are_identical(self):
        first = outcome_records(BatchRunner(workers=1).run_sweep(faulty_sweep()))
        second = outcome_records(BatchRunner(workers=1).run_sweep(faulty_sweep()))
        assert first == second
        # The adversary actually did something in these runs.
        assert any(events["dropped"] > 0 for _record, events in first)
        assert any(events["crashed_nodes"] > 0 for _record, events in first)

    def test_parallel_matches_serial_at_4_workers(self):
        serial = outcome_records(BatchRunner(workers=1).run_sweep(faulty_sweep()))
        parallel = outcome_records(BatchRunner(workers=4).run_sweep(faulty_sweep()))
        assert serial == parallel

    def test_different_master_seed_changes_the_run(self):
        sweep = faulty_sweep()
        other = SweepSpec(
            name=sweep.name, configs=sweep.configs, trials=sweep.trials, base_seed=405
        )
        assert outcome_records(BatchRunner(workers=1).run_sweep(sweep)) != (
            outcome_records(BatchRunner(workers=1).run_sweep(other))
        )


class TestEmptyPlanEquivalence:
    def test_empty_plan_reproduces_fault_free_results(self):
        spec = TrialSpec(
            graph=GraphSpec("expander", (32,), {"degree": 4}, seed=9),
            algorithm="election",
            seed=123,
            params=FAST,
        )
        empty = TrialSpec(
            graph=spec.graph,
            algorithm="election",
            seed=123,
            params=FAST,
            fault_plan=FaultPlan(),
        )
        runner = BatchRunner(workers=1)
        (plain_result,) = runner.run([spec])
        (empty_result,) = runner.run([empty])
        assert plain_result.outcome.as_record() == empty_result.outcome.as_record()
        assert plain_result.outcome.metrics == empty_result.outcome.metrics

    def test_empty_plan_shares_the_cache_fingerprint(self):
        spec = TrialSpec(graph=GraphSpec("hypercube", (4,)), seed=5)
        empty = TrialSpec(graph=GraphSpec("hypercube", (4,)), seed=5, fault_plan=FaultPlan())
        assert trial_fingerprint(spec) == trial_fingerprint(empty)

    def test_non_empty_plan_changes_the_fingerprint(self):
        spec = TrialSpec(graph=GraphSpec("hypercube", (4,)), seed=5)
        faulty = TrialSpec(
            graph=GraphSpec("hypercube", (4,)), seed=5, fault_plan=FaultPlan.dropping(0.1)
        )
        assert trial_fingerprint(spec) != trial_fingerprint(faulty)


class TestFaultAwareValidation:
    # Every built-in algorithm is fault-aware since the registry redesign, so
    # the rejection path is exercised through a private test-only entry that
    # declares fault_aware=False (tests/exec/test_algorithm_registry.py pins
    # the same contract registry-wide).

    def test_fault_plan_on_non_fault_aware_algorithm_is_rejected(self):
        from repro.baselines import flood_max_trial
        from repro.exec.algorithms import ALGORITHMS, register_algorithm

        if "_fault_blind_test_only" not in ALGORITHMS:

            @register_algorithm("_fault_blind_test_only")
            def _run_fault_blind(graph, spec):
                return flood_max_trial(graph, seed=spec.seed)

        spec = TrialSpec(
            graph=GraphSpec("hypercube", (4,)),
            algorithm="_fault_blind_test_only",
            fault_plan=FaultPlan.dropping(0.5),
        )
        with pytest.raises(ValueError, match="not fault-aware"):
            BatchRunner(workers=1).run([spec])

        # ... but an *empty* plan means the historical fault-free run and
        # stays legal on any algorithm.
        empty = TrialSpec(
            graph=GraphSpec("hypercube", (3,)),
            algorithm="_fault_blind_test_only",
            fault_plan=FaultPlan(),
        )
        (result,) = BatchRunner(workers=1).run([empty])
        assert result.outcome.num_nodes == 8

    def test_baselines_accept_fault_plans(self):
        """The redesign's point: the prior-work baselines honour plans now."""
        spec = TrialSpec(
            graph=GraphSpec("hypercube", (4,)),
            algorithm="flood_max",
            fault_plan=FaultPlan.dropping(0.5),
            seed=7,
        )
        (result,) = BatchRunner(workers=1).run([spec])
        assert result.outcome.metrics.fault_events["dropped"] > 0
