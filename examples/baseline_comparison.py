#!/usr/bin/env python3
"""Compare the paper's algorithm with prior-work baselines (experiment E3).

On well-connected graphs the paper's election beats every ``Omega(m)``
flooding-style algorithm in message complexity while matching the known-t_mix
algorithm of Kutten et al. [25] without needing the mixing time as input.

The comparison runs as a ``repro.campaign`` campaign with one sweep per graph
family and one configuration per algorithm, averaged over ``--trials``
independent seeds: results are cached on disk (repeat runs are free),
``--shard K/M`` splits the grid across machines, and the aggregate table is
also written to ``report.md`` / ``report.json`` in the campaign directory.

Run with::

    python examples/baseline_comparison.py [n] [--trials T] [--workers N]
        [--dir DIR] [--shard K/M] [--backend NAME]
"""

from __future__ import annotations

import argparse
import os

from repro import complete_graph, expander_graph
from repro.analysis import format_table
from repro.campaign import CampaignRunner, CampaignSpec, campaign_report, write_report
from repro.exec import (
    ExecutionProfile,
    Shard,
    SweepSpec,
    TrialSpec,
    add_execution_arguments,
)
from repro.graphs import mixing_time

BASE_SEED = 5

#: (table label, algorithm registry name) in paper-presentation order.
ALGORITHM_ROWS = [
    ("this paper (unknown t_mix)", "election"),
    ("Kutten et al. [25] (t_mix known)", "known_tmix"),
    ("flood-max (O(mD) msgs)", "flood_max"),
    ("controlled flooding (O(m log n))", "controlled_flooding"),
]
CLIQUE_ROW = ("Kutten et al. [25] clique-only", "clique_sublinear")


def comparison_sweep(name, graph, trials, include_clique_baseline=False):
    """One sweep comparing every algorithm on one (inline) graph."""
    t_mix = mixing_time(graph)
    algorithms = list(ALGORITHM_ROWS) + ([CLIQUE_ROW] if include_clique_baseline else [])
    return SweepSpec(
        name=name,
        configs=tuple(
            TrialSpec(
                graph=graph,
                algorithm=algorithm,
                # Pin the oracle baseline to the t_mix computed here so the
                # table header and the algorithm input are visibly the same
                # number (and the trial fingerprint captures it).
                algo_kwargs={"mixing_time": t_mix} if algorithm == "known_tmix" else {},
                label=label,
            )
            for label, algorithm in algorithms
        ),
        trials=trials,
        base_seed=BASE_SEED,
    )


def build_campaign(n: int, trials: int) -> CampaignSpec:
    return CampaignSpec(
        name="baseline-comparison",
        sweeps=(
            comparison_sweep(
                "expander-baselines-e3", expander_graph(n, seed=BASE_SEED), trials
            ),
            comparison_sweep(
                "clique-baselines-e3",
                complete_graph(n),
                trials,
                include_clique_baseline=True,
            ),
        ),
    )


def print_sweep(campaign: CampaignSpec, sweep_report: dict) -> None:
    sweep = campaign.sweep(sweep_report["name"])
    graph = sweep.configs[0].graph
    # comparison_sweep already computed the mixing time and pinned it on the
    # known_tmix config; read it back rather than re-running the spectral
    # computation.
    t_mix = next(
        config.algo_kwargs["mixing_time"]
        for config in sweep.configs
        if config.algorithm == "known_tmix"
    )
    print(
        "\n=== %s  (n=%d, m=%d, t_mix=%d) ==="
        % (sweep_report["name"], graph.num_nodes, graph.num_edges, t_mix)
    )
    rows = [
        {key: value for key, value in row.items() if key != "classifications"}
        for row in sweep_report["rows"]
    ]
    print(format_table(rows))


def main(
    n: int = 128,
    trials: int = 3,
    directory: str = os.path.join(".campaign", "baselines"),
    shard: str = "",
    profile: ExecutionProfile = ExecutionProfile(),
) -> None:
    campaign = build_campaign(n, trials)
    cache = profile.open_cache(os.path.join(directory, "cache"))
    runner = CampaignRunner(
        campaign,
        cache,
        shard=Shard.parse(shard) if shard else None,
        directory=directory,
        profile=profile,
    )
    result = runner.run()
    print(result.describe())

    report = campaign_report(campaign, cache)
    markdown_path, json_path = write_report(campaign, cache, directory, report=report)
    for sweep_report in report["sweeps"]:
        print_sweep(campaign, sweep_report)
    print(
        "\nReading: the random-walk elections use far fewer messages than any "
        "flooding baseline on dense/well-connected graphs, and the paper's "
        "algorithm achieves this without knowing t_mix."
    )
    print("report written to %s and %s" % (markdown_path, json_path))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("n", nargs="?", type=int, default=128, help="graph size (default 128)")
    parser.add_argument(
        "--trials", type=int, default=3, help="independent seeds per algorithm (default 3)"
    )
    parser.add_argument(
        "--dir",
        default=os.path.join(".campaign", "baselines"),
        metavar="DIR",
        help="campaign directory: result cache, manifest.json, report.md/json",
    )
    parser.add_argument(
        "--shard",
        default="",
        metavar="K/M",
        help="run only shard K of M (zero-based), e.g. 0/2 and 1/2 on two machines",
    )
    add_execution_arguments(parser)
    arguments = parser.parse_args()
    main(
        arguments.n,
        trials=arguments.trials,
        directory=arguments.dir,
        shard=arguments.shard,
        profile=ExecutionProfile.from_arguments(arguments),
    )
