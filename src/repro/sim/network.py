"""The synchronous message-passing network simulator.

This is the executable form of the paper's computing model (Section 1):

* time proceeds in synchronous rounds; all nodes wake up simultaneously;
* nodes communicate by sending messages over *ports*; the sender never learns
  which node sits behind a port and the receiver only learns the arrival port;
* a message sent in round ``r`` is delivered at the beginning of round
  ``r + 1``;
* message sizes are accounted in bits and normalised to ``O(log n)``-bit
  units for the CONGEST message-complexity statements.

The simulator is event driven: a node is activated only when it has incoming
messages or an explicitly scheduled wake-up, and rounds in which nothing can
happen are skipped entirely.  Skipping does not change the reported round
count -- it only avoids busy-waiting through the long, mostly idle phases of
the guess-and-double schedule.

The network optionally consults a :class:`~repro.faults.injector.FaultInjector`
(the pluggable fault hook): at send time the injector decides which delivery
rounds a message actually reaches (drop / duplicate / delay / edge removal),
and at activation time it suppresses crash-stopped nodes.  With no injector
the code path is byte-for-byte the historical fault-free one.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..graphs.ports import PortNumberedGraph
from ..obs.tracer import current_tracer
from .errors import CongestViolationError, RoundLimitExceeded
from .message import Message, word_bits_for
from .metrics import MetricsCollector, RunMetrics
from .node import Inbox, NodeContext, Protocol, ProtocolFactory
from .rng import node_rng

if TYPE_CHECKING:  # pragma: no cover - import-time only, avoids a sim->faults cycle
    from ..faults.injector import FaultInjector

__all__ = ["Network", "SimulationResult", "MessageObserver"]

#: Observer signature: ``(round, sender, receiver, message)``, called at send time.
MessageObserver = Callable[[int, int, int, Message], None]


@dataclass
class SimulationResult:
    """Outcome of one simulated execution."""

    metrics: RunMetrics
    node_results: List[Dict[str, Any]]
    messages_by_node: List[int]
    protocols: List[Protocol] = field(repr=False, default_factory=list)
    #: Nodes crash-stopped by the fault injector during this run (sorted).
    crashed_nodes: List[int] = field(default_factory=list)
    #: The port-numbered topology the run executed on; lets consumers map a
    #: node's arrival port back to the neighbour behind it (e.g. to recover
    #: the parent edges of a spanning-tree construction).
    port_graph: Optional[PortNumberedGraph] = field(repr=False, default=None)

    @property
    def rounds(self) -> int:
        """Number of rounds until the network went quiet."""
        return self.metrics.rounds

    @property
    def messages(self) -> int:
        """Total number of physical messages."""
        return self.metrics.messages

    @property
    def message_units(self) -> int:
        """Total number of ``O(log n)``-bit message units."""
        return self.metrics.message_units

    def nodes_with(self, key: str, value: Any = True) -> List[int]:
        """Indices of nodes whose result dictionary maps ``key`` to ``value``."""
        return [i for i, res in enumerate(self.node_results) if res.get(key) == value]


class Network:
    """Synchronous, port-numbered, event-driven network simulator."""

    def __init__(
        self,
        port_graph: PortNumberedGraph,
        protocol_factory: ProtocolFactory,
        seed: Optional[int] = None,
        known_n: Optional[int] = -1,
        word_bits: Optional[int] = None,
        edge_capacity_words: Optional[int] = None,
        congest_mode: str = "count",
        observers: Sequence[MessageObserver] = (),
        fault_injector: Optional["FaultInjector"] = None,
    ) -> None:
        """Create a network.

        Parameters
        ----------
        port_graph:
            The port-numbered topology to run on.
        protocol_factory:
            Called once per node with the node's :class:`NodeContext`.
        seed:
            Master seed from which per-node private randomness is derived.
        known_n:
            ``-1`` (default) means every node knows the true ``n``; an integer
            ``>= 1`` injects that (possibly wrong) value -- used by the
            Theorem 28 experiments; ``None`` means ``n`` is unknown.
        word_bits:
            Size of one CONGEST word; defaults to ``ceil(4 log2 n)`` (one id).
        edge_capacity_words:
            Per-edge per-round budget in words for congestion accounting;
            ``None`` disables the per-edge bookkeeping entirely.
        congest_mode:
            ``"count"`` records violations in the metrics, ``"strict"`` raises
            :class:`CongestViolationError` on the first violation.
        observers:
            Callables invoked for every sent message; used e.g. by the
            clique-communication-graph tracker of the lower-bound harness.
            Observers see every physical *send*, including sends the fault
            injector subsequently loses -- the sender paid for them.
        fault_injector:
            Optional :class:`~repro.faults.injector.FaultInjector` consulted
            at send and activation time; ``None`` keeps the exact fault-free
            behaviour.
        """
        if congest_mode not in ("count", "strict"):
            raise ValueError("congest_mode must be 'count' or 'strict'")
        self._port_graph = port_graph
        n = port_graph.num_nodes
        self._n = n
        self._word_bits = word_bits if word_bits is not None else word_bits_for(n)
        self._edge_capacity_words = edge_capacity_words
        self._congest_mode = congest_mode
        self._observers = list(observers)
        self._metrics = MetricsCollector(self._word_bits)
        self._messages_by_node = [0] * n
        self._fault_injector = fault_injector
        if fault_injector is not None:
            fault_injector.attach(port_graph)

        if known_n == -1:
            resolved_n: Optional[int] = n
        else:
            resolved_n = known_n

        self._contexts: List[NodeContext] = []
        self._protocols: List[Protocol] = []
        self._current_round = 0
        # Messages queued during the current round, delivered next round.
        self._outbox: List[Tuple[int, int, Message]] = []
        # Inboxes keyed by delivery round -> node -> port -> [messages].
        self._future_inboxes: Dict[int, Dict[int, Inbox]] = {}
        # Wake-up bookkeeping.
        self._wakeups: Dict[int, Set[int]] = {}
        self._wakeup_heap: List[int] = []
        self._last_activity_round = 0

        for index in range(n):
            ctx = NodeContext(
                node_index=index,
                degree=port_graph.degree(index),
                rng=node_rng(seed, index),
                known_n=resolved_n,
                send_callback=self._queue_send,
                wake_callback=self._schedule_wakeup,
            )
            self._contexts.append(ctx)
        for index in range(n):
            self._protocols.append(protocol_factory(self._contexts[index]))

    # ----------------------------------------------------------------- hooks
    def _queue_send(self, sender: int, port: int, message: Message) -> None:
        self._outbox.append((sender, port, message))

    def _schedule_wakeup(self, node: int, round_number: int) -> None:
        bucket = self._wakeups.get(round_number)
        if bucket is None:
            bucket = set()
            self._wakeups[round_number] = bucket
            heapq.heappush(self._wakeup_heap, round_number)
        bucket.add(node)

    # ------------------------------------------------------------- main loop
    def run(
        self, max_rounds: int = 10_000_000, strict_round_limit: bool = False
    ) -> SimulationResult:
        """Execute the protocol until the network goes quiet.

        The run ends when no message is in flight and no wake-up is pending.
        If ``max_rounds`` is reached first, the run stops and the resulting
        metrics carry ``completed=False`` (or :class:`RoundLimitExceeded` is
        raised when ``strict_round_limit`` is set).
        """
        injector = self._fault_injector
        # Tracing is a write-only side channel: the tracer is resolved once
        # per run, costs one branch per event round when disabled, and
        # nothing it sees ever feeds back into protocol state or randomness.
        tracer = current_tracer()
        traced = tracer.enabled
        if traced:
            tracer.event(
                "sim.run_started", n=self._n, word_bits=self._word_bits,
                faulty=injector is not None,
            )
        self._current_round = 0
        for ctx in self._contexts:
            ctx._set_round(0)
        for index, protocol in enumerate(self._protocols):
            if injector is not None and injector.is_crashed(index, 0):
                continue
            protocol.on_start()
        self._flush_outbox(delivery_round=1)

        completed = True
        while True:
            next_round = self._next_event_round()
            if next_round is None:
                break
            if next_round > max_rounds:
                completed = False
                if strict_round_limit:
                    raise RoundLimitExceeded(
                        "simulation exceeded max_rounds=%d" % max_rounds
                    )
                break
            self._current_round = next_round
            inboxes = self._future_inboxes.pop(next_round, {})
            woken = self._pop_wakeups(next_round)
            active = set(inboxes) | woken
            if injector is not None:
                alive = {
                    node for node in active if not injector.is_crashed(node, next_round)
                }
                if traced and len(alive) != len(active):
                    tracer.event(
                        "sim.crash_suppressed",
                        round=next_round,
                        suppressed=len(active) - len(alive),
                    )
                active = alive
            for node in sorted(active):
                ctx = self._contexts[node]
                if ctx.halted:
                    continue
                ctx._set_round(next_round)
                self._protocols[node].on_round(inboxes.get(node, {}))
            if active:
                self._last_activity_round = next_round
            if traced:
                tracer.event(
                    "sim.round",
                    round=next_round,
                    active=len(active),
                    messages=self._metrics.messages,
                    message_units=self._metrics.message_units,
                )
            self._flush_outbox(delivery_round=next_round + 1)

        crashed_nodes: List[int] = []
        fault_events: Optional[Dict[str, int]] = None
        if injector is not None:
            crashed_nodes = injector.crashed_as_of(self._current_round)
            fault_events = dict(injector.events)
            fault_events["crashed_nodes"] = len(crashed_nodes)
        metrics = self._metrics.finalize(
            rounds=self._last_activity_round,
            completed=completed,
            fault_events=fault_events,
        )
        node_results = [protocol.result() for protocol in self._protocols]
        return SimulationResult(
            metrics=metrics,
            node_results=node_results,
            messages_by_node=list(self._messages_by_node),
            protocols=self._protocols,
            crashed_nodes=crashed_nodes,
            port_graph=self._port_graph,
        )

    # -------------------------------------------------------------- plumbing
    def _next_event_round(self) -> Optional[int]:
        candidates = []
        if self._future_inboxes:
            candidates.append(min(self._future_inboxes))
        while self._wakeup_heap and self._wakeup_heap[0] not in self._wakeups:
            heapq.heappop(self._wakeup_heap)
        if self._wakeup_heap:
            candidates.append(self._wakeup_heap[0])
        if not candidates:
            return None
        return min(candidates)

    def _pop_wakeups(self, round_number: int) -> Set[int]:
        woken = self._wakeups.pop(round_number, set())
        return woken

    def _flush_outbox(self, delivery_round: int) -> None:
        if not self._outbox:
            return
        injector = self._fault_injector
        edge_bits: Dict[Tuple[int, int], int] = {}
        for sender, port, message in self._outbox:
            receiver = self._port_graph.port_to_neighbor(sender, port)
            arrival_port = self._port_graph.neighbor_to_port(receiver, sender)
            # Accounting and observation happen per physical send, whether or
            # not the adversary lets the message through: the sender paid.
            self._metrics.record_send(message.kind, message.size_bits)
            self._messages_by_node[sender] += 1
            if self._edge_capacity_words is not None:
                key = (sender, port)
                edge_bits[key] = edge_bits.get(key, 0) + message.size_bits
            for observer in self._observers:
                observer(self._current_round, sender, receiver, message)
            if injector is None:
                arrivals = (delivery_round,)
            else:
                arrivals = injector.deliveries(
                    self._current_round, sender, receiver, delivery_round
                )
            for arrival_round in arrivals:
                self._future_inboxes.setdefault(arrival_round, {}).setdefault(
                    receiver, {}
                ).setdefault(arrival_port, []).append(message)
        self._outbox = []
        if self._edge_capacity_words is not None:
            capacity_bits = self._edge_capacity_words * self._word_bits
            for load in edge_bits.values():
                self._metrics.record_edge_load(load, capacity_bits)
                if load > capacity_bits and self._congest_mode == "strict":
                    raise CongestViolationError(
                        "edge carried %d bits in one round (capacity %d)" % (load, capacity_bits)
                    )

    # ------------------------------------------------------------ inspection
    @property
    def num_nodes(self) -> int:
        """Number of nodes in the simulated network."""
        return self._n

    @property
    def word_bits(self) -> int:
        """Word size used for message-unit accounting."""
        return self._word_bits

    @property
    def fault_injector(self) -> Optional["FaultInjector"]:
        """The attached fault injector, or ``None`` for a fault-free network."""
        return self._fault_injector
