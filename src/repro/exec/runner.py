"""The batch executor: run many independent trials, serially or in parallel.

``BatchRunner`` executes :class:`~repro.exec.spec.TrialSpec` lists.  With
``workers=1`` everything runs in-process (no pool, no pickling); with
``workers>1`` trials are dispatched to a ``ProcessPoolExecutor``.  Both paths
call the same module-level :func:`execute_trial` on the same specs, and every
bit of randomness a trial consumes is derived from fields of its spec -- never
from worker identity, dispatch order or shared state -- so the two modes are
bit-identical by construction and results always come back in submission
order.

An optional :class:`~repro.exec.cache.ResultCache` is consulted before
dispatch and filled from the parent process after execution (a single writer,
though entry writes are atomic anyway), making re-runs of large campaigns
free.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple, Union

from ..baselines.flood_max import BaselineOutcome
from ..core.result import ElectionOutcome
from ..graphs.generators import get_family
from .algorithms import FAULT_AWARE_ALGORITHMS, get_algorithm
from .cache import ResultCache
from .fingerprint import trial_fingerprint
from .report import BatchSummary, NullReporter, ProgressReporter
from .spec import GraphSpec, SweepSpec, TrialSpec

__all__ = ["BatchRunner", "TrialResult", "execute_trial", "default_worker_count"]

TrialOutcome = Union[ElectionOutcome, BaselineOutcome]


def default_worker_count() -> int:
    """A sensible worker count for the current machine (>= 1)."""
    return max(1, os.cpu_count() or 1)


def _require_fault_aware(spec: TrialSpec) -> None:
    """Reject specs whose (non-empty) fault plan the algorithm would ignore."""
    if spec.effective_fault_plan is not None and spec.algorithm not in FAULT_AWARE_ALGORITHMS:
        raise ValueError(
            "algorithm %r is not fault-aware; fault plans are supported by: %s"
            % (spec.algorithm, ", ".join(sorted(FAULT_AWARE_ALGORITHMS)))
        )


def execute_trial(spec: TrialSpec) -> TrialOutcome:
    """Run one trial exactly as described (graph build + algorithm run).

    Module-level so it can be pickled to worker processes; deterministic in
    ``spec`` alone.
    """
    _require_fault_aware(spec)
    graph = spec.build_graph()
    runner = get_algorithm(spec.algorithm)
    return runner(graph, spec)


def _execute_timed(spec: TrialSpec) -> Tuple[TrialOutcome, float]:
    start = time.perf_counter()
    outcome = execute_trial(spec)
    return outcome, time.perf_counter() - start


@dataclass
class TrialResult:
    """One executed (or cache-served) trial.

    ``fingerprint`` is only computed when the runner has a cache configured
    (the inline-graph digest is O(m)); it is the empty string otherwise.
    """

    spec: TrialSpec
    fingerprint: str
    outcome: TrialOutcome
    elapsed_seconds: float
    from_cache: bool


class BatchRunner:
    """Process-parallel executor for independent simulation trials."""

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        reporter: Optional[ProgressReporter] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1, got %d" % workers)
        self.workers = workers
        self.cache = cache
        self.reporter = reporter if reporter is not None else NullReporter()
        self.last_summary: Optional[BatchSummary] = None

    # ------------------------------------------------------------ validation
    def _validate_spec(self, spec: TrialSpec) -> None:
        """Fail fast on specs that would execute wrongly or non-reproducibly."""
        get_algorithm(spec.algorithm)  # unknown algorithm name
        _require_fault_aware(spec)
        if isinstance(spec.graph, GraphSpec):
            family = get_family(spec.graph.family)  # unknown family name
            if family.supports_seed and spec.graph.seed is None:
                raise ValueError(
                    "randomised graph family %r needs an explicit seed: an unseeded "
                    "build differs per execution, which would break the runner's "
                    "determinism and poison the cache (SweepSpec.expand derives "
                    "graph seeds automatically)" % spec.graph.family
                )
        if self.cache is not None and spec.algo_kwargs.get("keep_simulation"):
            raise ValueError(
                "keep_simulation cannot be combined with a result cache: the raw "
                "simulation transcript is not cached, so hits would silently "
                "return outcomes without it"
            )

    # ------------------------------------------------------------------- api
    def run(self, specs: Iterable[TrialSpec]) -> List[TrialResult]:
        """Execute every spec and return results in submission order."""
        spec_list = list(specs)
        for spec in spec_list:
            self._validate_spec(spec)
        total = len(spec_list)
        self.reporter.batch_started(total, self.workers)
        start = time.perf_counter()

        results: List[Optional[TrialResult]] = [None] * total
        done = 0
        cache_hits = 0
        compute_seconds = 0.0

        # Serve cache hits first, collect the misses for execution.  The
        # fingerprint is only worth computing when there is a cache to key.
        pending: List[Tuple[int, str, TrialSpec]] = []
        for index, spec in enumerate(spec_list):
            fingerprint = trial_fingerprint(spec) if self.cache is not None else ""
            cached = self.cache.get(fingerprint) if self.cache is not None else None
            if cached is not None:
                results[index] = TrialResult(
                    spec=spec,
                    fingerprint=fingerprint,
                    outcome=cached.outcome,
                    elapsed_seconds=0.0,
                    from_cache=True,
                )
                done += 1
                cache_hits += 1
                self.reporter.trial_finished(results[index], done, total)
            else:
                pending.append((index, fingerprint, spec))

        if pending:
            for index, result in self._execute_pending(pending):
                results[index] = result
                compute_seconds += result.elapsed_seconds
                if self.cache is not None:
                    self.cache.put(
                        result.fingerprint, result.spec, result.outcome, result.elapsed_seconds
                    )
                done += 1
                self.reporter.trial_finished(result, done, total)

        summary = BatchSummary(
            trials=total,
            executed=len(pending),
            cache_hits=cache_hits,
            workers=self.workers,
            wall_seconds=time.perf_counter() - start,
            compute_seconds=compute_seconds,
        )
        self.last_summary = summary
        self.reporter.batch_finished(summary)
        return [result for result in results if result is not None]

    def run_sweep(self, sweep: SweepSpec) -> List[TrialResult]:
        """Expand a sweep and run it (flat, ``expand``-ordered results)."""
        return self.run(sweep.expand())

    # ------------------------------------------------------------- execution
    def _execute_pending(
        self, pending: List[Tuple[int, str, TrialSpec]]
    ) -> Iterable[Tuple[int, TrialResult]]:
        if self.workers == 1 or len(pending) == 1:
            for index, fingerprint, spec in pending:
                outcome, elapsed = _execute_timed(spec)
                yield index, TrialResult(spec, fingerprint, outcome, elapsed, False)
            return

        max_workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            future_info = {
                pool.submit(_execute_timed, spec): (index, fingerprint, spec)
                for index, fingerprint, spec in pending
            }
            not_done = set(future_info)
            while not_done:
                finished, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in finished:
                    index, fingerprint, spec = future_info[future]
                    outcome, elapsed = future.result()
                    yield index, TrialResult(spec, fingerprint, outcome, elapsed, False)
