"""Prior-work election baselines used by the comparison experiments (E3)."""

from .clique_sublinear import (
    CliqueSublinearNode,
    clique_sublinear_factory,
    run_clique_sublinear_election,
)
from .controlled_flooding import (
    ControlledFloodingNode,
    controlled_flooding_factory,
    run_controlled_flooding_election,
)
from .flood_max import (
    BaselineOutcome,
    FloodMaxNode,
    flood_max_factory,
    run_flood_max_election,
)
from .known_tmix import KnownTmixNode, known_tmix_factory, run_known_tmix_election

__all__ = [
    "BaselineOutcome",
    "FloodMaxNode",
    "flood_max_factory",
    "run_flood_max_election",
    "ControlledFloodingNode",
    "controlled_flooding_factory",
    "run_controlled_flooding_election",
    "KnownTmixNode",
    "known_tmix_factory",
    "run_known_tmix_election",
    "CliqueSublinearNode",
    "clique_sublinear_factory",
    "run_clique_sublinear_election",
]
