"""The leader-election protocol of Gilbert, Robinson and Sourav (Algorithms 1-2).

Every node runs :class:`LeaderElectionNode`.  The protocol follows the paper:

1. *Initialisation* (Algorithm 1): each node draws a random id from
   ``[1, n^4]`` and nominates itself as a contender with probability
   ``c1 log n / n``; non-contenders immediately become non-leaders (but keep
   relaying messages).
2. *Random-walk phases* (Algorithm 2): each active contender runs
   ``c2 sqrt(n) log n`` lazy random walks of the current guessed length
   ``tu``; nodes where walks end are its *proxies*.  Three synchronised
   exchange rounds follow, routed along the walk trees built by the tokens:
   proxies converge-cast their ``I1`` sets and distinct-proxy counts to the
   contender (REPORT), the contender floods its ``I2`` union back down
   (DISTRIBUTE), and proxies converge-cast the ``I3`` unions (COLLECT).
3. *Decision*: a contender stops once the intersection property (adjacency to
   at least ``3/4 c1 log n`` other contenders) and the distinctness property
   (at least ``c2/2 sqrt(n) log n`` distinct proxies) hold.  A stopping
   contender that holds the largest id it has heard of (set ``I4``) and has
   not heard of a winner elects itself and floods a winner notification
   through its walk tree; proxies relay it to every contender they serve.
   Contenders that do not stop double ``tu`` and start the next phase.

The implementation keeps the Lemma 12 optimisation: walks are shipped as
``(origin, steps, count)`` tokens rather than individual messages, and the
converge-casts route along the parent tree defined by first token arrivals,
so every proxy's contribution is counted exactly once.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..obs.tracer import current_tracer
from ..sim.errors import ProtocolError
from ..sim.message import Message
from ..sim.node import Inbox, NodeContext, Protocol
from . import messages as wire
from .identity import initialise_node
from .params import DEFAULT_PARAMETERS, ElectionParameters
from .schedule import PhaseSchedule
from .walks import WalkTreeState

__all__ = ["LeaderElectionNode", "leader_election_factory"]


class LeaderElectionNode(Protocol):
    """Node behaviour of the implicit leader-election algorithm."""

    def __init__(
        self,
        ctx: NodeContext,
        params: ElectionParameters = DEFAULT_PARAMETERS,
        assumed_n: Optional[int] = None,
    ) -> None:
        super().__init__(ctx)
        self.params = params
        self.schedule = PhaseSchedule(params)
        n = ctx.known_n if ctx.known_n is not None else assumed_n
        if n is None:
            raise ProtocolError(
                "the algorithm requires knowledge of n (pass assumed_n to override)"
            )
        self.n_assumed = n
        identity = initialise_node(ctx.rng, n, params)
        self.identifier = identity.identifier
        self.is_contender = identity.is_contender

        # Walk-tree state per (origin id, phase index).
        self.trees: Dict[Tuple[int, int], WalkTreeState] = {}
        # Cumulative set of origins this node has been a proxy for.
        self.proxy_origins: Set[int] = set()
        # Latest phase in which this node participated in each origin's tree.
        self.latest_tree_phase: Dict[int, int] = {}
        # Union of I2 sets received as a proxy, per phase.
        self.i2_union_by_phase: Dict[int, Set[int]] = {}

        # Winner bookkeeping.
        self.heard_winner = False
        self.winner_rules_fired = False

        # Contender bookkeeping.
        self.active = self.is_contender
        self.stopped = False
        self.stopped_on_winner = False
        self.is_leader = False
        self.forced_stop = False
        self.current_phase = -1
        self.phases_executed = 0
        self.final_walk_length = 0
        self.adjacency_ids: Set[int] = set()
        self.i4_ids: Set[int] = set()
        self.distinct_count_phase = 0
        self.satisfied_intersection = False
        self.satisfied_distinctness = False

    # ------------------------------------------------------------------ hooks
    def on_start(self) -> None:
        if self.is_contender:
            tracer = current_tracer()
            if tracer.enabled:
                tracer.event("election.nominated", node=self.identifier)
            # Phase 0 starts at round 0; but round 0 is the on_start hook and
            # messages sent here arrive in round 1, so the contender begins
            # its first phase at the first WALK round, which is round 0 for
            # token creation followed by stepping from round 1 onwards.  We
            # simply schedule a wake-up at the phase-0 start round.
            window = self.schedule.window(0)
            self.ctx.wake_at(max(1, window.start))

    def on_round(self, inbox: Inbox) -> None:
        self._process_inbox(inbox)
        self._run_schedule_duties()
        self._advance_walks()
        if self._holds_unfinished_tokens():
            self.ctx.wake_next_round()

    # --------------------------------------------------------------- results
    def result(self) -> Dict[str, object]:
        return {
            "leader": self.is_leader,
            "contender": self.is_contender,
            "id": self.identifier,
            "stopped": self.stopped,
            "stopped_on_winner": self.stopped_on_winner,
            "forced_stop": self.forced_stop,
            "phases": self.phases_executed,
            "final_walk_length": self.final_walk_length,
            "heard_winner": self.heard_winner,
            "adjacency": len(self.adjacency_ids),
            "distinct_proxies": self.distinct_count_phase,
            "satisfied_intersection": self.satisfied_intersection,
            "satisfied_distinctness": self.satisfied_distinctness,
        }

    # ----------------------------------------------------------- inbox logic
    def _process_inbox(self, inbox: Inbox) -> None:
        for port, batch in inbox.items():
            for message in batch:
                self._handle_message(port, message)

    def _handle_message(self, in_port: int, message: Message) -> None:
        payload = message.payload
        if payload.get("winner"):
            self._note_winner()
        kind = message.kind
        if kind == wire.WALK_TOKEN:
            self._handle_walk_token(in_port, payload)
        elif kind == wire.REPORT:
            self._handle_report(payload)
        elif kind == wire.DISTRIBUTE:
            self._handle_distribute(payload)
        elif kind == wire.COLLECT:
            self._handle_collect(payload)
        elif kind == wire.WINNER_DOWN:
            self._handle_winner_down(payload)
        elif kind == wire.WINNER_UP:
            self._handle_winner_up(payload)

    def _handle_walk_token(self, in_port: int, payload: Dict[str, object]) -> None:
        origin = payload["origin"]
        phase = payload["phase"]
        steps = payload["steps"]
        count = payload["count"]
        tree = self._tree(origin, phase, create=True)
        window = self.schedule.window(phase)
        offset = max(1, self.ctx.round - window.start)
        newly_joined = tree.first_arrival_offset is None
        tree.record_arrival(offset, in_port)
        tree.add_resident(steps, count)
        if tree.is_proxy:
            self.proxy_origins.add(origin)
        if newly_joined and tree.parent_port is not None:
            # Schedule the converge-cast send slots for this tree.
            self.ctx.wake_at(window.report_send_round(offset))
            self.ctx.wake_at(window.collect_send_round(offset))

    def _handle_report(self, payload: Dict[str, object]) -> None:
        origin = payload["origin"]
        phase = payload["phase"]
        ids = set(payload["ids"])
        distinct = payload["distinct"]
        if origin == self.identifier and self.is_contender:
            self.adjacency_ids |= ids
            if phase == self.current_phase:
                self.distinct_count_phase += distinct
            return
        tree = self._tree(origin, phase, create=False)
        if tree is None:
            return
        tree.merge_report(ids, distinct, payload.get("proxies", 0))

    def _handle_distribute(self, payload: Dict[str, object]) -> None:
        origin = payload["origin"]
        phase = payload["phase"]
        ids = set(payload["ids"])
        tree = self._tree(origin, phase, create=False)
        if tree is None:
            return
        if tree.is_proxy:
            self.i2_union_by_phase.setdefault(phase, set()).update(ids)
            tree.i2_received = True
        if not tree.distribute_forwarded:
            tree.distribute_forwarded = True
            message = wire.make_distribute(
                origin, phase, frozenset(ids), self.n_assumed, self.heard_winner
            )
            for port in sorted(tree.forward_ports):
                self.ctx.send(port, message)

    def _handle_collect(self, payload: Dict[str, object]) -> None:
        origin = payload["origin"]
        phase = payload["phase"]
        ids = set(payload["ids"])
        if origin == self.identifier and self.is_contender:
            self.i4_ids |= ids
            return
        tree = self._tree(origin, phase, create=False)
        if tree is None:
            return
        tree.merge_collect(ids)

    def _handle_winner_down(self, payload: Dict[str, object]) -> None:
        origin = payload["origin"]
        phase = payload["phase"]
        self._note_winner()
        tree = self._tree(origin, phase, create=False)
        if tree is not None and not tree.winner_down_forwarded:
            tree.winner_down_forwarded = True
            message = wire.make_winner_down(
                origin, phase, payload.get("leader", 0), self.n_assumed
            )
            for port in sorted(tree.forward_ports):
                self.ctx.send(port, message)
        self._fire_winner_rules(payload.get("leader", 0))

    def _handle_winner_up(self, payload: Dict[str, object]) -> None:
        origin = payload["origin"]
        phase = payload["phase"]
        self._note_winner()
        if origin == self.identifier and self.is_contender:
            self._fire_winner_rules(payload.get("leader", 0))
            return
        tree = self._tree(origin, phase, create=False)
        if tree is not None and not tree.winner_up_sent and tree.parent_port is not None:
            tree.winner_up_sent = True
            message = wire.make_winner_up(
                origin, phase, payload.get("leader", 0), self.n_assumed
            )
            self.ctx.send(tree.parent_port, message)
        self._fire_winner_rules(payload.get("leader", 0))

    # -------------------------------------------------------- schedule logic
    def _run_schedule_duties(self) -> None:
        round_number = self.ctx.round
        window, _segment = self.schedule.locate(round_number)

        if self.is_contender and self.active and not self.stopped:
            if round_number == max(1, window.start) and window.start >= 0:
                self._begin_phase(window)
            if round_number == window.distribute_start and window.index == self.current_phase:
                self._initiate_distribute(window)
            if round_number == window.decide_round and window.index == self.current_phase:
                self._decide(window)

        self._send_due_convergecasts(round_number)

    def _begin_phase(self, window) -> None:
        """Start a new random-walk phase (Algorithm 2, line 1)."""
        tracer = current_tracer()
        if tracer.enabled:
            tracer.event(
                "election.phase_started",
                node=self.identifier,
                phase=window.index,
                walk_length=window.walk_length,
            )
        self.current_phase = window.index
        self.phases_executed += 1
        self.final_walk_length = window.walk_length
        self.distinct_count_phase = 0
        walks = self.params.num_walks(self.n_assumed)
        tree = self._tree(self.identifier, window.index, create=True)
        tree.record_arrival(0, None)
        tree.add_resident(0, walks)
        if tree.is_proxy:
            self.proxy_origins.add(self.identifier)
        # Wake-ups for the fixed points of this phase.
        self.ctx.wake_at(window.distribute_start)
        self.ctx.wake_at(window.decide_round)

    def _initiate_distribute(self, window) -> None:
        """Flood I2 (the union of received I1 sets) down the contender's walk tree."""
        tree = self._tree(self.identifier, window.index, create=False)
        if tree is None:
            return
        i2 = set(self.adjacency_ids)
        if not i2:
            return
        if tree.is_proxy:
            self.i2_union_by_phase.setdefault(window.index, set()).update(i2)
            tree.i2_received = True
        tree.distribute_forwarded = True
        message = wire.make_distribute(
            self.identifier, window.index, frozenset(i2), self.n_assumed, self.heard_winner
        )
        for port in sorted(tree.forward_ports):
            self.ctx.send(port, message)

    def _decide(self, window) -> None:
        """Evaluate the stopping and winning conditions (Algorithm 2, lines 4-5)."""
        own_tree = self._tree(self.identifier, window.index, create=False)
        if own_tree is not None and own_tree.is_proxy:
            # The contender node itself may be a proxy (walks that returned home).
            own_tree.local_report_contribution(self.proxy_origins)
            ids, distinct, _ = own_tree.report_payload()
            self.adjacency_ids |= ids
            self.distinct_count_phase += distinct

        adjacency = len(self.adjacency_ids - {self.identifier})
        intersection_ok = adjacency >= self.params.intersection_threshold(self.n_assumed)
        distinctness_ok = (
            self.distinct_count_phase >= self.params.distinctness_threshold(self.n_assumed)
        )
        self.satisfied_intersection = intersection_ok
        self.satisfied_distinctness = distinctness_ok
        hit_cap = window.walk_length >= self.params.walk_length_cap(self.n_assumed)

        if self.heard_winner and not (intersection_ok and distinctness_ok):
            # A leader already exists and this contender can never become one
            # (the winning condition requires not having heard a winner), so
            # continuing to double its walks would only burn messages.  This
            # early exit preserves both safety and liveness: safety because the
            # node does not elect, liveness because a leader already exists.
            self.active = False
            self.stopped = True
            self.stopped_on_winner = True
            return

        if not (intersection_ok and distinctness_ok) and not hit_cap:
            # Keep doubling: schedule the start of the next phase.
            self.ctx.wake_at(window.end)
            return

        self.active = False
        self.stopped = True
        self.forced_stop = hit_cap and not (intersection_ok and distinctness_ok)

        may_elect = (intersection_ok and distinctness_ok) or (
            self.forced_stop and self.params.elect_on_forced_stop
        )
        competitors = self.i4_ids | self.adjacency_ids
        has_largest_id = all(self.identifier >= other for other in competitors)
        if may_elect and has_largest_id and not self.heard_winner:
            self.is_leader = True
            self.heard_winner = True
            self._announce_victory(window)

    def _announce_victory(self, window) -> None:
        """Send the winner message to all proxies (Algorithm 2, line 5)."""
        tree = self._tree(self.identifier, window.index, create=False)
        if tree is None:
            return
        tree.winner_down_forwarded = True
        message = wire.make_winner_down(
            self.identifier, window.index, self.identifier, self.n_assumed
        )
        for port in sorted(tree.forward_ports):
            self.ctx.send(port, message)

    def _send_due_convergecasts(self, round_number: int) -> None:
        for (origin, phase), tree in sorted(self.trees.items()):
            if tree.parent_port is None or tree.first_arrival_offset is None:
                continue
            window = self.schedule.window(phase)
            offset = tree.first_arrival_offset
            if not tree.report_sent and round_number >= window.report_send_round(offset):
                if round_number < window.distribute_start:
                    self._send_report(tree)
                tree.report_sent = True
            if not tree.collect_sent and round_number >= window.collect_send_round(offset):
                if round_number < window.decide_round:
                    self._send_collect(tree)
                tree.collect_sent = True

    def _send_report(self, tree: WalkTreeState) -> None:
        tree.local_report_contribution(self.proxy_origins)
        ids, distinct, proxies = tree.report_payload()
        if not ids and distinct == 0 and not self.heard_winner:
            return
        message = wire.make_report(
            tree.origin,
            tree.phase,
            frozenset(ids),
            distinct,
            proxies,
            self.n_assumed,
            self.heard_winner,
        )
        self.ctx.send(tree.parent_port, message)

    def _send_collect(self, tree: WalkTreeState) -> None:
        payload = tree.collect_payload()
        if tree.is_proxy:
            payload |= self.i2_union_by_phase.get(tree.phase, set())
        if not payload and not self.heard_winner:
            return
        message = wire.make_collect(
            tree.origin, tree.phase, frozenset(payload), self.n_assumed, self.heard_winner
        )
        self.ctx.send(tree.parent_port, message)

    # ------------------------------------------------------------ walk logic
    def _advance_walks(self) -> None:
        round_number = self.ctx.round
        for (origin, phase), tree in sorted(self.trees.items()):
            if not tree.has_unfinished_tokens():
                continue
            window = self.schedule.window(phase)
            if not window.walk_start <= round_number < window.report_start:
                continue
            outgoing = tree.advance_one_round(self.ctx.rng, self.ctx.degree)
            if tree.is_proxy:
                self.proxy_origins.add(origin)
            if not outgoing:
                continue
            for (port, steps), count in sorted(outgoing.items()):
                message = wire.make_walk_token(
                    origin,
                    phase,
                    steps,
                    count,
                    self.n_assumed,
                    self.heard_winner,
                )
                self.ctx.send(port, message)

    def _holds_unfinished_tokens(self) -> bool:
        # Only trees whose WALK segment is still open next round matter: a
        # token that (e.g. because an adversary delayed it) arrives after its
        # segment closed can never advance again, and waking for it forever
        # would busy-loop the node until the round cap.
        next_round = self.ctx.round + 1
        for (_origin, phase), tree in self.trees.items():
            if not tree.has_unfinished_tokens():
                continue
            window = self.schedule.window(phase)
            if next_round < window.report_start:
                return True
        return False

    # ----------------------------------------------------------- winner logic
    def _note_winner(self) -> None:
        self.heard_winner = True

    def _fire_winner_rules(self, leader_id: int) -> None:
        """Apply Algorithm 2 lines 6-7 exactly once per node."""
        if self.winner_rules_fired:
            return
        self.winner_rules_fired = True
        # Rule 6: a proxy forwards the winner to every contender it serves.
        for origin in sorted(self.proxy_origins):
            if origin == self.identifier:
                continue
            phase = self.latest_tree_phase.get(origin)
            if phase is None:
                continue
            tree = self._tree(origin, phase, create=False)
            if tree is None or tree.parent_port is None or tree.winner_up_sent:
                continue
            tree.winner_up_sent = True
            self.ctx.send(
                tree.parent_port,
                wire.make_winner_up(origin, phase, leader_id, self.n_assumed),
            )
        # Rule 7: a contender forwards the winner to all of its proxies.
        if self.is_contender and self.current_phase >= 0:
            tree = self._tree(self.identifier, self.current_phase, create=False)
            if tree is not None and not tree.winner_down_forwarded:
                tree.winner_down_forwarded = True
                message = wire.make_winner_down(
                    self.identifier, self.current_phase, leader_id, self.n_assumed
                )
                for port in sorted(tree.forward_ports):
                    self.ctx.send(port, message)

    # -------------------------------------------------------------- plumbing
    def _tree(
        self, origin: int, phase: int, create: bool
    ) -> Optional[WalkTreeState]:
        key = (origin, phase)
        tree = self.trees.get(key)
        if tree is None and create:
            tree = WalkTreeState(
                origin=origin,
                phase=phase,
                walk_length=self.schedule.walk_length(phase),
            )
            self.trees[key] = tree
            previous = self.latest_tree_phase.get(origin)
            if previous is None or phase > previous:
                self.latest_tree_phase[origin] = phase
        return tree


def leader_election_factory(
    params: ElectionParameters = DEFAULT_PARAMETERS,
    assumed_n: Optional[int] = None,
):
    """Return a protocol factory for :class:`repro.sim.Network`."""

    def factory(ctx: NodeContext) -> LeaderElectionNode:
        return LeaderElectionNode(ctx, params=params, assumed_n=assumed_n)

    return factory
