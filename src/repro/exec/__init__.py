"""repro.exec -- parallel experiment orchestration.

Every experiment in the paper's evaluation is a batch of independent trials
over (graph, algorithm, parameters, seed) tuples.  This subsystem gives that
shape first-class support:

* :class:`TrialSpec` / :class:`GraphSpec` / :class:`SweepSpec` -- plain-data
  descriptions of trials and sweeps with deterministic seed derivation;
* :class:`Algorithm` / :data:`ALGORITHMS` -- the capability-declaring
  algorithm registry: the paper's election, the four prior-work baselines
  and the three broadcast substrates all run through one
  ``(graph, spec) -> TrialOutcome`` contract, with declared
  ``fault_aware``/``needs_params``/``outcome_kind`` capabilities validated
  before execution;
* :class:`BatchRunner` -- the deterministic orchestrator over pluggable
  :class:`ExecutionBackend` implementations (``serial``, ``process``,
  ``workerpool``, ``command`` -- see :mod:`repro.exec.backends`); every
  backend is bit-identical to serial for a fixed master seed, and the
  ``REPRO_EXEC_BACKEND`` environment override re-routes runs that did not
  pick a backend explicitly;
* :class:`ResultCache` -- an on-disk store keyed by a stable trial
  fingerprint (graph, parameters, seed, code version), making campaign
  re-runs free; two pluggable backends share one byte-identical entry
  format (``json`` -- one file per trial -- and ``sqlite`` -- a single
  WAL-mode database built for million-trial campaigns), selected per cache
  or through the ``REPRO_CACHE_BACKEND`` environment override;
* :class:`ProgressSink` -- live progress and a wall/compute-time summary,
  subscribed through the :mod:`repro.obs` trace-sink API (the legacy
  :class:`TextReporter` observer keeps working via the
  ``BatchRunner(reporter=...)`` deprecation shim);
* :class:`Shard` -- deterministic fingerprint-based partitioning, so
  ``run(specs, shard=Shard(k, m))`` executes slice ``k`` of ``m`` and the
  union of all slices is bit-identical to the unsharded run (the
  :mod:`repro.campaign` layer builds multi-machine campaigns on this).

Quickstart::

    from repro.exec import BatchRunner, GraphSpec, SweepSpec, TrialSpec

    sweep = SweepSpec(
        name="e1",
        configs=tuple(
            TrialSpec(graph=GraphSpec("expander", (n,), {"degree": 4}))
            for n in (64, 128, 256)
        ),
        trials=4,
        base_seed=11,
    )
    results = BatchRunner(workers=4).run_sweep(sweep)
    for per_config in sweep.group(results):
        print([r.outcome.messages for r in per_config])
"""

from .algorithms import (
    ALGORITHMS,
    Algorithm,
    algorithm_names,
    fault_aware_algorithms,
    get_algorithm,
    register_algorithm,
)
from .backends import (
    BACKEND_ENV_VAR,
    CommandBackend,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    TrialExecutionError,
    WorkerPoolBackend,
    add_backend_argument,
    backend_names,
    make_backend,
)
from .cache import (
    CACHE_BACKEND_ENV_VAR,
    CacheBackend,
    CachedTrial,
    CacheStats,
    JsonDirBackend,
    OutcomeSummary,
    ResultCache,
    SqliteBackend,
    SummaryAggregate,
    add_cache_backend_argument,
    cache_backend_names,
    make_cache_backend,
)
from .config import (
    SIMULATOR_ENV_VAR,
    TRACE_ENV_VAR,
    ExecutionProfile,
    add_execution_arguments,
)
from .execute import TrialPayload
from .fingerprint import canonical_trial_document, code_version_tag, trial_fingerprint
from .report import (
    BatchSummary,
    NullReporter,
    ProgressReporter,
    ProgressSink,
    ReporterSink,
    TextReporter,
)
from .runner import BatchRunner, TrialResult, default_worker_count, execute_trial
from .serialize import outcome_from_dict, outcome_to_dict
from .shard import Shard, shard_index_for
from .spec import GraphSpec, SweepSpec, TrialSpec, build_graph

__all__ = [
    "ALGORITHMS",
    "Algorithm",
    "algorithm_names",
    "fault_aware_algorithms",
    # FAULT_AWARE_ALGORITHMS is still importable through __getattr__ (with a
    # DeprecationWarning) but deliberately absent from __all__ so that star
    # imports stay warning-free.
    "get_algorithm",
    "register_algorithm",
    "ResultCache",
    "CachedTrial",
    "CacheStats",
    "CacheBackend",
    "OutcomeSummary",
    "SummaryAggregate",
    "JsonDirBackend",
    "SqliteBackend",
    "CACHE_BACKEND_ENV_VAR",
    "cache_backend_names",
    "make_cache_backend",
    "add_cache_backend_argument",
    "trial_fingerprint",
    "canonical_trial_document",
    "code_version_tag",
    "BatchSummary",
    "ProgressReporter",
    "NullReporter",
    "TextReporter",
    "ReporterSink",
    "ProgressSink",
    "BatchRunner",
    "ExecutionProfile",
    "add_execution_arguments",
    "SIMULATOR_ENV_VAR",
    "TRACE_ENV_VAR",
    "TrialResult",
    "TrialPayload",
    "execute_trial",
    "default_worker_count",
    "BACKEND_ENV_VAR",
    "ExecutionBackend",
    "TrialExecutionError",
    "SerialBackend",
    "ProcessPoolBackend",
    "WorkerPoolBackend",
    "CommandBackend",
    "add_backend_argument",
    "backend_names",
    "make_backend",
    "outcome_to_dict",
    "outcome_from_dict",
    "Shard",
    "shard_index_for",
    "GraphSpec",
    "SweepSpec",
    "TrialSpec",
    "build_graph",
]


def __getattr__(name: str):
    # Deprecated alias kept importable from the package root; the module-level
    # shim in .algorithms owns the DeprecationWarning.
    if name == "FAULT_AWARE_ALGORITHMS":
        from . import algorithms

        return algorithms.FAULT_AWARE_ALGORITHMS
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
