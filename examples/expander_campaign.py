#!/usr/bin/env python3
"""Scaling campaign on well-connected families (experiments E1 and E2).

Sweeps the network size on expanders and hypercubes, measures messages and
rounds of the election, and fits the scaling exponent of messages versus
``n``.  The paper's claim is that messages grow like ``sqrt(n)`` times
polylog factors (times ``t_mix``), far below the ``Theta(m) = Theta(n)``
cost of flooding-based algorithms.

The whole run is a ``repro.campaign`` campaign: two named sweeps executed by
a ``CampaignRunner`` against an on-disk result cache, with a per-trial
manifest and a cache-backed Markdown + JSON report in the campaign
directory.  That buys, on top of ``--workers N`` process parallelism:

* **resume** -- re-running after an interruption only executes missing
  trials (a completed campaign re-runs for free);
* **sharding** -- ``--shard k/m`` runs slice ``k`` of ``m`` (zero-based) so
  ``m`` machines can split the campaign; pointing them at one cache
  directory (or merging their caches) reproduces the single-machine result
  bit for bit;
* **dashboard** -- ``report.md`` / ``report.json`` aggregate whatever is
  cached so far, without re-running anything.

Run with::

    python examples/expander_campaign.py [--quick] [--workers N]
        [--dir DIR] [--shard K/M] [--backend NAME]

Execution knobs (worker count, execution backend, cache backend, run-wide
simulator engine, tracing) all come from one ``ExecutionProfile`` built off
the shared ``add_execution_arguments`` flags -- see docs/architecture.md
"One execution-config API".
"""

from __future__ import annotations

import argparse
import os

from repro.analysis import fit_power_law, format_table, upper_bound_messages_large
from repro.campaign import CampaignRunner, CampaignSpec, campaign_report, write_report
from repro.exec import (
    ExecutionProfile,
    GraphSpec,
    ProgressSink,
    Shard,
    SweepSpec,
    TrialSpec,
    add_execution_arguments,
)
from repro.graphs import mixing_time

BASE_SEED = 11


def build_campaign(quick: bool) -> CampaignSpec:
    if quick:
        expander_sizes = [64, 128]
        hypercube_dims = [5, 6]
        trials = 1
    else:
        expander_sizes = [64, 128, 256, 512]
        hypercube_dims = [5, 6, 7, 8]
        trials = 2
    return CampaignSpec(
        name="expander-campaign",
        sweeps=(
            SweepSpec(
                name="expander-scaling-e1",
                configs=tuple(
                    TrialSpec(
                        graph=GraphSpec("expander", (n,), {"degree": 4}),
                        label="n=%d" % n,
                    )
                    for n in expander_sizes
                ),
                trials=trials,
                base_seed=BASE_SEED,
            ),
            SweepSpec(
                name="hypercube-scaling-e2",
                configs=tuple(
                    TrialSpec(graph=GraphSpec("hypercube", (d,)), label="n=%d" % 2**d)
                    for d in hypercube_dims
                ),
                trials=trials,
                base_seed=BASE_SEED,
            ),
        ),
    )


def print_sweep(campaign: CampaignSpec, sweep_report: dict) -> None:
    """Render one sweep's aggregate rows, plus bound column and scaling fit."""
    print("\n=== %s ===" % sweep_report["name"])
    sweep = campaign.sweep(sweep_report["name"])
    # The expanded trials carry the derived graph seeds; the config templates
    # do not, and building an unseeded random family would be a different
    # graph on every run.
    expanded = sweep.expand()
    sizes, rows = [], []
    for index, row in enumerate(sweep_report["rows"]):
        row = {key: value for key, value in row.items() if key != "classifications"}
        graph_spec = expanded[index * sweep.trials].graph
        assert isinstance(graph_spec, GraphSpec)
        graph = graph_spec.build()
        sizes.append(graph.num_nodes)
        row["bound_msgs"] = round(
            upper_bound_messages_large(graph.num_nodes, max(1, mixing_time(graph))), 1
        )
        rows.append(row)
    print(format_table(rows))
    complete = [row for row in rows if row["done"] == row["trials"]]
    if len(complete) == len(rows) and len(rows) >= 2:
        fit = fit_power_law(sizes, [row["messages"] for row in rows])
        print("message scaling fit: %s" % fit)
        print(
            "(sqrt(n)*polylog corresponds to an exponent of ~0.5-0.8 over wide "
            "sweeps; flood-style baselines sit at >= 1.0.  Fits over only 2-3 "
            "sizes with a single trial are noisy -- run without --quick for the "
            "real campaign.)"
        )
    else:
        print("(scaling fit skipped: campaign incomplete -- run the other shards "
              "or resume to fill the cache)")


def main(
    quick: bool = False,
    directory: str = os.path.join(".campaign", "expander"),
    shard: str = "",
    profile: ExecutionProfile = ExecutionProfile(),
) -> None:
    campaign = build_campaign(quick)
    cache = profile.open_cache(os.path.join(directory, "cache"))
    runner = CampaignRunner(
        campaign,
        cache,
        shard=Shard.parse(shard) if shard else None,
        directory=directory,
        sinks=(ProgressSink(prefix=campaign.name, every=4),),
        profile=profile,
    )
    # With --trace (or REPRO_TRACE=1) the runner records the run as
    # <dir>/trace.jsonl and drops telemetry.md / telemetry.json next to the
    # campaign report; `python -m repro.obs.watch <dir>` renders both live
    # from another terminal.
    result = runner.run()
    print(result.describe())

    report = campaign_report(campaign, cache)
    markdown_path, json_path = write_report(campaign, cache, directory, report=report)
    for sweep_report in report["sweeps"]:
        print_sweep(campaign, sweep_report)
    print("\nreport written to %s and %s" % (markdown_path, json_path))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="tiny sweep for a fast sanity check")
    parser.add_argument(
        "--dir",
        default=os.path.join(".campaign", "expander"),
        metavar="DIR",
        help="campaign directory: result cache, manifest.json, report.md/json",
    )
    parser.add_argument(
        "--shard",
        default="",
        metavar="K/M",
        help="run only shard K of M (zero-based), e.g. 0/2 and 1/2 on two machines",
    )
    add_execution_arguments(parser)
    arguments = parser.parse_args()
    main(
        quick=arguments.quick,
        directory=arguments.dir,
        shard=arguments.shard,
        profile=ExecutionProfile.from_arguments(arguments),
    )
