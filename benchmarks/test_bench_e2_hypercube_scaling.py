"""E2 -- Theorem 13 on hypercubes (t_mix = O(log n loglog n)).

Second worked example from the paper's introduction: hypercubes are
well-connected, so the election stays sublinear in the number of edges
(m = (n/2) log2 n for a hypercube).  The benchmark sweeps the dimension
through ``repro.exec`` trial specs and records the same quantities as E1.
"""

from dataclasses import replace

import pytest

from repro.analysis import upper_bound_messages_congest
from repro.exec import BatchRunner, GraphSpec, TrialSpec, build_graph
from repro.graphs import mixing_time

DIMENSIONS = [5, 6, 7]
SEED = 77

_RUNNER = BatchRunner(workers=1)
_GRAPHS = {}
_OUTCOMES = {}


def _spec(dimension):
    return TrialSpec(
        graph=GraphSpec("hypercube", (dimension,)),
        algorithm="election",
        seed=SEED + dimension,
        label="e2 dim=%d" % dimension,
    )


def _graph(dimension):
    if dimension not in _GRAPHS:
        _GRAPHS[dimension] = build_graph(_spec(dimension).graph)
    return _GRAPHS[dimension]


def _run(dimension):
    # Build once inside the timed region (as the original driver did) and
    # hand the instance to the runner inline, so extra_info reuses it.
    spec = _spec(dimension)
    _GRAPHS[dimension] = build_graph(spec.graph)
    outcome = _RUNNER.run([replace(spec, graph=_GRAPHS[dimension])])[0].outcome
    _OUTCOMES[dimension] = outcome
    return outcome


@pytest.mark.parametrize("dimension", DIMENSIONS)
def test_e2_hypercube_election(benchmark, dimension):
    outcome = benchmark.pedantic(_run, args=(dimension,), rounds=1, iterations=1)
    graph = _graph(dimension)
    t_mix = mixing_time(graph)
    benchmark.extra_info.update(
        {
            "dimension": dimension,
            "n": graph.num_nodes,
            "m": graph.num_edges,
            "t_mix": t_mix,
            "messages": outcome.messages,
            "message_units": outcome.message_units,
            "rounds": outcome.rounds,
            "leaders": outcome.num_leaders,
        }
    )
    assert outcome.success
    assert outcome.message_units <= upper_bound_messages_congest(
        graph.num_nodes, t_mix, constant=16.0
    )


def test_e2_round_complexity_tracks_tmix(benchmark):
    """Theorem 13's time bound: rounds stay within O(t_mix log^2 n) on every size."""

    def measure():
        rows = []
        for dimension in DIMENSIONS:
            if dimension not in _OUTCOMES:
                _run(dimension)
            graph = _graph(dimension)
            rows.append((graph.num_nodes, mixing_time(graph), _OUTCOMES[dimension].rounds))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"rows_n_tmix_rounds": [[n, t, r] for n, t, r in rows]}
    )
    import math

    for n, t_mix, rounds in rows:
        # O(t_mix log^2 n) with a moderate constant; the constant absorbs the
        # 6-segment schedule and the occasional straggler contender.
        assert rounds <= 4.0 * t_mix * math.log(n) ** 2
