"""The observability determinism contract, property-tested across the registry.

Tracing is a write-only side channel: for every registered algorithm, on
every simulator it declares, the outcome document, the trial fingerprint and
the cache key must be byte-identical whether the trial ran under the default
:class:`NullSink` (disabled tracer) or a full :class:`JsonlTraceSink` -- and
identical to an untraced run.  This is what makes it safe to leave
instrumentation in the hot paths and flip sinks on in production campaigns.
"""

import json

import pytest

from repro.core import DEFAULT_PARAMETERS, ElectionParameters
from repro.exec import (
    GraphSpec,
    ResultCache,
    TrialSpec,
    execute_trial,
    outcome_to_dict,
    trial_fingerprint,
)
from repro.exec.algorithms import ALGORITHMS, algorithm_names
from repro.obs import JsonlTraceSink, NullSink, Tracer, use_tracer

FAST = ElectionParameters(c1=3.0, c2=0.5)


def _spec(name, simulator):
    algorithm = ALGORITHMS[name]
    return TrialSpec(
        graph=GraphSpec("clique", (12,)),
        algorithm=name,
        seed=7,
        simulator=simulator,
        # Non-params algorithms reject non-default params at capability check.
        params=FAST if algorithm.needs_params else DEFAULT_PARAMETERS,
    )


def _cases():
    # Public entries only: other test modules register throwaway
    # ``_``-prefixed algorithms whose behaviour is deliberately erratic.
    for name in algorithm_names():
        for simulator in ALGORITHMS[name].simulators:
            yield name, simulator


@pytest.mark.parametrize("name,simulator", list(_cases()))
def test_outcome_bytes_identical_with_and_without_tracing(name, simulator, tmp_path):
    spec = _spec(name, simulator)

    with use_tracer(Tracer(NullSink())):
        null_outcome = execute_trial(spec)
        null_fingerprint = trial_fingerprint(spec)

    sink = JsonlTraceSink(tmp_path / "trace.jsonl")
    with use_tracer(Tracer(sink)):
        traced_outcome = execute_trial(spec)
        traced_fingerprint = trial_fingerprint(spec)
    sink.close()

    untraced_outcome = execute_trial(spec)

    def canonical(outcome):
        return json.dumps(outcome_to_dict(outcome), sort_keys=True)

    assert canonical(null_outcome) == canonical(traced_outcome) == canonical(
        untraced_outcome
    )
    assert null_fingerprint == traced_fingerprint == trial_fingerprint(spec)


def test_cache_keys_identical_with_and_without_tracing(tmp_path):
    """A trial cached under tracing is a cache *hit* for an untraced rerun
    (and vice versa): the fingerprint key never sees the tracer."""
    spec = _spec("election", "reference")

    traced_cache = ResultCache(tmp_path / "traced")
    sink = JsonlTraceSink(tmp_path / "trace.jsonl")
    with use_tracer(Tracer(sink)):
        traced_cache.put(
            trial_fingerprint(spec), spec, execute_trial(spec), elapsed_seconds=0.1
        )
    sink.close()

    hit = traced_cache.get(trial_fingerprint(spec))
    assert hit is not None
    assert json.dumps(outcome_to_dict(hit.outcome), sort_keys=True) == json.dumps(
        outcome_to_dict(execute_trial(spec)), sort_keys=True
    )


def test_null_sink_tracer_is_disabled():
    """NullSink-only tracers report disabled: the zero-overhead path."""
    assert not Tracer(NullSink()).enabled
    assert not Tracer((NullSink(), NullSink())).enabled
    assert not Tracer().enabled
