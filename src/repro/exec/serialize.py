"""JSON (de)serialisation of trial outcomes for the result cache.

Both outcome types the registered algorithms produce --
:class:`~repro.core.result.ElectionOutcome` and
:class:`~repro.baselines.flood_max.BaselineOutcome` -- are plain dataclasses
over scalars, lists and string-keyed dicts, so they round-trip through JSON
exactly.  ``ElectionOutcome.simulation`` (the raw per-node transcript) is
deliberately not cached: it is None for every batch-executed trial and would
dwarf the summary data.
"""

from __future__ import annotations

from typing import Dict, Union

from ..baselines.flood_max import BaselineOutcome
from ..core.result import ElectionOutcome
from ..sim.metrics import RunMetrics

__all__ = ["outcome_to_dict", "outcome_from_dict"]


def _metrics_to_dict(metrics: RunMetrics) -> Dict[str, object]:
    return {
        "rounds": metrics.rounds,
        "messages": metrics.messages,
        "message_units": metrics.message_units,
        "bits": metrics.bits,
        "messages_by_kind": dict(metrics.messages_by_kind),
        "units_by_kind": dict(metrics.units_by_kind),
        "max_edge_bits_in_round": metrics.max_edge_bits_in_round,
        "congestion_events": metrics.congestion_events,
        "completed": metrics.completed,
        "fault_events": dict(metrics.fault_events),
    }


def _metrics_from_dict(payload: Dict[str, object]) -> RunMetrics:
    return RunMetrics(
        rounds=payload["rounds"],
        messages=payload["messages"],
        message_units=payload["message_units"],
        bits=payload["bits"],
        messages_by_kind=dict(payload["messages_by_kind"]),
        units_by_kind=dict(payload["units_by_kind"]),
        max_edge_bits_in_round=payload["max_edge_bits_in_round"],
        congestion_events=payload["congestion_events"],
        completed=payload["completed"],
        fault_events=dict(payload.get("fault_events", {})),
    )


def outcome_to_dict(outcome: Union[ElectionOutcome, BaselineOutcome]) -> Dict[str, object]:
    """Flatten an outcome into a JSON-serialisable document."""
    if isinstance(outcome, ElectionOutcome):
        return {
            "type": "election",
            "num_nodes": outcome.num_nodes,
            "leaders": list(outcome.leaders),
            "contenders": list(outcome.contenders),
            "forced_stop": outcome.forced_stop,
            "max_phases": outcome.max_phases,
            "final_walk_length": outcome.final_walk_length,
            "crashed_nodes": list(outcome.crashed_nodes),
            "metrics": _metrics_to_dict(outcome.metrics),
        }
    if isinstance(outcome, BaselineOutcome):
        return {
            "type": "baseline",
            "num_nodes": outcome.num_nodes,
            "leaders": list(outcome.leaders),
            "contenders": outcome.contenders,
            "metrics": _metrics_to_dict(outcome.metrics),
        }
    raise TypeError("cannot serialise outcome of type %r" % type(outcome).__name__)


def outcome_from_dict(payload: Dict[str, object]) -> Union[ElectionOutcome, BaselineOutcome]:
    """Rebuild the outcome object a cached document describes."""
    kind = payload.get("type")
    if kind == "election":
        return ElectionOutcome(
            num_nodes=payload["num_nodes"],
            leaders=list(payload["leaders"]),
            contenders=list(payload["contenders"]),
            metrics=_metrics_from_dict(payload["metrics"]),
            forced_stop=payload["forced_stop"],
            max_phases=payload["max_phases"],
            final_walk_length=payload["final_walk_length"],
            crashed_nodes=list(payload.get("crashed_nodes", [])),
        )
    if kind == "baseline":
        return BaselineOutcome(
            num_nodes=payload["num_nodes"],
            leaders=list(payload["leaders"]),
            contenders=payload["contenders"],
            metrics=_metrics_from_dict(payload["metrics"]),
        )
    raise ValueError("unknown cached outcome type %r" % kind)
