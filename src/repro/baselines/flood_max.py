"""Flood-max leader election: the classic ``O(D)``-time, ``O(m D)``-message baseline.

Every node draws a random id and floods the largest id it has seen; a node
forwards only when its known maximum improves, so the message cost is at most
``m`` per improvement wave (``O(m D)`` in total, ``O(m log n)`` in the typical
random-id case).  The node holding the global maximum elects itself.  This is
the Peleg-style time-optimal baseline the paper contrasts with; on
well-connected graphs its message cost is ``Theta(m)`` or worse, which is what
the E3 comparison shows.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.result import TrialOutcome, election_trial_outcome
from ..faults.plan import FaultPlan
from ..graphs.topology import Graph
from ..sim.harness import run_protocol
from ..sim.message import Message, id_bits
from ..sim.metrics import RunMetrics
from ..sim.network import SimulationResult
from ..sim.node import Inbox, NodeContext, Protocol

__all__ = [
    "FloodMaxNode",
    "flood_max_factory",
    "flood_max_trial",
    "BaselineOutcome",
    "run_flood_max_election",
]

MAX_ID = "max_id"


@dataclass
class BaselineOutcome:
    """Outcome shared by the deprecated ``run_*_election`` baseline shims.

    .. deprecated::
        New code receives the unified
        :class:`~repro.core.result.TrialOutcome` from the ``*_trial``
        functions or the :mod:`repro.exec` registry; this class remains only
        as the return type of the deprecated shims.
    """

    num_nodes: int
    leaders: list
    contenders: int
    metrics: RunMetrics

    @property
    def num_leaders(self) -> int:
        return len(self.leaders)

    @property
    def success(self) -> bool:
        return self.num_leaders == 1

    @property
    def messages(self) -> int:
        return self.metrics.messages

    @property
    def message_units(self) -> int:
        return self.metrics.message_units

    @property
    def rounds(self) -> int:
        return self.metrics.rounds

    def as_record(self) -> Dict[str, object]:
        return {
            "num_nodes": self.num_nodes,
            "num_leaders": self.num_leaders,
            "num_contenders": self.contenders,
            "success": self.success,
            "rounds": self.rounds,
            "messages": self.messages,
            "message_units": self.message_units,
        }


class FloodMaxNode(Protocol):
    """Flood the maximum identifier; the holder of the global maximum wins."""

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        n = ctx.known_n if ctx.known_n is not None else 2
        self.identifier = ctx.rng.randint(1, max(4, n**4))
        self.best_seen = self.identifier
        self._id_bits = id_bits(max(2, n))

    def on_start(self) -> None:
        self._broadcast(self.best_seen)

    def on_round(self, inbox: Inbox) -> None:
        improved = False
        for batch in inbox.values():
            for message in batch:
                candidate = message.payload["value"]
                if candidate > self.best_seen:
                    self.best_seen = candidate
                    improved = True
        if improved:
            self._broadcast(self.best_seen)

    def result(self) -> Dict[str, object]:
        return {
            "leader": self.best_seen == self.identifier,
            "contender": True,
            "id": self.identifier,
        }

    def _broadcast(self, value: int) -> None:
        message = Message(kind=MAX_ID, payload={"value": value}, size_bits=self._id_bits)
        for port in self.ctx.ports:
            self.ctx.send(port, message)


def flood_max_factory():
    """Protocol factory for :class:`repro.sim.Network`."""

    def factory(ctx: NodeContext) -> FloodMaxNode:
        return FloodMaxNode(ctx)

    return factory


def _simulate(
    graph: Graph,
    seed: Optional[int],
    fault_plan: Optional[FaultPlan],
    max_rounds: int,
) -> SimulationResult:
    """One flood-max run on the shared harness (historical seed streams)."""
    return run_protocol(
        graph,
        flood_max_factory(),
        seed=seed,
        port_stream=0x21,
        network_stream=0x22,
        fault_plan=fault_plan,
        max_rounds=max_rounds,
    )


def flood_max_trial(
    graph: Graph,
    *,
    seed: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    max_rounds: int = 1_000_000,
) -> TrialOutcome:
    """Run the flood-max baseline and return the unified trial outcome.

    A non-empty ``fault_plan`` runs the flood against that adversary (drop /
    duplicate / delay / crash-stop at a round); every node contends
    implicitly, so ``extras['num_contenders']`` is always ``n``.
    """
    result = _simulate(graph, seed, fault_plan, max_rounds)
    return election_trial_outcome(
        "flood_max", result, num_contenders=graph.num_nodes
    )


def run_flood_max_election(
    graph: Graph, seed: Optional[int] = None, max_rounds: int = 1_000_000
) -> BaselineOutcome:
    """Deprecated shim: run flood-max and report a :class:`BaselineOutcome`.

    .. deprecated::
        Use :func:`flood_max_trial` (or ``TrialSpec(algorithm="flood_max")``
        through :mod:`repro.exec`); numbers are identical, only the envelope
        changed.
    """
    warnings.warn(
        "run_flood_max_election is deprecated; use flood_max_trial or the "
        "'flood_max' entry of the repro.exec algorithm registry",
        DeprecationWarning,
        stacklevel=2,
    )
    result = _simulate(graph, seed, None, max_rounds)
    leaders = result.nodes_with("leader", True)
    return BaselineOutcome(
        num_nodes=graph.num_nodes,
        leaders=leaders,
        contenders=graph.num_nodes,
        metrics=result.metrics,
    )
