"""Tests for the on-disk result cache: hits, misses, corruption, round-trips."""

import json
import os

import pytest

from repro.core import ElectionParameters
from repro.core.result import ElectionOutcome
from repro.baselines import BaselineOutcome
from repro.exec import (
    BatchRunner,
    GraphSpec,
    ResultCache,
    TrialSpec,
    execute_trial,
    outcome_from_dict,
    outcome_to_dict,
    trial_fingerprint,
)

FAST = ElectionParameters(c1=3.0, c2=0.5)


def _spec(seed=3, algorithm="election"):
    return TrialSpec(graph=GraphSpec("clique", (20,)), algorithm=algorithm, seed=seed, params=FAST)


class TestSerialization:
    def test_election_outcome_roundtrip(self):
        outcome = execute_trial(_spec())
        assert isinstance(outcome, ElectionOutcome)
        restored = outcome_from_dict(json.loads(json.dumps(outcome_to_dict(outcome))))
        assert restored.as_record() == outcome.as_record()
        assert restored.leaders == outcome.leaders
        assert restored.contenders == outcome.contenders
        assert restored.metrics == outcome.metrics

    def test_baseline_outcome_roundtrip(self):
        outcome = execute_trial(_spec(algorithm="flood_max"))
        assert isinstance(outcome, BaselineOutcome)
        restored = outcome_from_dict(json.loads(json.dumps(outcome_to_dict(outcome))))
        assert restored.as_record() == outcome.as_record()
        assert restored.metrics == outcome.metrics

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            outcome_to_dict(object())
        with pytest.raises(ValueError):
            outcome_from_dict({"type": "mystery"})


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = _spec()
        fingerprint = trial_fingerprint(spec)
        assert cache.get(fingerprint) is None

        first = BatchRunner(workers=1, cache=cache).run([spec])[0]
        assert not first.from_cache
        assert len(cache) == 1

        second = BatchRunner(workers=1, cache=cache).run([spec])[0]
        assert second.from_cache
        assert second.outcome.as_record() == first.outcome.as_record()
        assert second.outcome.leaders == first.outcome.leaders

    def test_different_trials_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = BatchRunner(workers=1, cache=cache)
        runner.run([_spec(seed=1)])
        result = runner.run([_spec(seed=2)])[0]
        assert not result.from_cache
        assert len(cache) == 2

    def test_corrupt_entry_is_a_miss_and_gets_repaired(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        runner = BatchRunner(workers=1, cache=cache)
        runner.run([spec])
        path = cache.path_for(trial_fingerprint(spec))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert cache.get(trial_fingerprint(spec)) is None
        repaired = runner.run([spec])[0]
        assert not repaired.from_cache
        assert cache.get(trial_fingerprint(spec)) is not None

    def test_entries_expose_trial_documents(self, tmp_path):
        cache = ResultCache(tmp_path)
        BatchRunner(workers=1, cache=cache).run([_spec()])
        entries = list(cache.entries())
        assert len(entries) == 1
        assert entries[0]["trial"]["algorithm"] == "election"
        assert entries[0]["outcome"]["type"] == "election"
        fingerprint = entries[0]["fingerprint"]
        path = cache.path_for(fingerprint)
        assert os.path.basename(os.path.dirname(path)) == fingerprint[:2]
        assert path.endswith(fingerprint + ".json")

    def test_cache_hit_serves_identical_outcome_as_execution(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec(seed=11)
        executed = execute_trial(spec)
        BatchRunner(workers=1, cache=cache).run([spec])
        hit = BatchRunner(workers=1, cache=cache).run([spec])[0]
        assert hit.from_cache
        assert hit.outcome.as_record() == executed.as_record()
