"""Registry-wide properties of the unified algorithm API.

The redesign's acceptance criteria, pinned per registered algorithm rather
than per hand-picked name: every public entry executes through
``TrialSpec``/``BatchRunner`` into a :class:`TrialOutcome`, is bit-identical
serial vs 4 workers for a fixed seed, and behaves exactly as its declared
capabilities promise (fault plans rejected iff not fault-aware, non-default
parameters rejected iff ignored).
"""

import json

import pytest

from repro.core import ElectionParameters
from repro.core.result import KIND_CLASSIFICATIONS, TrialOutcome
from repro.exec import (
    BatchRunner,
    GraphSpec,
    TrialSpec,
    algorithm_names,
    execute_trial,
    fault_aware_algorithms,
    get_algorithm,
    outcome_to_dict,
)
from repro.exec.algorithms import ALGORITHMS, register_algorithm
from repro.faults import FaultPlan

FAST = ElectionParameters(c1=3.0, c2=0.5)

#: Eight public algorithms ship with the registry; private ``_``-prefixed
#: test registrations (this file adds one) never count.
PUBLIC_ALGORITHMS = (
    "clique_sublinear",
    "controlled_flooding",
    "election",
    "flood_max",
    "flooding",
    "known_tmix",
    "push_pull",
    "spanning_tree",
)


def _spec(name, seed=3, fault_plan=None):
    """A cheap spec for any algorithm, honouring its declared capabilities."""
    algorithm = get_algorithm(name)
    kwargs = {"params": FAST} if algorithm.needs_params else {}
    algo_kwargs = {"mixing_time": 1} if name == "known_tmix" else {}
    return TrialSpec(
        graph=GraphSpec("clique", (12,)),
        algorithm=name,
        seed=seed,
        algo_kwargs=algo_kwargs,
        fault_plan=fault_plan,
        **kwargs,
    )


class TestCatalog:
    def test_public_registry_is_the_eight_algorithms(self):
        assert tuple(algorithm_names()) == PUBLIC_ALGORITHMS

    def test_every_entry_declares_a_known_kind(self):
        for name in algorithm_names():
            assert get_algorithm(name).outcome_kind in KIND_CLASSIFICATIONS

    def test_every_public_entry_is_fault_aware_and_described(self):
        for name in algorithm_names():
            algorithm = get_algorithm(name)
            assert algorithm.fault_aware, name
            assert algorithm.description, name
        assert set(algorithm_names()) <= fault_aware_algorithms()

    def test_unknown_name_lists_known_ones(self):
        with pytest.raises(KeyError, match="election"):
            get_algorithm("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            register_algorithm("election")(lambda graph, spec: None)


class TestUnifiedExecution:
    def test_every_algorithm_returns_a_trial_outcome(self):
        for name in algorithm_names():
            outcome = execute_trial(_spec(name))
            assert isinstance(outcome, TrialOutcome)
            assert outcome.algorithm == name
            assert outcome.kind == get_algorithm(name).outcome_kind
            assert outcome.num_nodes == 12
            assert outcome.classification in KIND_CLASSIFICATIONS[outcome.kind]
            assert outcome.messages > 0

    def test_registry_wide_serial_matches_4_workers_bitwise(self):
        """The determinism contract, per algorithm, through the real executor."""
        specs = [
            _spec(name, seed=seed)
            for name in algorithm_names()
            for seed in (1, 2)
        ]
        serial = BatchRunner(workers=1).run(specs)
        parallel = BatchRunner(workers=4).run(specs)

        def signature(results):
            return [
                json.dumps(outcome_to_dict(result.outcome), sort_keys=True)
                for result in results
            ]

        assert signature(serial) == signature(parallel)

    def test_registry_wide_faulty_replay_serial_matches_4_workers(self):
        plan = FaultPlan.dropping(0.2)
        specs = [_spec(name, seed=5, fault_plan=plan) for name in algorithm_names()]
        serial = BatchRunner(workers=1).run(specs)
        parallel = BatchRunner(workers=4).run(specs)
        for a, b in zip(serial, parallel):
            assert outcome_to_dict(a.outcome) == outcome_to_dict(b.outcome)
            assert a.outcome.metrics.fault_events == b.outcome.metrics.fault_events

    def test_registry_wide_every_backend_matches_serial_bitwise(self):
        """The backend determinism contract (this PR's acceptance pin): for a
        fixed master seed, every execution backend -- in-process, process
        pool, persistent wire workers, command dispatch -- produces bitwise
        identical TrialOutcome sets for every registered algorithm, fault
        plans included (the plan's SplitMix64 streams must survive the JSON
        wire exactly)."""
        from repro.exec import backend_names

        plan = FaultPlan.dropping(0.2)
        specs = [_spec(name, seed=7) for name in algorithm_names()]
        specs += [_spec(name, seed=7, fault_plan=plan) for name in algorithm_names()]

        def signature(results):
            return [
                json.dumps(outcome_to_dict(result.outcome), sort_keys=True)
                for result in results
            ]

        reference = signature(BatchRunner(backend="serial").run(specs))
        for backend in backend_names():
            if backend == "serial":
                continue
            results = BatchRunner(workers=2, backend=backend).run(specs)
            assert signature(results) == reference, backend

    def test_non_trial_outcome_return_is_a_registration_bug(self):
        if "_raw_return_test_only" not in ALGORITHMS:

            @register_algorithm("_raw_return_test_only")
            def _run_raw(graph, spec):
                return {"not": "a TrialOutcome"}

        with pytest.raises(TypeError, match="TrialOutcome"):
            execute_trial(
                TrialSpec(graph=GraphSpec("clique", (8,)), algorithm="_raw_return_test_only")
            )


class TestDeclaredCapabilitiesMatchBehaviour:
    def test_non_fault_aware_entry_rejects_non_empty_plans(self):
        if "_capability_probe_test_only" not in ALGORITHMS:

            @register_algorithm("_capability_probe_test_only")
            def _run_probe(graph, spec):
                from repro.baselines import flood_max_trial

                return flood_max_trial(graph, seed=spec.seed)

        assert "_capability_probe_test_only" not in fault_aware_algorithms()
        spec = TrialSpec(
            graph=GraphSpec("clique", (8,)),
            algorithm="_capability_probe_test_only",
            fault_plan=FaultPlan.dropping(0.5),
        )
        with pytest.raises(ValueError, match="not fault-aware"):
            BatchRunner(workers=1).run([spec])
        with pytest.raises(ValueError, match="not fault-aware"):
            execute_trial(spec)

    def test_params_blind_entries_reject_non_default_params(self):
        for name in algorithm_names():
            if get_algorithm(name).needs_params:
                continue
            spec = TrialSpec(
                graph=GraphSpec("clique", (8,)), algorithm=name, params=FAST
            )
            with pytest.raises(ValueError, match="ignores election parameters"):
                execute_trial(spec)

    def test_fault_aware_entries_actually_consume_the_plan(self):
        """Declared fault-awareness is real: a drop plan moves the counters."""
        plan = FaultPlan.dropping(0.3)
        for name in algorithm_names():
            outcome = execute_trial(_spec(name, seed=11, fault_plan=plan))
            assert outcome.metrics.fault_events.get("dropped", 0) > 0, name

    def test_deprecated_fault_aware_set_still_importable(self):
        with pytest.warns(DeprecationWarning, match="FAULT_AWARE_ALGORITHMS"):
            from repro.exec.algorithms import FAULT_AWARE_ALGORITHMS
        assert set(algorithm_names()) <= FAULT_AWARE_ALGORITHMS

    def test_every_entry_declares_reference_plus_known_simulators(self):
        from repro.core.runner import KNOWN_SIMULATORS

        for name in algorithm_names():
            declared = get_algorithm(name).simulators
            assert "reference" in declared, name
            assert set(declared) <= set(KNOWN_SIMULATORS), name

    def test_undeclared_simulator_rejected_up_front(self):
        spec = TrialSpec(
            graph=GraphSpec("clique", (8,)),
            algorithm="flood_max",
            simulator="vectorized",
        )
        with pytest.raises(ValueError, match="does not support simulator"):
            execute_trial(spec)

    def test_registration_validates_simulator_names(self):
        from repro.exec.algorithms import Algorithm

        with pytest.raises(ValueError, match="must support the 'reference'"):
            Algorithm(name="_x", runner=lambda g, s: None, simulators=("vectorized",))
        with pytest.raises(ValueError, match="unknown simulator"):
            Algorithm(
                name="_x", runner=lambda g, s: None, simulators=("reference", "warp")
            )
