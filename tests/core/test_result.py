"""Unit tests for the election outcome aggregation."""

from repro.core.result import ElectionOutcome, outcome_from_simulation
from repro.sim.metrics import MetricsCollector
from repro.sim.network import SimulationResult


def make_metrics(messages=10, rounds=5):
    collector = MetricsCollector(word_bits=8)
    for _ in range(messages):
        collector.record_send("x", 8)
    return collector.finalize(rounds=rounds, completed=True)


def make_simulation(node_results):
    return SimulationResult(
        metrics=make_metrics(),
        node_results=node_results,
        messages_by_node=[0] * len(node_results),
    )


class TestOutcomeFromSimulation:
    def test_single_leader_success(self):
        sim = make_simulation(
            [
                {"leader": True, "contender": True, "phases": 3, "final_walk_length": 4},
                {"leader": False, "contender": True, "phases": 3, "final_walk_length": 4},
                {"leader": False, "contender": False},
            ]
        )
        outcome = outcome_from_simulation(sim)
        assert outcome.success
        assert outcome.leader == 0
        assert outcome.num_contenders == 2
        assert outcome.max_phases == 3
        assert outcome.final_walk_length == 4

    def test_zero_leaders_failure(self):
        sim = make_simulation([{"leader": False, "contender": False}] * 3)
        outcome = outcome_from_simulation(sim)
        assert not outcome.success
        assert outcome.leader is None
        assert outcome.num_leaders == 0

    def test_two_leaders_failure(self):
        sim = make_simulation(
            [{"leader": True, "contender": True}, {"leader": True, "contender": True}]
        )
        outcome = outcome_from_simulation(sim)
        assert not outcome.success
        assert outcome.num_leaders == 2

    def test_forced_stop_propagates(self):
        sim = make_simulation(
            [{"leader": True, "contender": True, "forced_stop": True}, {"leader": False}]
        )
        assert outcome_from_simulation(sim).forced_stop

    def test_simulation_not_kept_by_default(self):
        sim = make_simulation([{"leader": True, "contender": True}])
        assert outcome_from_simulation(sim).simulation is None
        assert outcome_from_simulation(sim, keep_simulation=True).simulation is sim


class TestOutcomeAccessors:
    def make_outcome(self, leaders):
        return ElectionOutcome(
            num_nodes=8,
            leaders=leaders,
            contenders=[0, 1, 2],
            metrics=make_metrics(messages=20, rounds=9),
            forced_stop=False,
            max_phases=2,
            final_walk_length=2,
        )

    def test_metric_accessors(self):
        outcome = self.make_outcome([1])
        assert outcome.messages == 20
        assert outcome.rounds == 9
        assert outcome.message_units == 20

    def test_record_round_trip(self):
        record = self.make_outcome([1]).as_record()
        assert record["num_nodes"] == 8
        assert record["success"] is True
        assert record["messages"] == 20

    def test_str_contains_summary(self):
        text = str(self.make_outcome([1, 2]))
        assert "leaders=2" in text
        assert "success=False" in text
