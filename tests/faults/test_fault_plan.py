"""Unit tests for the plain-data fault-plan descriptions."""

import json
import pickle

import pytest

from repro.faults import CrashFaults, DelayFaults, EdgeFaults, FaultPlan, MessageFaults


class TestEmptiness:
    def test_default_plan_is_empty(self):
        assert FaultPlan().is_empty

    def test_each_model_breaks_emptiness(self):
        assert not FaultPlan.dropping(0.1).is_empty
        assert not FaultPlan.duplicating(0.1).is_empty
        assert not FaultPlan.crashing(1).is_empty
        assert not FaultPlan.delaying(2).is_empty
        assert not FaultPlan.removing_edges(0.5).is_empty

    def test_zero_valued_models_stay_empty(self):
        plan = FaultPlan(
            messages=MessageFaults(0.0, 0.0),
            crashes=CrashFaults(count=0),
            delays=DelayFaults(max_delay=0),
            edges=EdgeFaults(removal_probability=0.0),
        )
        assert plan.is_empty


class TestValidation:
    @pytest.mark.parametrize("probability", [-0.1, 1.5])
    def test_probabilities_must_be_in_range(self, probability):
        with pytest.raises(ValueError):
            MessageFaults(drop_probability=probability)
        with pytest.raises(ValueError):
            MessageFaults(duplicate_probability=probability)
        with pytest.raises(ValueError):
            EdgeFaults(removal_probability=probability)

    def test_crash_round_and_phase_are_exclusive(self):
        with pytest.raises(ValueError):
            CrashFaults(count=1, at_round=3, at_phase=1)

    def test_crash_targets_must_match_count(self):
        with pytest.raises(ValueError):
            CrashFaults(count=2, targets=(1,))
        assert CrashFaults(targets=(1, 5)).num_crashes == 2

    def test_crash_targets_must_be_distinct(self):
        with pytest.raises(ValueError):
            CrashFaults(targets=(3, 3))

    def test_delay_bounds_ordering(self):
        with pytest.raises(ValueError):
            DelayFaults(max_delay=1, min_delay=2)
        with pytest.raises(ValueError):
            DelayFaults(max_delay=-1)


class TestFingerprint:
    def test_fingerprint_is_stable_and_json_clean(self):
        plan = FaultPlan.dropping(0.25)
        assert plan.fingerprint() == FaultPlan.dropping(0.25).fingerprint()
        json.dumps(plan.document())  # must be JSON-serialisable as-is

    def test_fingerprint_separates_plans(self):
        fingerprints = {
            FaultPlan().fingerprint(),
            FaultPlan.dropping(0.1).fingerprint(),
            FaultPlan.duplicating(0.1).fingerprint(),
            FaultPlan.crashing(2, at_round=5).fingerprint(),
            FaultPlan.crashing(2, at_phase=1).fingerprint(),
            FaultPlan.delaying(3).fingerprint(),
            FaultPlan.removing_edges(0.1, at_round=4).fingerprint(),
        }
        assert len(fingerprints) == 7

    def test_seed_stream_is_64_bit(self):
        stream = FaultPlan.dropping(0.5).seed_stream()
        assert 0 <= stream < 2**64

    def test_plan_pickles_round_trip(self):
        plan = FaultPlan(
            messages=MessageFaults(0.1, 0.2),
            crashes=CrashFaults(count=3, at_phase=2),
            delays=DelayFaults(max_delay=4, min_delay=1),
            edges=EdgeFaults(removal_probability=0.3, at_round=7),
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.fingerprint() == plan.fingerprint()


class TestDescribe:
    def test_describe_mentions_active_models(self):
        text = FaultPlan(
            messages=MessageFaults(drop_probability=0.1),
            crashes=CrashFaults(count=2, at_round=9),
        ).describe()
        assert "drop=0.1" in text
        assert "crash=2@r9" in text

    def test_describe_empty_plan(self):
        assert FaultPlan().describe() == "faults(none)"


class TestFromDocument:
    def test_round_trip_is_exact(self):
        plan = FaultPlan(
            messages=MessageFaults(drop_probability=0.2, duplicate_probability=0.1),
            crashes=CrashFaults(count=3, at_phase=2),
            delays=DelayFaults(max_delay=4, min_delay=1),
            edges=EdgeFaults(removal_probability=0.3, at_round=7),
        )
        clone = FaultPlan.from_document(plan.document())
        assert clone == plan
        assert clone.fingerprint() == plan.fingerprint()
        assert clone.seed_stream() == plan.seed_stream()

    def test_round_trip_survives_json(self):
        """The wire case: targets become lists in JSON and must come back
        tuples, with the fingerprint (hence every seed stream) unchanged."""
        import json

        plan = FaultPlan.crashing(targets=(2, 5, 7), at_round=4, count=3)
        document = json.loads(json.dumps(plan.document()))
        clone = FaultPlan.from_document(document)
        assert clone == plan
        assert clone.crashes.targets == (2, 5, 7)
        assert clone.fingerprint() == plan.fingerprint()

    def test_empty_plan_round_trips_empty(self):
        clone = FaultPlan.from_document(FaultPlan().document())
        assert clone.is_empty
        assert clone == FaultPlan()
