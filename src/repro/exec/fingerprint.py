"""Stable trial fingerprints for the on-disk result cache.

A fingerprint must be identical across processes, machines and Python
versions for equivalent trials, and must change whenever anything that can
change the outcome changes: graph description, algorithm, algorithm
arguments, election parameters, trial seed, or the code version.  We build a
canonical JSON document (sorted keys, no whitespace) and hash it with
SHA-256; ``hash()`` is unsuitable because Python randomises string hashes per
process.

Inline graphs are fingerprinted structurally (node count plus a digest of the
sorted edge list), so two separately-built but identical graphs share cache
entries while any topology difference invalidates them.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import os
from typing import Dict, Union

from ..graphs.topology import Graph
from .spec import GraphSpec, TrialSpec

__all__ = ["trial_fingerprint", "code_version_tag", "canonical_trial_document"]

#: Bumped whenever the cached result schema changes incompatibly.
#: 2: outcomes carry ``crashed_nodes`` and ``metrics.fault_events``; the trial
#: document gained a ``fault_plan`` entry.
#: 3: outcomes are the unified ``TrialOutcome`` envelope (algorithm, kind,
#: winners, classification, extras) instead of per-algorithm documents.
#: 4: the trial document gained a ``simulator`` entry, so reference and
#: vectorized runs of the same trial never share a cache key.
#: 5: the result cache grew pluggable backends (json tree / sqlite database)
#: whose entries must agree byte-for-byte; entries written by schema-4 code
#: are retired from lookup but remain importable by the sqlite backend's
#: one-way JSON-tree migration (keys are opaque there).
CACHE_SCHEMA_VERSION = 5


@functools.lru_cache(maxsize=1)
def _source_digest() -> str:
    """Digest of the installed ``repro`` sources (cached per process).

    The package version alone cannot invalidate caches -- algorithm changes
    rarely bump it -- so the tag also hashes every ``.py`` file of the
    package.  Any code change therefore retires all previous cache entries
    automatically.
    """
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(name for name in dirnames if name != "__pycache__")
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            digest.update(os.path.relpath(path, root).encode("utf-8"))
            with open(path, "rb") as handle:
                digest.update(handle.read())
    return digest.hexdigest()[:12]


def code_version_tag() -> str:
    """Version tag folded into every fingerprint (version + source digest)."""
    from .. import __version__

    try:
        source = _source_digest()
    except OSError:
        source = "unknown"
    return "repro-%s+src-%s/cache-%d" % (__version__, source, CACHE_SCHEMA_VERSION)


def _canonical_graph(graph: Union[GraphSpec, Graph]) -> Dict[str, object]:
    if isinstance(graph, GraphSpec):
        return {
            "kind": "family",
            "family": graph.family,
            "args": list(graph.args),
            "kwargs": {str(k): v for k, v in graph.kwargs.items()},
            "seed": graph.seed,
        }
    if isinstance(graph, Graph):
        return {
            "kind": "inline",
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "edges_sha256": _inline_edge_digest(graph),
        }
    raise TypeError("expected GraphSpec or Graph, got %r" % type(graph).__name__)


def _inline_edge_digest(graph: Graph) -> str:
    """Digest of the sorted edge list, memoised on the graph instance.

    Sweeps hand one shared ``Graph`` to every trial spec, and the runner
    fingerprints each spec -- without memoisation a campaign of ``k`` trials
    would sort and hash the same ``O(m)`` edge list ``k`` times.  The cache
    key is the graph's mutation counter, so edits invalidate it.
    """
    version = graph._mutations
    cached = getattr(graph, "_edge_digest_cache", None)
    if cached is not None and cached[0] == version:
        return cached[1]
    edges = sorted((min(u, v), max(u, v)) for u, v in graph.edges())
    digest = hashlib.sha256(
        json.dumps(edges, separators=(",", ":")).encode("ascii")
    ).hexdigest()
    graph._edge_digest_cache = (version, digest)
    return digest


def canonical_trial_document(spec: TrialSpec) -> Dict[str, object]:
    """The exact JSON-serialisable document that gets hashed (label excluded).

    An empty fault plan canonicalises to ``None`` -- running under "no
    faults" and under ``FaultPlan()`` is the same trial, so both share one
    cache entry.
    """
    plan = spec.effective_fault_plan
    return {
        "code_version": code_version_tag(),
        "graph": _canonical_graph(spec.graph),
        "algorithm": spec.algorithm,
        "algo_kwargs": {str(k): v for k, v in spec.algo_kwargs.items()},
        "params": dataclasses.asdict(spec.params),
        "seed": spec.seed,
        "fault_plan": None if plan is None else plan.document(),
        "simulator": spec.simulator,
    }


def trial_fingerprint(spec: TrialSpec) -> str:
    """Hex SHA-256 fingerprint of one trial description."""
    document = canonical_trial_document(spec)
    encoded = json.dumps(document, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()
