"""E3 -- comparison against prior-work baselines.

The paper positions its algorithm against (a) the Omega(m)-message bound that
any flooding-style algorithm pays [24], and (b) the sublinear algorithm of
[25] that needs t_mix as an input.  On dense well-connected graphs (cliques)
the random-walk elections use fewer messages than every flooding baseline, and
the paper's algorithm matches the known-t_mix baseline up to the
guess-and-double overhead while not needing the mixing time at all.

Every algorithm run is a ``repro.exec`` trial spec resolved through the
executor's algorithm registry, so the five compared algorithms share one
uniform driver instead of five hand-rolled call sites.
"""

import pytest

from repro.exec import BatchRunner, GraphSpec, TrialSpec, build_graph
from repro.graphs import mixing_time

SEED = 4242
N_CLIQUE = 128

ALGORITHMS = ["this_paper", "known_tmix", "flood_max", "controlled_flooding", "clique_sublinear"]

_RUNNER = BatchRunner(workers=1)
_CACHE = {}


def _clique():
    if "clique" not in _CACHE:
        _CACHE["clique"] = build_graph(GraphSpec("clique", (N_CLIQUE,)))
    return _CACHE["clique"]


def _clique_spec(algorithm):
    registry_name = "election" if algorithm == "this_paper" else algorithm
    algo_kwargs = {}
    if algorithm == "known_tmix":
        algo_kwargs = {"mixing_time": mixing_time(_clique())}
    return TrialSpec(
        graph=_clique(),
        algorithm=registry_name,
        seed=SEED,
        algo_kwargs=algo_kwargs,
        label="e3 %s" % algorithm,
    )


def _clique_outcome(algorithm):
    if algorithm not in _CACHE:
        _CACHE[algorithm] = _RUNNER.run([_clique_spec(algorithm)])[0].outcome
    return _CACHE[algorithm]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_e3_clique_comparison(benchmark, algorithm):
    graph = _clique()

    def run():
        _CACHE.pop(algorithm, None)
        return _clique_outcome(algorithm)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "algorithm": algorithm,
            "n": graph.num_nodes,
            "m": graph.num_edges,
            "messages": outcome.messages,
            "rounds": outcome.rounds,
            "leaders": outcome.num_leaders,
        }
    )
    assert outcome.num_leaders <= 1


def test_e3_who_wins_on_dense_graphs(benchmark):
    """The paper's algorithm beats both flooding baselines on K_n in messages."""

    def collect():
        return tuple(
            _clique_outcome(name)
            for name in ("this_paper", "flood_max", "controlled_flooding", "known_tmix")
        )

    ours, flood, controlled, oracle = benchmark.pedantic(collect, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "ours": ours.messages,
            "flood_max": flood.messages,
            "controlled_flooding": controlled.messages,
            "known_tmix": oracle.messages,
            "m": _clique().num_edges,
        }
    )
    assert ours.messages < flood.messages
    assert ours.messages < controlled.messages
    # Not knowing t_mix costs at most the guess-and-double overhead.
    assert ours.messages <= 12 * max(1, oracle.messages)


def test_e3_expander_exponents(benchmark):
    """On sparse expanders the comparison is by growth rate, not absolute cost."""
    from repro.analysis import fit_power_law

    sizes = [64, 128, 256]

    def _specs(algorithm):
        return [
            TrialSpec(
                graph=GraphSpec("expander", (n,), {"degree": 4}, seed=SEED + n),
                algorithm=algorithm,
                seed=SEED + n,
                label="e3 %s n=%d" % (algorithm, n),
            )
            for n in sizes
        ]

    def collect():
        results = _RUNNER.run(_specs("election") + _specs("flood_max"))
        messages = [result.outcome.messages for result in results]
        ours, flood = messages[: len(sizes)], messages[len(sizes) :]
        return fit_power_law(sizes, ours), fit_power_law(sizes, flood)

    ours_fit, flood_fit = benchmark.pedantic(collect, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "ours_exponent": round(ours_fit.exponent, 3),
            "flood_max_exponent": round(flood_fit.exponent, 3),
        }
    )
    # Flood-max grows at least linearly with n on constant-degree graphs.
    assert flood_fit.exponent >= 0.9
