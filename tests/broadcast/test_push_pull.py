"""Tests for push-pull rumor spreading."""

import math

import pytest

from repro.broadcast import run_push_pull_broadcast
from repro.graphs import complete_graph, cycle_graph, expander_graph


class TestPushPull:
    def test_informs_everyone_on_expander(self):
        outcome = run_push_pull_broadcast(expander_graph(64, seed=1), sources={0}, seed=2)
        assert outcome.all_informed
        assert outcome.informed == 64

    def test_informs_everyone_on_clique(self):
        outcome = run_push_pull_broadcast(complete_graph(48), sources={5}, seed=3)
        assert outcome.all_informed

    def test_requires_a_source(self):
        with pytest.raises(ValueError):
            run_push_pull_broadcast(complete_graph(8), sources=set(), seed=1)

    def test_multiple_sources_allowed(self):
        outcome = run_push_pull_broadcast(cycle_graph(24), sources={0, 12}, seed=4)
        assert outcome.all_informed

    def test_round_count_logarithmic_on_clique(self):
        n = 128
        outcome = run_push_pull_broadcast(complete_graph(n), sources={0}, seed=5)
        assert outcome.rounds <= 12 * math.log2(n)

    def test_message_cost_near_n_log_n_on_clique(self):
        n = 128
        outcome = run_push_pull_broadcast(complete_graph(n), sources={0}, seed=6)
        assert outcome.messages <= 20 * n * math.log2(n)
        assert outcome.messages >= n - 1

    def test_terminates_without_global_knowledge(self):
        outcome = run_push_pull_broadcast(expander_graph(32, seed=7), sources={0}, seed=8)
        assert outcome.metrics.completed

    def test_custom_push_rounds(self):
        short = run_push_pull_broadcast(complete_graph(32), sources={0}, seed=9, push_rounds=1)
        assert short.metrics.completed
        # Even a single push round per informed node still spreads via pulls.
        assert short.informed == 32
