"""The Gilbert random geometric graph family: generator, registry, fingerprints."""

import math

import pytest

from repro.exec import GraphSpec, TrialSpec, trial_fingerprint
from repro.graphs import (
    FAMILIES,
    get_family,
    gilbert_connectivity_radius,
    gilbert_graph,
)


class TestGenerator:
    def test_seeded_builds_are_identical(self):
        a = gilbert_graph(64, 0.3, seed=9)
        b = gilbert_graph(64, 0.3, seed=9)
        assert a == b

    def test_different_seeds_differ(self):
        a = gilbert_graph(64, 0.3, seed=9)
        b = gilbert_graph(64, 0.3, seed=10)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_largest_component_is_extracted(self):
        # A radius far below the connectivity threshold fragments the square;
        # the returned graph must still be one connected component.
        graph = gilbert_graph(80, 0.08, seed=2)
        assert graph.is_connected()
        assert 1 <= graph.num_nodes < 80

    def test_above_threshold_radius_keeps_most_points(self):
        n = 96
        graph = gilbert_graph(n, gilbert_connectivity_radius(n, factor=2.0), seed=4)
        assert graph.is_connected()
        assert graph.num_nodes > n // 2

    def test_huge_radius_gives_the_clique(self):
        graph = gilbert_graph(12, math.sqrt(2.0), seed=1)
        assert graph.num_nodes == 12
        assert graph.num_edges == 12 * 11 // 2

    def test_single_point(self):
        graph = gilbert_graph(1, 0.5, seed=0)
        assert graph.num_nodes == 1
        assert graph.num_edges == 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            gilbert_graph(0, 0.5)
        with pytest.raises(ValueError):
            gilbert_graph(10, 0.0)
        with pytest.raises(ValueError):
            gilbert_connectivity_radius(1)

    def test_bucketed_search_matches_brute_force(self):
        """The cell-grid neighbour search finds exactly the pairs within radius."""
        import random

        radius = 0.27
        graph = gilbert_graph(50, radius, seed=13)
        # Rebuild the point set exactly as the generator does.
        rng = random.Random(13)
        points = [(rng.random(), rng.random()) for _ in range(50)]
        brute = set()
        for u in range(50):
            for v in range(u + 1, 50):
                dx = points[u][0] - points[v][0]
                dy = points[u][1] - points[v][1]
                if dx * dx + dy * dy <= radius * radius:
                    brute.add((u, v))
        # The generator relabels to its largest component, so compare sizes of
        # the component's induced edge set through a fresh full build instead.
        components = _components(50, brute)
        largest = max(components, key=lambda c: (len(c), -min(c)))
        induced = {(u, v) for u, v in brute if u in largest and v in largest}
        assert graph.num_edges == len(induced)
        assert graph.num_nodes == len(largest)


def _components(n, edges):
    adjacency = {v: set() for v in range(n)}
    for u, v in edges:
        adjacency[u].add(v)
        adjacency[v].add(u)
    seen, components = set(), []
    for start in range(n):
        if start in seen:
            continue
        frontier, component = [start], {start}
        seen.add(start)
        while frontier:
            node = frontier.pop()
            for neighbour in adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    component.add(neighbour)
                    frontier.append(neighbour)
        components.append(component)
    return components


class TestGraphSpecHookup:
    def test_family_is_registered_and_seeded(self):
        assert "gilbert" in FAMILIES
        assert get_family("gilbert").supports_seed

    def test_graphspec_builds_the_same_graph(self):
        spec = GraphSpec("gilbert", (48,), {"radius": 0.3}, seed=6)
        assert spec.build() == gilbert_graph(48, 0.3, seed=6)
        assert spec.describe() == "gilbert(48, radius=0.3, seed=6)"

    def test_fingerprints_are_stable_and_sensitive(self):
        base = TrialSpec(graph=GraphSpec("gilbert", (48,), {"radius": 0.3}, seed=6))
        same = TrialSpec(graph=GraphSpec("gilbert", (48,), {"radius": 0.3}, seed=6))
        other_seed = TrialSpec(graph=GraphSpec("gilbert", (48,), {"radius": 0.3}, seed=7))
        other_radius = TrialSpec(graph=GraphSpec("gilbert", (48,), {"radius": 0.31}, seed=6))
        assert trial_fingerprint(base) == trial_fingerprint(same)
        assert trial_fingerprint(base) != trial_fingerprint(other_seed)
        assert trial_fingerprint(base) != trial_fingerprint(other_radius)

    def test_inline_and_family_fingerprints_agree_structurally(self):
        """Two separately built identical Gilbert instances share cache entries."""
        inline_a = TrialSpec(graph=gilbert_graph(32, 0.35, seed=3))
        inline_b = TrialSpec(graph=gilbert_graph(32, 0.35, seed=3))
        assert trial_fingerprint(inline_a) == trial_fingerprint(inline_b)
