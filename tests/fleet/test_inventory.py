"""Tests for the declarative host inventory (``repro.fleet.inventory``)."""

import json
import sys

import pytest

from repro.fleet import (
    INVENTORY_VERSION,
    HostSpec,
    inventory_to_document,
    load_inventory,
    local_inventory,
    parse_inventory,
)


class TestHostSpec:
    def test_default_command_is_the_local_host_process(self):
        argv = HostSpec(name="a").command_argv()
        assert argv == [sys.executable, "-m", "repro.fleet.host", "--serve"]

    def test_python_field_overrides_the_interpreter(self):
        argv = HostSpec(name="a", python="/opt/py/bin/python").command_argv()
        assert argv[0] == "/opt/py/bin/python"

    def test_ssh_template_expands_placeholders(self):
        host = HostSpec(
            name="node42", command="ssh {host} {python} -m repro.fleet.host --serve"
        )
        argv = host.command_argv()
        assert argv[0] == "ssh"
        assert argv[1] == "node42"
        assert argv[2] == sys.executable
        assert argv[-1] == "--serve"

    def test_unknown_placeholder_is_rejected_with_the_known_set(self):
        host = HostSpec(name="a", command="ssh {node} python")
        with pytest.raises(ValueError, match=r"\{python\}.*\{host\}"):
            host.command_argv()

    def test_names_must_be_filesystem_safe(self):
        for bad in ("", "a/b", "a b", "a:b", ".."+ "/x"):
            with pytest.raises(ValueError, match="host name"):
                HostSpec(name=bad)
        # The dotted/dashed forms real hostnames take are fine.
        HostSpec(name="node-3.rack_7")

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            HostSpec(name="a", workers=0)

    def test_env_overlay_and_normalisation(self):
        host = HostSpec(name="a", env={"B": "2", "A": "1"})
        assert host.env == (("A", "1"), ("B", "2"))
        merged = host.environment({"A": "0", "C": "3"})
        assert merged == {"A": "1", "B": "2", "C": "3"}
        with pytest.raises(TypeError, match="str"):
            HostSpec(name="a", env={"A": 1})

    def test_document_round_trip(self):
        host = HostSpec(
            name="n1",
            command="ssh {host} {python} -m repro.fleet.host",
            workers=4,
            env={"X": "1"},
            python="/usr/bin/python3",
        )
        assert HostSpec.from_document(host.to_document()) == host
        # Defaults stay out of the document (the file format stays terse).
        assert HostSpec(name="n2").to_document() == {"name": "n2", "workers": 1}


class TestInventory:
    def test_local_inventory_names_and_workers(self):
        hosts = local_inventory(3, workers=2)
        assert [host.name for host in hosts] == ["host-0", "host-1", "host-2"]
        assert all(host.workers == 2 for host in hosts)
        assert all(host.command is None for host in hosts)
        with pytest.raises(ValueError, match="at least one host"):
            local_inventory(0)

    def test_document_round_trip(self):
        hosts = local_inventory(2)
        document = inventory_to_document(hosts)
        assert document["version"] == INVENTORY_VERSION
        assert parse_inventory(document) == hosts

    def test_version_mismatch_and_empty_inventory_are_rejected(self):
        with pytest.raises(ValueError, match="version"):
            parse_inventory({"version": 99, "hosts": [{"name": "a"}]})
        with pytest.raises(ValueError, match="no host list"):
            parse_inventory({"version": INVENTORY_VERSION, "hosts": []})

    def test_duplicate_names_are_rejected(self):
        document = {
            "version": INVENTORY_VERSION,
            "hosts": [{"name": "a"}, {"name": "b"}, {"name": "a"}],
        }
        with pytest.raises(ValueError, match="duplicated: a"):
            parse_inventory(document)

    def test_load_inventory_reads_json_files(self, tmp_path):
        hosts = (
            HostSpec(name="n1", command="ssh n1 {python} -m repro.fleet.host --serve"),
            HostSpec(name="n2", workers=8),
        )
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps(inventory_to_document(hosts)))
        assert load_inventory(path) == hosts
