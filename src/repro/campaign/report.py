"""Cache-backed campaign reports: aggregate tables without re-running anything.

The "dashboard" of a campaign is computed purely from the result cache: for
every trial of the spec's canonical expansion we look its fingerprint up and
aggregate whatever is there.  Nothing is ever executed, so a report renders
in milliseconds over a cache that took machine-days to fill -- and it renders
*partial* state honestly (per-sweep coverage plus per-config ``done`` counts)
while a sharded campaign is still in flight elsewhere.

Two output formats, both deterministic functions of the cached outcomes:

* ``report.json`` -- the full document (``campaign_report``), sorted keys,
  fixed float precision.  Because trials are keyed by fingerprint, merging
  ``m`` shard caches and reporting yields **byte-identical** JSON to the
  single-machine run of the same campaign;
* ``report.md`` -- human-readable Markdown (``render_markdown``): one table
  per sweep plus a coverage/success summary.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple, Union

from ..analysis.experiments import summarize_config_groups
from ..core.result import KIND_CLASSIFICATIONS
from ..exec.cache import ResultCache, atomic_write_bytes
from ..exec.fingerprint import code_version_tag, trial_fingerprint
from .spec import CampaignSpec

__all__ = ["cached_outcomes", "campaign_report", "render_markdown", "write_report"]

#: Aggregate columns in presentation order (classification tallies follow).
_COLUMNS = (
    "label",
    "trials",
    "done",
    "success_rate",
    "messages",
    "message_units",
    "rounds",
    "overhead",
)


def cached_outcomes(spec: CampaignSpec, cache: ResultCache) -> Dict[str, List[Optional[object]]]:
    """Per-sweep expansion-ordered outcome lists, ``None`` where not cached.

    This materialises every cached :class:`TrialOutcome` -- use it for
    analyses that need full outcomes; :func:`campaign_report` itself streams
    aggregate summaries instead and never holds more than one
    configuration's worth of data.
    """
    outcomes: Dict[str, List[Optional[object]]] = {}
    for sweep in spec.sweeps:
        fingerprints = [trial_fingerprint(trial) for trial in sweep.expand()]
        outcomes[sweep.name] = [
            cached.outcome if cached is not None else None
            for cached in cache.get_many(fingerprints)
        ]
    return outcomes


def _streamed_sweep(sweep, cache: ResultCache):
    """One sweep's aggregate rows and cached count, config by config.

    Each configuration's trials are expanded and folded straight into a
    :class:`~repro.exec.cache.SummaryAggregate` -- on the SQLite backend
    the fold runs inside the database (one ``GROUP BY`` over the summary
    index, no payload deserialisation, no per-trial Python objects); the
    JSON tree folds its summary rows in Python.  Peak memory is one
    aggregate however many trials the sweep holds.
    """
    cached = 0

    def groups():
        nonlocal cached
        for index in range(len(sweep.configs)):
            fingerprints = [
                trial_fingerprint(trial) for trial in sweep.expand_config(index)
            ]
            aggregate = cache.get_summary_aggregate(fingerprints)
            cached += aggregate.done
            yield aggregate

    rows = summarize_config_groups(sweep, groups())
    return rows, cached


def campaign_report(spec: CampaignSpec, cache: ResultCache) -> Dict[str, object]:
    """The full report document, computed from the cache alone.

    Deterministic in ``(spec, cached outcomes)``: no timestamps, no machine
    identity, fixed rounding -- so any two caches holding the same trial
    results (e.g. the union of shard caches versus a single-machine cache,
    or a SQLite store versus a JSON tree) produce identical documents.
    Aggregation streams one configuration at a time over cached outcome
    *summaries*, so reporting over a million-trial cache never loads a
    million outcomes into memory.
    """
    sweeps = []
    total = 0
    total_cached = 0
    for sweep in spec.sweeps:
        rows, done = _streamed_sweep(sweep, cache)
        trials = sweep.num_trials
        total += trials
        total_cached += done
        sweeps.append(
            {
                "name": sweep.name,
                "trials": trials,
                "cached": done,
                "coverage": round(done / trials, 4),
                "rows": rows,
            }
        )
    return {
        "campaign": spec.name,
        "code_version": code_version_tag(),
        "trials": total,
        "cached": total_cached,
        "coverage": round(total_cached / total, 4) if total else 0.0,
        "sweeps": sweeps,
    }


def _format_cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return "%g" % value
    return str(value)


def _tally_columns(rows: List[Dict[str, object]]) -> List[str]:
    """Classification columns in deterministic presentation order.

    Mixed-algorithm sweeps tally different label families per row (elections
    vs broadcast vs spanning trees), so the header is the union of observed
    labels: the known families in their canonical order first, then any
    stragglers sorted -- a pure function of the rows, keeping reports
    byte-identical across shard layouts.
    """
    observed = set()
    for row in rows:
        observed.update(row.get("classifications", {}))
    ordered: List[str] = []
    for family in KIND_CLASSIFICATIONS.values():
        for label in family:
            if label in observed and label not in ordered:
                ordered.append(label)
    ordered += sorted(observed.difference(ordered))
    return ordered


def _sweep_table(rows: List[Dict[str, object]]) -> List[str]:
    """Render one sweep's aggregate rows as a Markdown table."""
    columns = [column for column in _COLUMNS if any(column in row for row in rows)]
    tallies = _tally_columns(rows)
    header = columns + tallies
    lines = [
        "| " + " | ".join(header) + " |",
        "| " + " | ".join("---" for _ in header) + " |",
    ]
    for row in rows:
        cells = [_format_cell(row.get(column)) for column in columns]
        cells += [
            _format_cell(row.get("classifications", {}).get(label)) for label in tallies
        ]
        lines.append("| " + " | ".join(cells) + " |")
    return lines


def render_markdown(report: Dict[str, object]) -> str:
    """Render a ``campaign_report`` document as Markdown."""
    lines = [
        "# Campaign report: %s" % report["campaign"],
        "",
        "- code version: `%s`" % report["code_version"],
        "- trials cached: %d / %d (coverage %.1f%%)"
        % (report["cached"], report["trials"], 100.0 * report["coverage"]),
        "",
    ]
    for sweep in report["sweeps"]:
        lines.append("## %s" % sweep["name"])
        lines.append("")
        lines.append(
            "%d / %d trial(s) cached (coverage %.1f%%)."
            % (sweep["cached"], sweep["trials"], 100.0 * sweep["coverage"])
        )
        lines.append("")
        lines.extend(_sweep_table(sweep["rows"]))
        lines.append("")
    return "\n".join(lines)


def write_report(
    spec: CampaignSpec,
    cache: ResultCache,
    directory: Union[str, os.PathLike],
    report: Optional[Dict[str, object]] = None,
) -> Tuple[str, str]:
    """Write ``report.md`` and ``report.json`` under ``directory``.

    Returns the two paths.  ``report.json`` is serialised with sorted keys
    and a trailing newline, making it byte-comparable across machines (the
    property the sharding acceptance tests assert).  Pass a precomputed
    ``campaign_report`` document as ``report`` to skip re-scanning the cache
    (each report computation is one lookup per trial of the campaign).
    """
    directory = os.fspath(directory)
    if report is None:
        report = campaign_report(spec, cache)
    # Atomic writes (the campaign-wide protocol): a dashboard consumer
    # polling the report while a live campaign regenerates it never reads a
    # truncated file.
    json_path = os.path.join(directory, "report.json")
    document = json.dumps(report, sort_keys=True, indent=2) + "\n"
    atomic_write_bytes(json_path, document.encode("utf-8"))
    markdown_path = os.path.join(directory, "report.md")
    atomic_write_bytes(markdown_path, render_markdown(report).encode("utf-8"))
    return markdown_path, json_path
