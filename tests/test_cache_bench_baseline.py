"""The committed cache perf baseline (BENCH_cache.json) stays well-formed.

CI's perf-trajectory job diffs fresh measurements against this file; these
checks pin its structure and the backend's headline claim -- SQLite merges
and serves report summaries >=10x faster than the JSON tree at 10^5
entries -- so a regenerated baseline cannot silently drop the cells the
claim rests on.  No cache operations run here -- the file is validated as
committed.
"""

import json
import os

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO_ROOT, "BENCH_cache.json")

REQUIRED_CELL_KEYS = {
    "backend",
    "operation",
    "entries",
    "reps",
    "seconds",
    "entries_per_sec",
}

#: The cells the acceptance claim is pinned at.
FULL_ENTRIES = 100_000
CLAIMED_OPERATIONS = ("merge", "report")
CLAIMED_SPEEDUP = 10.0


def _load():
    with open(BASELINE_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _by_key(document):
    return {
        (c["backend"], c["operation"], c["entries"]): c for c in document["cells"]
    }


def test_baseline_structure():
    document = _load()
    assert document["version"] == 1
    assert document["unit"] == "entries_per_sec"
    assert document["cells"], "baseline has no cells"
    for cell in document["cells"]:
        assert REQUIRED_CELL_KEYS <= set(cell), cell
        assert cell["entries_per_sec"] > 0, cell
        assert cell["reps"] >= 1, cell
        assert cell["backend"] in ("json", "sqlite"), cell
        assert cell["operation"] in ("put", "get", "merge", "report"), cell


def test_baseline_covers_both_backends_per_cell():
    by_key = _by_key(_load())
    for backend, operation, entries in by_key:
        other = "sqlite" if backend == "json" else "json"
        assert (other, operation, entries) in by_key, (
            "cell (%s, %d) measured only under %s" % (operation, entries, backend)
        )


def test_baseline_keeps_the_quick_cells_ci_diffs():
    """The full baseline must contain every quick cell, or the CI quick
    diff would have nothing to compare."""
    by_key = _by_key(_load())
    for backend in ("json", "sqlite"):
        for operation in ("put", "get", "merge", "report"):
            quick = [
                key
                for key in by_key
                if key[0] == backend and key[1] == operation and by_key[key]["quick"]
            ]
            assert quick, "no quick cell for (%s, %s)" % (backend, operation)


def test_committed_speedup_claim():
    """The acceptance pin: >=10x SQLite-over-JSON throughput for merge AND
    report at 10^5 entries (and the grid actually contains those cells)."""
    by_key = _by_key(_load())
    for operation in CLAIMED_OPERATIONS:
        sqlite_cell = by_key.get(("sqlite", operation, FULL_ENTRIES))
        json_cell = by_key.get(("json", operation, FULL_ENTRIES))
        assert sqlite_cell is not None and json_cell is not None, (
            "baseline lost its %d-entry %s cells" % (FULL_ENTRIES, operation)
        )
        ratio = sqlite_cell["entries_per_sec"] / json_cell["entries_per_sec"]
        assert ratio >= CLAIMED_SPEEDUP, (
            "committed speedup claim broken at (%s, %d): %.2fx"
            % (operation, FULL_ENTRIES, ratio)
        )
