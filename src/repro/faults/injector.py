"""The runtime half of the fault subsystem: executing a :class:`FaultPlan`.

A :class:`FaultInjector` is created per run from ``(plan, master seed)`` and
attached to one :class:`~repro.sim.network.Network`, which consults it at two
points only:

* at **send** time, :meth:`deliveries` maps one physical send to the list of
  delivery rounds the adversary permits (empty = lost, two entries =
  duplicated, shifted = delayed; messages to nodes that are crashed by their
  delivery round are lost);
* at **activation** time, :meth:`is_crashed` suppresses crashed nodes.

Every random decision is drawn from four independent SplitMix64-derived
streams (message, crash, delay, edge) seeded by ``derive_seed(master_seed,
plan.seed_stream())``.  Because the network flushes sends in deterministic
order and all per-edge/per-node draws happen up front in sorted order at
:meth:`attach` time, a faulty run is bit-for-bit replayable from ``(master
seed, plan)`` alone -- in-process, across processes and under the parallel
:class:`~repro.exec.runner.BatchRunner`.

The injector also keeps per-fault event counters (``dropped``,
``duplicated``, ``delayed`` ...) which the network folds into
:class:`~repro.sim.metrics.RunMetrics` as ``fault_events``.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from ..sim.rng import derive_seed, fresh_master_seed
from .plan import FaultPlan

__all__ = ["FaultInjector", "FAULT_EVENT_KINDS"]

#: Counter keys every injector reports (all start at zero).
FAULT_EVENT_KINDS = (
    "dropped",
    "duplicated",
    "delayed",
    "delay_rounds",
    "edge_dropped",
    "lost_to_crash",
)

# Sub-stream indices under the plan-derived base seed.
_MESSAGE_STREAM = 1
_CRASH_STREAM = 2
_DELAY_STREAM = 3
_EDGE_STREAM = 4


class FaultInjector:
    """Executes one :class:`FaultPlan` against one simulation run.

    Parameters
    ----------
    plan:
        The adversary description.  An empty plan is legal (the injector
        becomes a no-op), but callers normally skip the injector entirely.
    master_seed:
        Seed the fault streams are derived from; ``None`` draws a fresh seed
        from system entropy (non-replayable, like an unseeded network).
    phase_start_of:
        Maps a guess-and-double phase index to its first round; required only
        when the plan crashes at a phase boundary (``CrashFaults.at_phase``).
    """

    def __init__(
        self,
        plan: FaultPlan,
        master_seed: Optional[int] = None,
        phase_start_of: Optional[Callable[[int], int]] = None,
    ) -> None:
        self.plan = plan
        if master_seed is None:
            master_seed = fresh_master_seed()
        self.master_seed = master_seed
        base = derive_seed(master_seed, plan.seed_stream())
        self._message_rng = random.Random(derive_seed(base, _MESSAGE_STREAM))
        self._crash_rng = random.Random(derive_seed(base, _CRASH_STREAM))
        self._delay_rng = random.Random(derive_seed(base, _DELAY_STREAM))
        self._edge_rng = random.Random(derive_seed(base, _EDGE_STREAM))
        self._phase_start_of = phase_start_of
        self._attached = False
        #: node index -> round from which the node is crash-stopped.
        self.crash_rounds: Dict[int, int] = {}
        self._removed_edges: frozenset = frozenset()
        self._edge_removal_round = 0
        self._delays: Dict[Tuple[int, int], int] = {}
        self._uniform_delay = 0
        self.events: Dict[str, int] = {kind: 0 for kind in FAULT_EVENT_KINDS}

    # ------------------------------------------------------------ attachment
    def attach(self, port_graph) -> None:
        """Precompute all structural decisions for ``port_graph``.

        Called once by the network constructor.  Draws, in fixed order and
        from dedicated streams: crash targets and rounds, removed edges, and
        per-directed-edge delays.  A second ``attach`` raises -- an injector
        accumulates per-run state and serves exactly one run.
        """
        if self._attached:
            raise RuntimeError("a FaultInjector serves exactly one run")
        self._attached = True
        n = port_graph.num_nodes
        self._resolve_crashes(n)
        self._resolve_edge_removals(port_graph.graph)
        self._resolve_delays(port_graph.graph)

    def _crash_round_of_plan(self) -> int:
        crashes = self.plan.crashes
        if crashes.at_round is not None:
            return crashes.at_round
        if crashes.at_phase is not None:
            if self._phase_start_of is None:
                raise ValueError(
                    "plan crashes at phase %d but the injector has no "
                    "phase_start_of resolver" % crashes.at_phase
                )
            return self._phase_start_of(crashes.at_phase)
        return 0

    def _resolve_crashes(self, n: int) -> None:
        crashes = self.plan.crashes
        if crashes.is_empty:
            return
        if crashes.targets:
            targets = list(crashes.targets)
            for node in targets:
                if not 0 <= node < n:
                    raise ValueError(
                        "crash target %d outside the %d-node network" % (node, n)
                    )
        else:
            if crashes.count > n:
                raise ValueError(
                    "cannot crash %d of %d nodes" % (crashes.count, n)
                )
            targets = sorted(self._crash_rng.sample(range(n), crashes.count))
        round_number = self._crash_round_of_plan()
        self.crash_rounds = {node: round_number for node in targets}

    def _resolve_edge_removals(self, graph) -> None:
        edges = self.plan.edges
        if edges.is_empty:
            return
        probability = edges.removal_probability
        removed = set()
        for u, v in graph.edges():
            if self._edge_rng.random() < probability:
                removed.add((u, v))
        self._removed_edges = frozenset(removed)
        self._edge_removal_round = edges.at_round

    def _resolve_delays(self, graph) -> None:
        delays = self.plan.delays
        if delays.is_empty:
            return
        if delays.is_uniform:
            self._uniform_delay = delays.max_delay
            return
        table: Dict[Tuple[int, int], int] = {}
        for u, v in graph.edges():
            table[(u, v)] = self._delay_rng.randint(delays.min_delay, delays.max_delay)
            table[(v, u)] = self._delay_rng.randint(delays.min_delay, delays.max_delay)
        self._delays = table

    # --------------------------------------------------------------- queries
    def is_crashed(self, node: int, round_number: int) -> bool:
        """Whether ``node`` is crash-stopped at ``round_number``."""
        crash_round = self.crash_rounds.get(node)
        return crash_round is not None and crash_round <= round_number

    def crashed_as_of(self, round_number: int) -> List[int]:
        """Sorted nodes whose crash fired at or before ``round_number``."""
        return sorted(
            node for node, crashed in self.crash_rounds.items() if crashed <= round_number
        )

    # -------------------------------------------------------------- routing
    def deliveries(
        self, send_round: int, sender: int, receiver: int, delivery_round: int
    ) -> List[int]:
        """Delivery rounds the adversary grants one physical send.

        The untouched channel returns ``[delivery_round]``.  Order of
        decisions: edge removal, drop, duplication, delay, then crash of the
        receiver (checked against each copy's actual delivery round).
        """
        if (
            self._removed_edges
            and send_round >= self._edge_removal_round
            and (min(sender, receiver), max(sender, receiver)) in self._removed_edges
        ):
            self.events["edge_dropped"] += 1
            return []
        messages = self.plan.messages
        if messages.drop_probability > 0.0:
            if self._message_rng.random() < messages.drop_probability:
                self.events["dropped"] += 1
                return []
        copies = 1
        if messages.duplicate_probability > 0.0:
            if self._message_rng.random() < messages.duplicate_probability:
                copies = 2
                self.events["duplicated"] += 1
        delay = self._uniform_delay
        if self._delays:
            delay = self._delays.get((sender, receiver), 0)
        if delay:
            self.events["delayed"] += 1
            self.events["delay_rounds"] += delay
            delivery_round += delay
        granted = []
        for _ in range(copies):
            if self.is_crashed(receiver, delivery_round):
                self.events["lost_to_crash"] += 1
            else:
                granted.append(delivery_round)
        return granted
