"""Pluggable execution backends for the batch runner.

Four implementations of one :class:`ExecutionBackend` protocol decide where
trials run; the :class:`~repro.exec.runner.BatchRunner` stays the single
deterministic orchestrator on top, so every backend replays bit-identically
to serial for a fixed master seed:

========== ===================================================== ==========
name       execution                                             survives
                                                                 worker
                                                                 death
========== ===================================================== ==========
serial     in the submitting process, no pickling                 no
process    ``ProcessPoolExecutor`` (specs travel by pickle)       no
workerpool persistent ``python -m repro.exec.worker --serve``     yes
           subprocesses over length-prefixed JSON stdio,
           respawned on death
command    one worker-protocol command invocation per trial       yes
           chunk (the SSH / job-queue dispatcher shape)
========== ===================================================== ==========

Backends are picked three ways, strongest first: pass an instance
(``BatchRunner(backend=WorkerPoolBackend(workers=8))``; the caller owns its
lifecycle), pass a registry name (``BatchRunner(backend="workerpool")``), or
set the :data:`BACKEND_ENV_VAR` environment override -- which is how the CI
backend matrix runs the whole exec/campaign test tier under every backend
without touching a line of test code.
"""

from __future__ import annotations

import os
from typing import Optional

from ..execute import default_worker_count
from .base import ExecutionBackend, TrialExecutionError
from .command import CommandBackend
from .process import ProcessPoolBackend
from .serial import SerialBackend
from .workerpool import WorkerPoolBackend, worker_command, worker_environment

__all__ = [
    "BACKEND_ENV_VAR",
    "COMMAND_TEMPLATE_ENV_VAR",
    "ExecutionBackend",
    "TrialExecutionError",
    "SerialBackend",
    "ProcessPoolBackend",
    "WorkerPoolBackend",
    "CommandBackend",
    "add_backend_argument",
    "backend_names",
    "make_backend",
    "worker_command",
    "worker_environment",
]

#: Environment override consulted by ``BatchRunner`` when no backend was
#: passed explicitly; one of :func:`backend_names`.
BACKEND_ENV_VAR = "REPRO_EXEC_BACKEND"

#: Command template the ``command`` backend uses when selected through the
#: environment override (default: the local ``python -m repro.exec.worker``).
COMMAND_TEMPLATE_ENV_VAR = "REPRO_EXEC_COMMAND"

_FACTORIES = {
    "serial": lambda workers: SerialBackend(),
    "process": lambda workers: ProcessPoolBackend(workers=workers),
    "workerpool": lambda workers: WorkerPoolBackend(workers=workers),
    "command": lambda workers: CommandBackend(
        template=os.environ.get(COMMAND_TEMPLATE_ENV_VAR) or None, jobs=workers
    ),
}


def backend_names() -> tuple:
    """The registered backend names, sorted.

    >>> backend_names()
    ('command', 'process', 'serial', 'workerpool')
    """
    return tuple(sorted(_FACTORIES))


def make_backend(name: str, workers: Optional[int] = None) -> ExecutionBackend:
    """Instantiate a backend by registry name with a worker budget."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            "unknown execution backend %r; known backends: %s"
            % (name, ", ".join(backend_names()))
        ) from None
    return factory(workers if workers is not None else default_worker_count())


def add_backend_argument(parser) -> None:
    """Attach the standard ``--backend`` option to an argparse parser.

    One definition for every campaign CLI: choices track the registry, and
    the empty-string default means "no explicit choice" (the workers-derived
    default and the ``REPRO_EXEC_BACKEND`` override still apply) -- pass
    ``arguments.backend or None`` through to the runner.
    """
    parser.add_argument(
        "--backend",
        default="",
        choices=("",) + backend_names(),
        help="execution backend (default: serial/process by --workers; "
        "workerpool survives worker deaths, command dispatches through "
        "REPRO_EXEC_COMMAND-style templates)",
    )
