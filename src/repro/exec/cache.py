"""On-disk JSON result cache keyed by trial fingerprint.

Layout: one file per trial under ``root/<aa>/<fingerprint>.json`` (``aa`` is
the first fingerprint byte, keeping directories small for large campaigns).
Writes go through a same-directory temporary file and ``os.replace`` so that
a cache shared by several worker processes or concurrent campaigns never
exposes a half-written entry; unreadable or corrupt entries (for example a
file truncated when a campaign was killed mid-write by the OS) are treated
as misses -- logged on the ``repro.exec.cache`` logger and overwritten by
the next run -- never raised, so an interrupted campaign always resumes.

Each entry stores the human-readable canonical trial document next to the
outcome, so a cache directory doubles as a flat results database for
post-hoc analysis (``ResultCache.entries`` iterates it).

Long robustness campaigns accumulate entries across many fault plans;
:meth:`ResultCache.stats` reports entry count, on-disk bytes and the
hit-rate since the cache was opened, and :meth:`ResultCache.prune` trims the
store to a size/age budget (oldest entries first).
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Union

from ..core.result import TrialOutcome
from .fingerprint import canonical_trial_document
from .serialize import outcome_from_dict, outcome_to_dict
from .spec import TrialSpec

__all__ = ["ResultCache", "CachedTrial", "CacheStats", "atomic_write_bytes"]

logger = logging.getLogger(__name__)


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` so readers never see a partial file.

    The single crash-safety protocol every on-disk artefact of a campaign
    uses (cache entries, cache merges, manifests): write to a same-directory
    ``.tmp-`` file, then ``os.replace`` -- atomic on POSIX and Windows -- and
    unlink the temp file if anything goes wrong in between.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, temp_path = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".json")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of a cache directory plus this process's hit accounting."""

    entries: int
    total_bytes: int
    hits: int
    misses: int

    @property
    def lookups(self) -> int:
        """Total ``get`` calls since the cache was opened."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of ``get`` calls served from disk since the cache opened.

        >>> CacheStats(entries=2, total_bytes=64, hits=3, misses=1).hit_rate
        0.75
        """
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

class CachedTrial:
    """One deserialised cache entry (outcome plus bookkeeping)."""

    def __init__(self, outcome: TrialOutcome, elapsed_seconds: float, created: float) -> None:
        self.outcome = outcome
        self.elapsed_seconds = elapsed_seconds
        self.created = created


class ResultCache:
    """Persistent fingerprint -> outcome store for the batch executor."""

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self._hits = 0
        self._misses = 0

    # ----------------------------------------------------------------- paths
    def path_for(self, fingerprint: str) -> str:
        """Entry file path: ``root/<first byte>/<fingerprint>.json``."""
        return os.path.join(self.root, fingerprint[:2], fingerprint + ".json")

    # ---------------------------------------------------------------- lookup
    def get(self, fingerprint: str) -> Optional[CachedTrial]:
        """Return the cached trial for ``fingerprint`` or ``None`` on a miss."""
        path = self.path_for(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            cached = CachedTrial(
                outcome=outcome_from_dict(payload["outcome"]),
                elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
                created=float(payload.get("created", 0.0)),
            )
        except FileNotFoundError:
            self._misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # Corrupt or incompatible entry (e.g. truncated by a mid-write
            # kill): treat as a miss so an interrupted campaign can resume;
            # the next put() atomically replaces the bad file.
            logger.warning(
                "treating corrupt cache entry %s as a miss (%s: %s); "
                "it will be recomputed and overwritten",
                path,
                type(exc).__name__,
                exc,
            )
            self._misses += 1
            return None
        self._hits += 1
        return cached

    # ----------------------------------------------------------------- store
    def put(
        self,
        fingerprint: str,
        spec: TrialSpec,
        outcome: TrialOutcome,
        elapsed_seconds: float,
    ) -> None:
        """Persist one trial result atomically."""
        payload = {
            "fingerprint": fingerprint,
            "trial": canonical_trial_document(spec),
            "label": spec.label,
            "outcome": outcome_to_dict(outcome),
            "elapsed_seconds": elapsed_seconds,
            "created": time.time(),
        }
        atomic_write_bytes(
            self.path_for(fingerprint),
            json.dumps(payload, sort_keys=True).encode("utf-8"),
        )

    def merge_from(self, other: "ResultCache") -> int:
        """Copy every entry of ``other`` that this cache lacks; return the count.

        This is the multi-machine union: after ``m`` shard runs of the same
        campaign into ``m`` separate caches, merging them all into one
        directory yields the cache a single-machine run would have produced
        (entries are keyed by trial fingerprint, so the same trial always
        lands in the same file with equivalent content).  Entries already
        present locally are kept untouched; files are copied byte-for-byte
        through the same temp-file + ``os.replace`` dance as :meth:`put`.
        """
        merged = 0
        for source in other._entry_paths():
            relative = os.path.relpath(source, other.root)
            target = os.path.join(self.root, relative)
            if os.path.exists(target):
                continue
            with open(source, "rb") as handle:
                data = handle.read()
            atomic_write_bytes(target, data)
            merged += 1
        return merged

    # ------------------------------------------------------------- inventory
    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def _entry_paths(self) -> Iterator[str]:
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json") and not name.startswith(".tmp-"):
                    yield os.path.join(shard_dir, name)

    def entries(self) -> Iterator[Dict[str, object]]:
        """Iterate the raw JSON documents of every cache entry."""
        for path in self._entry_paths():
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    yield json.load(handle)
            except (OSError, ValueError):
                continue

    # ------------------------------------------------------------ maintenance
    def stats(self) -> CacheStats:
        """Entry count, on-disk bytes and hit-rate since this cache opened.

        Hit/miss counters are per :class:`ResultCache` instance (they start
        at zero when the directory is opened); entry count and bytes reflect
        the directory's current contents, whoever wrote them.
        """
        entries = 0
        total_bytes = 0
        for path in self._entry_paths():
            try:
                total_bytes += os.stat(path).st_size
            except OSError:
                continue
            entries += 1
        return CacheStats(
            entries=entries,
            total_bytes=total_bytes,
            hits=self._hits,
            misses=self._misses,
        )

    def prune(
        self,
        max_entries: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        now: Optional[float] = None,
    ) -> int:
        """Delete entries beyond the given budgets; return how many were removed.

        ``max_age_seconds`` removes entries whose ``created`` stamp is older
        than that (relative to ``now``, defaulting to the current time);
        ``max_entries`` then keeps only the newest that many entries.  With
        no arguments the cache is cleared entirely.  Removal uses the same
        atomic filesystem operations as ``put``, so pruning a cache that a
        concurrent campaign is writing to is safe -- at worst a freshly
        written entry survives or a removed one is recomputed.
        """
        if max_entries is not None and max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        stamped = []
        for path in self._entry_paths():
            created = 0.0
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    created = float(json.load(handle).get("created", 0.0))
            except (OSError, ValueError, TypeError):
                created = 0.0  # corrupt entries prune first
            stamped.append((created, path))
        stamped.sort()  # oldest first

        doomed = []
        if max_age_seconds is not None:
            cutoff = (time.time() if now is None else now) - max_age_seconds
            while stamped and stamped[0][0] < cutoff:
                doomed.append(stamped.pop(0)[1])
        if max_entries is not None:
            keep = max_entries
        elif max_age_seconds is not None:
            keep = len(stamped)  # the age budget alone decides
        else:
            keep = 0  # no budgets at all: clear the cache
        if len(stamped) > keep:
            doomed.extend(path for _created, path in stamped[: len(stamped) - keep])

        removed = 0
        for path in doomed:
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                continue
        return removed
