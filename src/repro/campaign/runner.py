"""Execute a campaign: resume from cache, retry failures, record a manifest.

``CampaignRunner`` turns a :class:`~repro.campaign.spec.CampaignSpec` into
trial executions through the :class:`~repro.exec.runner.BatchRunner`, adding
the three campaign-level behaviours the executor itself stays agnostic of:

* **resume** -- every trial already present in the (required) result cache is
  served from disk, so re-running an interrupted campaign only pays for the
  trials that never finished; a completed campaign re-runs with zero
  executions;
* **bounded retry** -- a trial that raises is re-run up to
  ``spec.retry.max_attempts`` times in total (failures are captured, never
  abort the batch), and only then recorded as failed;
* **sharding** -- with ``shard=Shard(k, m)`` only the trials whose
  fingerprint assigns them to shard ``k`` run here; because assignment is by
  fingerprint, ``m`` machines running the ``m`` shards into their own caches
  produce caches whose union is bit-identical to a single-machine run.

Every trial's fate is recorded in a :class:`~repro.campaign.manifest.CampaignManifest`
(written to ``<directory>/manifest.json`` when a directory is given), and the
outcome data itself lives in the cache -- which is what the cache-backed
reporting layer (:mod:`repro.campaign.report`) renders without re-running
anything.
"""

from __future__ import annotations

import logging
import os
import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Union

from ..exec.backends import ExecutionBackend, make_backend
from ..exec.cache import ResultCache
from ..exec.config import ExecutionProfile, _fold_deprecated_backend
from ..exec.fingerprint import trial_fingerprint
from ..exec.report import ProgressReporter, ReporterSink
from ..exec.runner import BatchRunner, TrialResult
from ..exec.shard import Shard
from ..obs.report import campaign_telemetry
from ..obs.tracer import TraceSink, current_tracer, use_tracer
from .manifest import CampaignManifest, TrialEntry
from .spec import CampaignSpec

__all__ = ["CampaignRunner", "CampaignResult", "MANIFEST_NAME"]

logger = logging.getLogger(__name__)

#: File name of the manifest inside a campaign directory.
MANIFEST_NAME = "manifest.json"


@dataclass
class CampaignResult:
    """What one campaign run (one shard of it, possibly) did.

    ``results`` maps sweep name to ``{index in sweep expansion: TrialResult}``
    for every trial assigned to this run's shard; trials of other shards are
    absent here but present in the manifest with status ``other_shard``.
    """

    spec: CampaignSpec
    shard: Optional[Shard]
    manifest: CampaignManifest
    results: Dict[str, Dict[int, TrialResult]] = field(default_factory=dict)

    # ------------------------------------------------------------- accessors
    @property
    def assigned(self) -> int:
        """Trials this run was responsible for (cache hits included)."""
        return sum(len(per_sweep) for per_sweep in self.results.values())

    @property
    def cache_hits(self) -> int:
        """Assigned trials served from the cache without executing."""
        return self._count(lambda r: r.from_cache)

    @property
    def executed(self) -> int:
        """Trials that actually ran (successfully) during this call."""
        return self._count(lambda r: not r.from_cache and not r.failed)

    @property
    def failed(self) -> int:
        """Assigned trials that exhausted every attempt without an outcome."""
        return self._count(lambda r: r.failed)

    def _count(self, predicate) -> int:
        return sum(
            1
            for per_sweep in self.results.values()
            for result in per_sweep.values()
            if predicate(result)
        )

    def outcomes_for(self, sweep_name: str) -> List[Optional[object]]:
        """Flat expansion-ordered outcome list for one sweep.

        Entries are ``None`` for trials that failed or belong to another
        shard, so the list always has the sweep's full ``num_trials`` length
        and lines up with ``SweepSpec.group``.
        """
        sweep = self.spec.sweep(sweep_name)
        per_sweep = self.results.get(sweep_name, {})
        return [
            per_sweep[i].outcome if i in per_sweep and not per_sweep[i].failed else None
            for i in range(sweep.num_trials)
        ]

    def describe(self) -> str:
        """One-line human summary of what this run did."""
        counts = self.manifest.counts()
        where = " %s" % self.shard.describe() if self.shard is not None else ""
        return (
            "campaign %r%s: %d trial(s) -- %d cached, %d executed, %d failed, "
            "%d on other shards"
            % (
                self.spec.name,
                where,
                self.spec.num_trials,
                counts["cached"],
                counts["executed"],
                counts["failed"],
                counts["other_shard"],
            )
        )


class CampaignRunner:
    """Resumable, retrying, shard-aware executor for campaign specs.

    Execution choices (backend, simulator engine, tracing, worker count)
    arrive through one :class:`~repro.exec.config.ExecutionProfile` whose
    precedence rule is explicit > CLI > env > default.  The legacy
    ``backend=`` keyword still works as a ``DeprecationWarning`` shim that
    folds into the profile.  Campaign semantics are backend-independent:
    results, caches, manifests and reports are bit-identical whichever
    backend ran the trials.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        cache: ResultCache,
        workers: Optional[int] = None,
        shard: Optional[Shard] = None,
        directory: Optional[Union[str, os.PathLike]] = None,
        reporter: Optional[ProgressReporter] = None,
        backend: Optional[Union[str, ExecutionBackend]] = None,
        sinks: Sequence[TraceSink] = (),
        profile: Optional[ExecutionProfile] = None,
    ) -> None:
        if not isinstance(cache, ResultCache):
            raise TypeError(
                "a campaign needs a ResultCache (resume and reporting are "
                "cache-backed); got %r" % type(cache).__name__
            )
        if profile is not None and not isinstance(profile, ExecutionProfile):
            raise TypeError(
                "profile must be an ExecutionProfile; got %r" % type(profile).__name__
            )
        self.spec = spec
        self.cache = cache
        self.profile = _fold_deprecated_backend(profile, backend, "CampaignRunner")
        self.workers = (
            workers if workers is not None else self.profile.effective_workers(default=1)
        )
        if self.workers < 1:
            raise ValueError("workers must be >= 1; got %d" % self.workers)
        self.shard = shard
        self.directory = os.fspath(directory) if directory is not None else None
        self.sinks = tuple(sinks)
        for sink in self.sinks:
            if not isinstance(sink, TraceSink):
                raise TypeError(
                    "sinks must be TraceSink instances; got %r" % type(sink).__name__
                )
        self.reporter = reporter
        if reporter is not None:
            warnings.warn(
                "CampaignRunner(reporter=...) is deprecated; pass "
                "sinks=(ProgressSink(...),) or wrap a custom reporter in "
                "ReporterSink (see repro.exec.report)",
                DeprecationWarning,
                stacklevel=2,
            )
            self.sinks += (ReporterSink(reporter),)
        self.backend = self.profile.backend

    @property
    def manifest_path(self) -> Optional[str]:
        """Where the manifest lands (``None`` when no directory was given)."""
        if self.directory is None:
            return None
        return os.path.join(self.directory, MANIFEST_NAME)

    # ------------------------------------------------------------------- run
    def run(self) -> CampaignResult:
        """Execute (or resume) the campaign's shard and write the manifest."""
        if self.profile.effective_trace() and self.directory is not None:
            with campaign_telemetry(self.directory):
                return self._run()
        return self._run()

    def _run(self) -> CampaignResult:
        # Canonical expansion: (sweep name, index within sweep, spec, fp).
        # Trial fingerprints are computed exactly once here -- after the
        # profile's simulator choice is applied, so the fingerprint matches
        # what actually runs -- and reused for the campaign fingerprint,
        # shard assignment, cache lookups (via the batch runner) and the
        # manifest.
        apply_simulator = self.profile.effective_simulator() is not None
        trials = []
        for sweep in self.spec.sweeps:
            for index, spec in enumerate(sweep.expand()):
                if apply_simulator:
                    spec = self.profile.apply_to_spec(spec)
                trials.append((sweep.name, index, spec, trial_fingerprint(spec)))
        campaign_fingerprint = self.spec.fingerprint(
            [fingerprint for _, _, _, fingerprint in trials]
        )
        self._warn_on_foreign_manifest(campaign_fingerprint)

        if self.shard is None:
            assigned = list(range(len(trials)))
        else:
            assigned = [
                i for i, (_, _, _, fp) in enumerate(trials) if self.shard.owns(fp)
            ]
        assigned_set = set(assigned)

        # A backend named by string (or the env override, both resolved by
        # the profile) is instantiated once around the whole attempt loop:
        # retry rounds then reuse one worker pool instead of paying its
        # startup per round.  A backend *instance* stays caller-owned,
        # exactly as in BatchRunner.
        backend = self.profile.effective_backend()
        backend_owned = False
        if isinstance(backend, str):
            backend = make_backend(backend, workers=self.workers)
            backend_owned = True

        # Campaign-level sinks are installed as the current tracer around the
        # attempt loop, so one subscription observes every nested layer: the
        # batch runner's progress events, per-trial spans, simulator rounds
        # and (for the worker-pool backend) worker heartbeats.
        tracer = current_tracer().with_sinks(self.sinks)
        traced = tracer.enabled

        # The nested batch runner inherits the profile with the backend
        # already resolved (so the env override is not consulted twice) and
        # the simulator cleared (already applied to the expanded specs).
        batch = BatchRunner(
            workers=self.workers,
            cache=self.cache,
            on_error="capture",
            profile=replace(self.profile, backend=backend, simulator=None),
        )
        results: Dict[int, TrialResult] = {}
        attempts: Dict[int, int] = {}

        try:
            with use_tracer(tracer), tracer.span(
                "campaign.run",
                campaign=self.spec.name,
                shard=self.shard.describe() if self.shard is not None else None,
                trials=len(trials),
                assigned=len(assigned),
            ):
                pending = assigned
                for attempt in range(1, self.spec.retry.max_attempts + 1):
                    if not pending:
                        break
                    if traced:
                        tracer.event(
                            "campaign.attempt",
                            campaign=self.spec.name,
                            attempt=attempt,
                            max_attempts=self.spec.retry.max_attempts,
                            pending=len(pending),
                        )
                    batch_results = batch.run(
                        [trials[i][2] for i in pending],
                        fingerprints=[trials[i][3] for i in pending],
                    )
                    still_failing: List[int] = []
                    for position, result in zip(pending, batch_results):
                        results[position] = result
                        if not result.from_cache:
                            attempts[position] = attempt
                        if result.failed:
                            still_failing.append(position)
                    if still_failing and attempt < self.spec.retry.max_attempts:
                        logger.warning(
                            "campaign %r: %d trial(s) failed on attempt %d/%d; retrying",
                            self.spec.name,
                            len(still_failing),
                            attempt,
                            self.spec.retry.max_attempts,
                        )
                        if traced:
                            tracer.event(
                                "campaign.retry",
                                campaign=self.spec.name,
                                attempt=attempt,
                                failures=len(still_failing),
                            )
                    pending = still_failing
        finally:
            if backend_owned:
                backend.close()

        manifest = CampaignManifest(
            campaign=self.spec.name,
            fingerprint=campaign_fingerprint,
            shard=self.shard.describe() if self.shard is not None else None,
        )
        per_sweep: Dict[str, Dict[int, TrialResult]] = {}
        for position, (sweep_name, index, spec, fingerprint) in enumerate(trials):
            if position not in assigned_set:
                manifest.record(
                    TrialEntry(
                        sweep=sweep_name,
                        index=index,
                        fingerprint=fingerprint,
                        label=spec.describe(),
                        status="other_shard",
                    )
                )
                continue
            result = results[position]
            per_sweep.setdefault(sweep_name, {})[index] = result
            if result.failed:
                status = "failed"
            elif result.from_cache:
                status = "cached"
            else:
                status = "executed"
            manifest.record(
                TrialEntry(
                    sweep=sweep_name,
                    index=index,
                    fingerprint=fingerprint,
                    label=spec.describe(),
                    status=status,
                    attempts=attempts.get(position, 0),
                    elapsed_seconds=result.elapsed_seconds,
                    error=result.error,
                )
            )

        if traced:
            for sweep_name, per_index in per_sweep.items():
                tally = {"cached": 0, "executed": 0, "failed": 0}
                for result in per_index.values():
                    if result.failed:
                        tally["failed"] += 1
                    elif result.from_cache:
                        tally["cached"] += 1
                    else:
                        tally["executed"] += 1
                tracer.event(
                    "campaign.sweep",
                    campaign=self.spec.name,
                    sweep=sweep_name,
                    assigned=len(per_index),
                    metrics=tally,
                )
        if self.manifest_path is not None:
            manifest.save(self.manifest_path)
            if traced:
                tracer.event(
                    "campaign.manifest_written",
                    campaign=self.spec.name,
                    path=self.manifest_path,
                )
        return CampaignResult(
            spec=self.spec, shard=self.shard, manifest=manifest, results=per_sweep
        )

    # ------------------------------------------------------------- internals
    def _warn_on_foreign_manifest(self, campaign_fingerprint: str) -> None:
        """Flag resuming over a manifest from a different campaign or code."""
        path = self.manifest_path
        if path is None or not os.path.exists(path):
            return
        try:
            previous = CampaignManifest.load(path)
        except (OSError, ValueError, KeyError, TypeError):
            logger.warning("ignoring unreadable campaign manifest at %s", path)
            return
        if previous.fingerprint != campaign_fingerprint:
            logger.warning(
                "manifest at %s records campaign %r with a different fingerprint "
                "(name, retry policy, sweeps or code version changed); it will be "
                "overwritten.  Trials whose own specs and code are unchanged are "
                "still served from the result cache",
                path,
                previous.campaign,
            )
