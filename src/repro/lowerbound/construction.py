"""The Section 4.1 lower-bound graph: a random 4-regular graph of cliques.

Given ``n`` and a target conductance ``alpha`` the paper sets
``epsilon = log(1/alpha) / (2 log n)``, builds a random 4-regular *super-node*
graph ``GS`` on ``N = n^(1-epsilon)`` super-nodes, and replaces every
super-node by a clique of ``n^epsilon`` nodes.  Each super-edge becomes an
*inter-clique* edge between two previously unused nodes of the two cliques,
and two intra-clique edges between the four "external" nodes are removed so
that all degrees stay uniform.  Lemma 16 shows the resulting graph has
conductance ``Theta(alpha)`` and that the optimal cut never passes through a
clique, so the conductance of ``G`` is the conductance of ``GS`` rescaled by
the clique volume.

The construction here follows that recipe literally and exposes the metadata
(clique membership, inter-clique edges, the super-node graph) that the
executable lower-bound experiments need.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..graphs.conductance import sweep_cut_conductance
from ..graphs.generators import random_regular_graph
from ..graphs.topology import Graph

__all__ = [
    "LowerBoundGraph",
    "build_lower_bound_graph",
    "alpha_for_clique_size",
    "epsilon_for_alpha",
    "lemma18_expected_messages",
]


def epsilon_for_alpha(n: int, alpha: float) -> float:
    """The paper's ``epsilon = log(1/alpha) / (2 log n)``."""
    if n < 4:
        raise ValueError("n must be at least 4")
    if not 0 < alpha < 1:
        raise ValueError("alpha must lie in (0, 1)")
    return math.log(1.0 / alpha) / (2.0 * math.log(n))


def alpha_for_clique_size(clique_size: int) -> float:
    """The ``alpha`` value that makes the cliques have ``clique_size`` nodes.

    From ``clique_size = n^epsilon`` and ``alpha = n^(-2 epsilon)`` it follows
    that ``alpha = clique_size^(-2)`` independently of ``n``.
    """
    if clique_size < 2:
        raise ValueError("clique_size must be at least 2")
    return 1.0 / float(clique_size) ** 2


def lemma18_expected_messages(clique_size: int) -> float:
    """Lemma 18: expected messages a clique sends before finding an inter-clique edge.

    A clique has ``clique_size**2`` ports of which only 4 lead outside, so in
    expectation at least ``clique_size**2 / 8`` messages are spent before the
    first inter-clique port is hit.
    """
    return clique_size**2 / 8.0


@dataclass
class LowerBoundGraph:
    """The constructed graph ``G`` plus all the structure the proofs refer to."""

    graph: Graph
    supernode_graph: Graph
    cliques: List[List[int]]
    node_to_clique: List[int]
    inter_clique_edges: List[Tuple[int, int]]
    clique_size: int
    epsilon: float
    alpha: float
    removed_intra_edges: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def num_cliques(self) -> int:
        """Number of cliques ``N = n^(1-epsilon)``."""
        return len(self.cliques)

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    def clique_of(self, node: int) -> int:
        """Index of the clique containing ``node``."""
        return self.node_to_clique[node]

    def clique_volume(self) -> int:
        """Volume (sum of degrees) of a single clique."""
        return sum(self.graph.degree(v) for v in self.cliques[0])

    def predicted_conductance(self) -> float:
        """Lemma 16's prediction: ``phi(G) = 4 phi(GS) / Vol(clique)``.

        ``phi(GS)`` is estimated with a Fiedler sweep cut on the (small)
        super-node graph; random 4-regular graphs have constant conductance,
        so the prediction is ``Theta(1 / clique_size^2) = Theta(alpha)``.
        """
        supernode_phi, _ = sweep_cut_conductance(self.supernode_graph)
        return supernode_phi * 4.0 / self.clique_volume()

    def balanced_supernode_cut_conductance(self) -> float:
        """Conductance of the cut induced by a balanced split of the super-node sweep cut.

        This is a valid cut of ``G`` that does not pass through any clique, so
        it upper-bounds ``phi(G)`` and demonstrates the ``Theta(alpha)`` scale.
        """
        _, side = sweep_cut_conductance(self.supernode_graph)
        nodes = [v for clique_index in side for v in self.cliques[clique_index]]
        from ..graphs.conductance import cut_conductance

        return cut_conductance(self.graph, nodes)


def build_lower_bound_graph(
    n: int,
    alpha: Optional[float] = None,
    clique_size: Optional[int] = None,
    seed: Optional[int] = None,
) -> LowerBoundGraph:
    """Build the Section 4.1 graph for ``n`` nodes and conductance ``Theta(alpha)``.

    Either ``alpha`` or ``clique_size`` must be given (they determine each
    other through ``alpha = clique_size^-2``).  The actual node count is
    ``num_cliques * clique_size`` which is within a clique of ``n``; the exact
    value is available as ``result.num_nodes``.
    """
    if (alpha is None) == (clique_size is None):
        raise ValueError("specify exactly one of alpha or clique_size")
    if clique_size is None:
        epsilon = epsilon_for_alpha(n, alpha)
        clique_size = max(2, round(n**epsilon))
    if clique_size < 5:
        raise ValueError(
            "clique_size must be at least 5 so the two intra-clique edge removals "
            "of the construction are possible (got %d)" % clique_size
        )
    alpha = alpha_for_clique_size(clique_size)
    epsilon = math.log(clique_size) / math.log(n)

    num_cliques = max(5, n // clique_size)
    if num_cliques * 4 % 2 != 0:  # pragma: no cover - always even for degree 4
        num_cliques += 1
    rng = random.Random(seed)
    supernode_graph = random_regular_graph(num_cliques, 4, seed=rng.randrange(2**31))

    total_nodes = num_cliques * clique_size
    graph = Graph(total_nodes)
    cliques: List[List[int]] = []
    node_to_clique: List[int] = [0] * total_nodes
    for clique_index in range(num_cliques):
        members = list(
            range(clique_index * clique_size, (clique_index + 1) * clique_size)
        )
        cliques.append(members)
        for v in members:
            node_to_clique[v] = clique_index
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                graph.add_edge(u, v)

    # Attach inter-clique edges on previously unused ("external") nodes.
    external_nodes: Dict[int, List[int]] = {i: [] for i in range(num_cliques)}
    available: Dict[int, List[int]] = {
        i: list(cliques[i]) for i in range(num_cliques)
    }
    for members in available.values():
        rng.shuffle(members)
    inter_clique_edges: List[Tuple[int, int]] = []
    for a, b in supernode_graph.edges():
        u = available[a].pop()
        v = available[b].pop()
        external_nodes[a].append(u)
        external_nodes[b].append(v)
        graph.add_edge(u, v)
        inter_clique_edges.append((u, v))

    # Remove two intra-clique edges between the four external nodes of each
    # clique to keep node degrees uniform (Figure 2, red dashed edges).
    removed: List[Tuple[int, int]] = []
    for clique_index in range(num_cliques):
        ext = external_nodes[clique_index]
        if len(ext) != 4:  # pragma: no cover - 4-regular super graph guarantees 4
            continue
        first_pair = (ext[0], ext[1])
        second_pair = (ext[2], ext[3])
        for u, v in (first_pair, second_pair):
            if graph.has_edge(u, v):
                graph.remove_edge(u, v)
                removed.append((u, v))

    return LowerBoundGraph(
        graph=graph,
        supernode_graph=supernode_graph,
        cliques=cliques,
        node_to_clique=node_to_clique,
        inter_clique_edges=inter_clique_edges,
        clique_size=clique_size,
        epsilon=epsilon,
        alpha=alpha,
        removed_intra_edges=removed,
    )
