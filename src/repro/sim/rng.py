"""Deterministic per-node randomness.

Every node owns a private source of randomness (the paper's model).  To keep
whole simulations reproducible from a single master seed we derive one child
seed per node with an integer mixing function (a SplitMix64 step), which is
stable across Python processes -- unlike ``hash`` on strings.
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = ["derive_seed", "node_rng", "fresh_master_seed"]

_MASK64 = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    """One SplitMix64 scrambling step (public-domain constants)."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (value ^ (value >> 31)) & _MASK64


def derive_seed(master_seed: int, stream: int) -> int:
    """Derive a child seed for stream ``stream`` from ``master_seed``.

    Distinct ``(master_seed, stream)`` pairs map to (practically) independent
    seeds; the same pair always maps to the same seed.
    """
    return _splitmix64(_splitmix64(master_seed & _MASK64) ^ _splitmix64(stream & _MASK64))


def node_rng(master_seed: Optional[int], node_index: int) -> random.Random:
    """A private ``random.Random`` for node ``node_index``."""
    if master_seed is None:
        return random.Random()
    return random.Random(derive_seed(master_seed, node_index))


def fresh_master_seed() -> int:
    """A fresh 63-bit master seed from the system entropy pool."""
    return random.SystemRandom().getrandbits(63)
