"""The paper's primary contribution: the leader-election algorithm and its runner."""

from .explicit import ExplicitElectionOutcome, run_explicit_leader_election
from .identity import (
    NodeIdentity,
    contender_range_whp,
    decide_contender,
    draw_identifier,
    expected_contenders,
    initialise_node,
)
from .leader_election import LeaderElectionNode, leader_election_factory
from .params import DEFAULT_PARAMETERS, ElectionParameters, paper_parameters
from .result import (
    CLASSIFICATIONS,
    KIND_CLASSIFICATIONS,
    SUCCESS_CLASSIFICATIONS,
    ElectionOutcome,
    TrialOutcome,
    outcome_from_simulation,
)
from .runner import build_election_network, run_leader_election
from .schedule import PhaseSchedule, PhaseWindow, Segment
from .walks import WalkTreeState, binomial, lazy_step_counts, split_over_ports

__all__ = [
    "ElectionParameters",
    "DEFAULT_PARAMETERS",
    "paper_parameters",
    "PhaseSchedule",
    "PhaseWindow",
    "Segment",
    "NodeIdentity",
    "draw_identifier",
    "decide_contender",
    "initialise_node",
    "expected_contenders",
    "contender_range_whp",
    "WalkTreeState",
    "binomial",
    "lazy_step_counts",
    "split_over_ports",
    "LeaderElectionNode",
    "leader_election_factory",
    "ElectionOutcome",
    "TrialOutcome",
    "CLASSIFICATIONS",
    "KIND_CLASSIFICATIONS",
    "SUCCESS_CLASSIFICATIONS",
    "outcome_from_simulation",
    "run_leader_election",
    "build_election_network",
    "ExplicitElectionOutcome",
    "run_explicit_leader_election",
]
