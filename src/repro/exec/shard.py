"""Deterministic sharding of trial batches across independent machines.

A :class:`Shard` names one slice of a campaign: ``Shard(index=k, count=m)``
is "shard ``k`` of ``m``".  Trials are assigned to shards by their stable
cache fingerprint, *not* by their position in the batch, so the partition is

* **stable** -- the same trial lands on the same shard on every machine and
  in every ordering of the sweep;
* **complete and disjoint** -- every trial belongs to exactly one shard, and
  the union of the ``m`` shard runs is exactly the unsharded run;
* **cache-compatible** -- a shard fills the same fingerprint-keyed
  :class:`~repro.exec.cache.ResultCache` entries a single-machine run would,
  so merging the ``m`` shard caches reproduces the single-machine cache
  bit for bit.

Assignment hashes the leading 64 bits of the fingerprint modulo ``count``:

    >>> shard_index_for("ff" * 32, 2)
    1
    >>> shard_index_for("00" * 32, 2)
    0
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Shard", "shard_index_for"]


def shard_index_for(fingerprint: str, count: int) -> int:
    """Which of ``count`` shards the trial with this fingerprint belongs to.

    The fingerprint must be a hex digest of at least 16 characters (the
    executor's SHA-256 fingerprints always are); only the leading 64 bits
    participate, which keeps assignment identical on every platform.
    """
    if count < 1:
        raise ValueError("shard count must be at least 1, got %d" % count)
    if len(fingerprint) < 16:
        raise ValueError("fingerprint too short to shard: %r" % fingerprint)
    return int(fingerprint[:16], 16) % count


@dataclass(frozen=True)
class Shard:
    """One slice of a deterministically partitioned campaign.

    ``index`` is zero-based: the shards of a two-machine campaign are
    ``Shard(0, 2)`` and ``Shard(1, 2)``.

    >>> Shard.parse("0/2")
    Shard(index=0, count=2)
    >>> Shard(index=1, count=3).describe()
    'shard 1/3'
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("shard count must be at least 1, got %d" % self.count)
        if not 0 <= self.index < self.count:
            raise ValueError(
                "shard index must lie in [0, %d), got %d" % (self.count, self.index)
            )

    @staticmethod
    def parse(text: str) -> "Shard":
        """Parse the command-line form ``"k/m"`` (zero-based ``k``)."""
        try:
            index_text, count_text = text.split("/", 1)
            return Shard(index=int(index_text), count=int(count_text))
        except ValueError:
            raise ValueError(
                "expected a shard of the form 'k/m' with 0 <= k < m, got %r" % text
            ) from None

    def owns(self, fingerprint: str) -> bool:
        """Whether the trial with this fingerprint runs on this shard."""
        return shard_index_for(fingerprint, self.count) == self.index

    def describe(self) -> str:
        """Human-readable form, e.g. ``'shard 1/3'``."""
        return "shard %d/%d" % (self.index, self.count)
