"""The JSON wire format trials travel over to out-of-process workers.

The worker-pool and command backends cannot rely on pickle: their workers
are freshly spawned interpreters (possibly on another machine, behind SSH or
a job queue), so everything crossing the boundary is plain, versioned JSON:

* **trial documents** -- :func:`spec_to_dict` / :func:`spec_from_dict`
  round-trip a :class:`~repro.exec.spec.TrialSpec` exactly: graph (family
  spec, or inline edge list), algorithm name, seed, election parameters,
  algorithm kwargs and fault plan.  Because every field the trial's
  randomness derives from survives the round trip bit-for-bit, a trial
  executed behind the wire replays identically to an in-process run;
* **result payloads** -- :func:`payload_to_dict` / :func:`payload_from_dict`
  carry the :class:`~repro.exec.execute.TrialPayload` envelope (outcome via
  the cache's versioned serialisation, or a one-line error, plus timing);
* **frames** -- :func:`read_frame` / :func:`write_frame` implement the
  length-prefixed framing persistent workers speak over stdio (4-byte
  big-endian length, then UTF-8 JSON).

Not everything can cross a wire: :func:`spec_wire_error` names the reason a
spec cannot (an algorithm registered outside the ``repro`` package that a
fresh worker would not know, ``keep_simulation`` transcripts, non-JSON
``algo_kwargs``), and the batch runner falls back to in-process execution
for exactly those specs -- the backend choice never changes *what* a run
returns, only *where* trials execute.

>>> from repro.exec.spec import GraphSpec, TrialSpec
>>> spec = TrialSpec(graph=GraphSpec("clique", (8,)), seed=3)
>>> spec_from_dict(spec_to_dict(spec)) == spec
True
"""

from __future__ import annotations

import builtins
import dataclasses
import json
import struct
from typing import BinaryIO, Dict, Optional, Sequence, Tuple, Union

from ..core.params import ElectionParameters
from ..faults.plan import FaultPlan
from ..graphs.topology import Graph
from .algorithms import get_algorithm
from .execute import TrialPayload
from .serialize import outcome_from_dict, outcome_to_dict
from .spec import GraphSpec, TrialSpec

__all__ = [
    "WIRE_VERSION",
    "spec_to_dict",
    "spec_from_dict",
    "spec_wire_document",
    "spec_wire_error",
    "payload_to_dict",
    "payload_from_dict",
    "read_frame",
    "write_frame",
    "encode_frame",
    "FrameDecoder",
]

#: Version stamp of the worker wire protocol; a worker refuses requests of a
#: different version instead of misparsing them.
#: 2: trial documents carry a ``simulator`` entry (absent means "reference",
#: so version-1 documents still decode to the trial they described).
#: 3: serve-mode run requests may carry a ``progress`` mapping
#: (``{"heartbeat_seconds": h}``); the worker then interleaves
#: ``{"op": "progress"}`` frames (trial_started / heartbeat /
#: trial_finished, each with its pid and the in-flight trial's label)
#: before the final payload frame.  Requests without ``progress`` get
#: exactly the version-2 single-response exchange.
WIRE_VERSION = 3

_LENGTH = struct.Struct(">I")


# ----------------------------------------------------------------- trial docs
def _graph_to_dict(graph: Union[GraphSpec, Graph]) -> Dict[str, object]:
    if isinstance(graph, GraphSpec):
        return {
            "kind": "family",
            "family": graph.family,
            "args": list(graph.args),
            "kwargs": dict(graph.kwargs),
            "seed": graph.seed,
        }
    if isinstance(graph, Graph):
        return {
            "kind": "inline",
            "num_nodes": graph.num_nodes,
            "edges": [[u, v] for u, v in graph.edges()],
        }
    raise TypeError("expected GraphSpec or Graph, got %r" % type(graph).__name__)


def _graph_from_dict(document: Dict[str, object]) -> Union[GraphSpec, Graph]:
    kind = document.get("kind")
    if kind == "family":
        return GraphSpec(
            family=document["family"],
            args=tuple(document["args"]),
            kwargs=dict(document["kwargs"]),
            seed=document["seed"],
        )
    if kind == "inline":
        return Graph.from_edges(document["num_nodes"], [(u, v) for u, v in document["edges"]])
    raise ValueError("unknown graph document kind %r" % kind)


def spec_to_dict(spec: TrialSpec) -> Dict[str, object]:
    """Flatten a trial description into a JSON-serialisable document."""
    plan = spec.effective_fault_plan
    return {
        "graph": _graph_to_dict(spec.graph),
        "algorithm": spec.algorithm,
        "seed": spec.seed,
        "params": dataclasses.asdict(spec.params),
        "algo_kwargs": dict(spec.algo_kwargs),
        "label": spec.label,
        "fault_plan": None if plan is None else plan.document(),
        "simulator": spec.simulator,
    }


def spec_from_dict(document: Dict[str, object]) -> TrialSpec:
    """Rebuild the :class:`TrialSpec` a wire document describes."""
    plan = document.get("fault_plan")
    return TrialSpec(
        graph=_graph_from_dict(document["graph"]),
        algorithm=document["algorithm"],
        seed=document["seed"],
        params=ElectionParameters(**document["params"]),
        algo_kwargs=dict(document["algo_kwargs"]),
        label=document.get("label", ""),
        fault_plan=None if plan is None else FaultPlan.from_document(plan),
        simulator=document.get("simulator", "reference"),
    )


def spec_wire_document(
    spec: TrialSpec, extra_modules: Sequence[str] = ()
) -> Tuple[Optional[Dict[str, object]], Optional[str]]:
    """``(document, None)`` when the spec crosses a JSON wire exactly, else
    ``(None, reason)``.

    Three things pin a trial to the submitting process: an algorithm
    registered from outside the ``repro`` package (a fresh worker interpreter
    would not know it -- unless its module is in ``extra_modules``, the
    backend's preload list), a ``keep_simulation`` request (the raw
    transcript is never serialised), and a spec that does not survive the
    JSON round trip **exactly** -- not merely one that fails to serialise:
    tuple-valued ``algo_kwargs`` would silently come back as lists and could
    change what the worker computes, so the check decodes the encoded
    document and demands equality with the original spec.  Backends dispatch
    the returned document, so the bytes checked are the bytes sent.
    """
    try:
        algorithm = get_algorithm(spec.algorithm)
    except KeyError as exc:
        return None, str(exc)
    module = getattr(algorithm.runner, "__module__", "") or ""
    known = module == "repro" or module.startswith("repro.") or module in extra_modules
    if not known:
        return None, (
            "algorithm %r is registered from module %r, which a fresh worker "
            "process does not import; preload that module or use an "
            "in-process backend" % (spec.algorithm, module)
        )
    if spec.algo_kwargs.get("keep_simulation"):
        return None, (
            "keep_simulation retains the raw simulation transcript, which "
            "never crosses the wire; use an in-process backend"
        )
    try:
        encoded = json.dumps(spec_to_dict(spec))
    except (TypeError, ValueError) as exc:
        return None, "trial spec does not JSON-serialise: %s" % exc
    document = json.loads(encoded)
    try:
        rebuilt = spec_from_dict(document)
    except Exception as exc:  # noqa: BLE001 -- any decode failure pins the spec
        return None, "trial spec does not decode from its wire form: %s" % exc
    # The wire deliberately canonicalises an explicit empty FaultPlan() to
    # None (the two are the same trial and fingerprint identically), so the
    # equality check compares against the same canonical form.
    expected = dataclasses.replace(spec, fault_plan=spec.effective_fault_plan)
    if rebuilt != expected:
        return None, (
            "trial spec does not survive the JSON round trip exactly "
            "(tuple-valued or non-string-keyed algo_kwargs?); executing it "
            "remotely could compute something else than in-process"
        )
    return document, None


def spec_wire_error(spec: TrialSpec, extra_modules: Sequence[str] = ()) -> Optional[str]:
    """Why this spec cannot cross a JSON wire, or ``None`` when it can."""
    return spec_wire_document(spec, extra_modules=extra_modules)[1]


class PreparedDocuments:
    """Wire documents prepared by ``wire_safe``, consumed once at dispatch.

    The runner's partition pass and a backend's dispatch pass each need the
    ``spec_wire_document`` result (encode + decode + compare), but should
    pay for it once; this memo hands the partition pass's document to the
    dispatch pass.  Entries are keyed by ``id`` with the spec kept alive
    alongside, so a recycled id can never alias a different spec, and only
    dispatchable specs are stored (unsafe ones fall back in-process and
    would never be consumed).  The size cap guards callers that probe
    without dispatching -- recomputing a document is cheaper than unbounded
    growth.  ``pop``/assignment are single bytecode-level dict operations,
    so producer (submitting thread) and consumers (serve threads) need no
    further locking.
    """

    def __init__(self, limit: int = 4096) -> None:
        self._limit = limit
        self._entries: Dict[int, tuple] = {}

    def put(self, spec: TrialSpec, document: Dict[str, object]) -> None:
        if len(self._entries) > self._limit:
            self._entries.clear()
        self._entries[id(spec)] = (spec, document)

    def take(self, spec: TrialSpec) -> Optional[Dict[str, object]]:
        entry = self._entries.pop(id(spec), None)
        if entry is not None and entry[0] is spec:
            return entry[1]
        return None

    def clear(self) -> None:
        self._entries.clear()


# -------------------------------------------------------------- result docs
def payload_to_dict(payload: TrialPayload) -> Dict[str, object]:
    """Flatten an executed trial's payload (worker side of the protocol)."""
    return {
        "outcome": None if payload.outcome is None else outcome_to_dict(payload.outcome),
        "error": payload.error,
        "error_type": None if payload.exception is None else type(payload.exception).__name__,
        "elapsed_seconds": payload.elapsed_seconds,
    }


def _rebuild_exception(error: Optional[str], type_name: Optional[str]) -> Optional[BaseException]:
    """Best-effort reconstruction of a worker-side exception.

    Only builtin exception types cross the wire (anything else stays a
    string, surfaced as ``TrialExecutionError``), and the rebuilt instance
    carries the one-line description, not the original arguments -- enough
    for ``on_error="raise"`` callers to catch the type they expect.
    """
    if error is None or not type_name:
        return None
    exc_type = getattr(builtins, type_name, None)
    if not (isinstance(exc_type, type) and issubclass(exc_type, BaseException)):
        return None
    prefix = "%s: " % type_name
    message = error[len(prefix):] if error.startswith(prefix) else error
    try:
        return exc_type(message)
    except Exception:  # noqa: BLE001 -- exotic constructors fall back to None
        return None


def payload_from_dict(document: Dict[str, object]) -> TrialPayload:
    """Rebuild a :class:`TrialPayload` from its wire document."""
    outcome = document.get("outcome")
    error = document.get("error")
    return TrialPayload(
        outcome=None if outcome is None else outcome_from_dict(outcome),
        error=error,
        elapsed_seconds=float(document.get("elapsed_seconds", 0.0)),
        exception=_rebuild_exception(error, document.get("error_type")),
    )


# ------------------------------------------------------------------- framing
#: Upper bound on a single frame's body; a peer announcing more is corrupt
#: (or hostile), and decoding it would buffer unbounded memory.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def encode_frame(document: Dict[str, object]) -> bytes:
    """One frame -- 4-byte big-endian length prefix plus UTF-8 JSON -- as bytes."""
    encoded = json.dumps(document, separators=(",", ":")).encode("utf-8")
    return _LENGTH.pack(len(encoded)) + encoded


def write_frame(stream: BinaryIO, document: Dict[str, object]) -> None:
    """Write one length-prefixed JSON frame and flush it.

    Header and body go out as a single buffer, and the write loops until the
    stream has accepted every byte: sockets (unlike the stdio pipes the
    original workers spoke over) may accept a *partial* write, and a frame
    split across two ``write`` calls from two threads would interleave.
    """
    data = memoryview(encode_frame(document))
    while data:
        written = stream.write(data)
        if written is None:
            # A non-blocking stream that accepted nothing; BinaryIO contracts
            # say "all or none" here, so treat it as a full write of 0 and
            # retry -- callers use blocking streams in practice.
            written = 0
        data = data[written:]
    stream.flush()


class FrameDecoder:
    """Incremental frame decoder for byte streams that fragment arbitrarily.

    ``read_frame`` assumes a blocking file-like stream; TCP/UDS transports
    instead surface whatever chunks the kernel hands them -- a frame may
    arrive one byte at a time, or many frames may arrive fused in one chunk.
    Feed every received chunk in; complete frames come out, partial ones stay
    buffered until their remaining bytes arrive:

    >>> decoder = FrameDecoder()
    >>> data = encode_frame({"op": "ping"})
    >>> [frame for byte in data[:-1] for frame in decoder.feed(bytes([byte]))]
    []
    >>> decoder.feed(data[-1:])
    [{'op': 'ping'}]
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._buffer = bytearray()
        self._max_frame_bytes = max_frame_bytes

    @property
    def pending_bytes(self) -> int:
        """How many buffered bytes await the rest of their frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> "list[Dict[str, object]]":
        """Buffer ``data`` and return every frame it completed, in order."""
        self._buffer.extend(data)
        frames = []
        while len(self._buffer) >= _LENGTH.size:
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length > self._max_frame_bytes:
                raise ValueError(
                    "frame announces %d bytes (limit %d); stream is corrupt"
                    % (length, self._max_frame_bytes)
                )
            end = _LENGTH.size + length
            if len(self._buffer) < end:
                break
            body = bytes(self._buffer[_LENGTH.size:end])
            del self._buffer[:end]
            frames.append(json.loads(body.decode("utf-8")))
        return frames


def _read_exact(stream: BinaryIO, count: int) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if chunks:
                raise EOFError(
                    "stream ended mid-frame (%d of %d bytes)"
                    % (count - remaining, count)
                )
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream: BinaryIO) -> Optional[Dict[str, object]]:
    """Read one frame; ``None`` on clean EOF, ``EOFError`` on truncation."""
    header = _read_exact(stream, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    body = _read_exact(stream, length)
    if body is None:
        raise EOFError("stream ended after frame header")
    return json.loads(body.decode("utf-8"))
