"""Tests for the clique-only sublinear baseline ([25])."""

import math

from repro.baselines import clique_sublinear_trial
from repro.graphs import complete_graph


class TestCliqueSublinear:
    def test_at_most_one_leader(self):
        for seed in range(4):
            outcome = clique_sublinear_trial(complete_graph(64), seed=seed)
            assert outcome.num_winners <= 1

    def test_usually_exactly_one_leader(self):
        successes = sum(
            clique_sublinear_trial(complete_graph(64), seed=seed).success
            for seed in range(5)
        )
        assert successes >= 4

    def test_constant_round_count(self):
        outcome = clique_sublinear_trial(complete_graph(64), seed=1)
        assert outcome.rounds <= 3

    def test_message_cost_is_sublinear_in_edges(self):
        graph = complete_graph(100)
        outcome = clique_sublinear_trial(graph, seed=2)
        assert outcome.messages < graph.num_edges / 4

    def test_message_cost_tracks_sqrt_n_polylog(self):
        n = 100
        outcome = clique_sublinear_trial(complete_graph(n), seed=3)
        reference = math.sqrt(n) * math.log(n) ** 1.5
        # contenders ~ 2 ln n, each sending ~ sqrt(n) ln n probes plus replies.
        assert outcome.messages <= 40 * reference

    def test_contenders_are_few(self):
        outcome = clique_sublinear_trial(complete_graph(128), seed=4)
        assert outcome.num_contenders <= 30
