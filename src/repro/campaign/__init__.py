"""repro.campaign -- sharded, resumable experiment campaigns with reports.

Where :mod:`repro.exec` executes one batch of trials, this subsystem manages
the whole *campaign*: several named sweeps, run across one or many machines,
surviving interruption, retrying transient failures, and aggregating into one
dashboard -- all on top of the executor's determinism and fingerprint-keyed
result cache.

* :class:`CampaignSpec` / :class:`RetryPolicy` -- plain-data description of
  the campaign: named :class:`~repro.exec.spec.SweepSpec` bundles plus how
  often a failing trial may retry;
* :class:`CampaignRunner` -- executes (or resumes) a campaign, optionally one
  :class:`~repro.exec.shard.Shard` of it; trials already in the cache are
  never re-run, failures are retried up to the policy's bound, and every
  trial's fate lands in a :class:`CampaignManifest`;
* :func:`campaign_report` / :func:`write_report` -- the cache-backed
  dashboard: Markdown + JSON aggregate tables computed from the cache alone,
  byte-identical whether the cache was filled by one machine or merged from
  ``m`` shard runs.

Quickstart::

    from repro.campaign import CampaignRunner, CampaignSpec, write_report
    from repro.exec import GraphSpec, ResultCache, Shard, SweepSpec, TrialSpec

    campaign = CampaignSpec(
        name="scaling",
        sweeps=(
            SweepSpec(
                name="expanders",
                configs=tuple(
                    TrialSpec(graph=GraphSpec("expander", (n,), {"degree": 4}))
                    for n in (64, 128, 256)
                ),
                trials=4,
                base_seed=11,
            ),
        ),
    )
    cache = ResultCache(".campaign-cache")
    # machine k of m runs: shard=Shard(k, m); same cache dir or merged later
    result = CampaignRunner(campaign, cache, workers=4).run()
    print(result.describe())
    write_report(campaign, cache, "campaign-out")   # report.md + report.json
"""

from .manifest import TRIAL_STATUSES, CampaignManifest, TrialEntry
from .report import cached_outcomes, campaign_report, render_markdown, write_report
from .runner import MANIFEST_NAME, CampaignResult, CampaignRunner
from .spec import CampaignSpec, RetryPolicy

__all__ = [
    "CampaignSpec",
    "RetryPolicy",
    "CampaignRunner",
    "CampaignResult",
    "CampaignManifest",
    "TrialEntry",
    "TRIAL_STATUSES",
    "MANIFEST_NAME",
    "cached_outcomes",
    "campaign_report",
    "render_markdown",
    "write_report",
]
