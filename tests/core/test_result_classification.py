"""Degraded-outcome classification and fault-aware election runs."""

from repro.core import run_leader_election
from repro.core.result import CLASSIFICATIONS, ElectionOutcome
from repro.faults import FaultPlan
from repro.sim.metrics import RunMetrics


def make_outcome(leaders, crashed=()):
    metrics = RunMetrics(
        rounds=10,
        messages=5,
        message_units=5,
        bits=40,
        messages_by_kind={},
        units_by_kind={},
        max_edge_bits_in_round=0,
        congestion_events=0,
        completed=True,
    )
    return ElectionOutcome(
        num_nodes=8,
        leaders=list(leaders),
        contenders=list(leaders),
        metrics=metrics,
        forced_stop=False,
        max_phases=1,
        final_walk_length=1,
        crashed_nodes=list(crashed),
    )


class TestClassification:
    def test_unique_live_leader_is_elected(self):
        assert make_outcome([3]).classification == "elected"
        assert make_outcome([3], crashed=[5]).classification == "elected"

    def test_unique_crashed_leader(self):
        outcome = make_outcome([3], crashed=[3, 5])
        assert outcome.classification == "leader_crashed"
        assert outcome.success  # one node did elect itself...
        assert outcome.num_crashed == 2

    def test_no_leader(self):
        assert make_outcome([]).classification == "no_leader"

    def test_multiple_leaders(self):
        assert make_outcome([1, 2]).classification == "multiple_leaders"

    def test_every_label_is_registered(self):
        for leaders, crashed in ([[1], []], [[1], [1]], [[], []], [[1, 2], []]):
            assert make_outcome(leaders, crashed).classification in CLASSIFICATIONS

    def test_as_record_carries_fault_fields(self):
        record = make_outcome([3], crashed=[3]).as_record()
        assert record["classification"] == "leader_crashed"
        assert record["num_crashed"] == 1


class TestFaultyElectionRuns:
    def test_crashing_everyone_elects_no_leader(self, small_expander):
        outcome = run_leader_election(
            small_expander,
            seed=31,
            fault_plan=FaultPlan.crashing(64, at_round=0),
        )
        assert outcome.classification == "no_leader"
        assert outcome.num_crashed == 64
        assert outcome.messages == 0

    def test_fault_free_run_classifies_as_elected(self, small_expander_outcome):
        assert small_expander_outcome.classification == "elected"
        assert small_expander_outcome.crashed_nodes == []
