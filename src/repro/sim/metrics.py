"""Per-run metrics collected by the simulator.

The quantities mirror the complexity measures of the paper:

* ``messages`` -- the number of physical sends, regardless of size;
* ``message_units`` -- the number of ``O(log n)``-bit messages those sends
  correspond to (a payload of ``k`` words counts ``k`` units), which is the
  quantity the paper's ``O(sqrt(n) log^{7/2} n t_mix)`` statement refers to;
* ``bits`` -- the total number of payload bits;
* ``rounds`` -- the number of synchronous rounds until the last message/halt;
* ``fault_events`` -- per-fault counters (dropped, duplicated, delayed, ...)
  when the run executed under a :mod:`repro.faults` plan, empty otherwise;
* ``net_events`` -- live-transport counters (barrier rounds, relayed frames,
  wall-clock milliseconds, killed processes) when the run executed over real
  sockets via :mod:`repro.net`, empty for simulated runs.  The model-level
  quantities above stay directly comparable between a simulated and a live
  run of the same seed; the live transport's own costs are recorded here,
  separately, never mixed into them.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["MetricsCollector", "RunMetrics"]


@dataclass
class RunMetrics:
    """Immutable summary of one simulation run."""

    rounds: int
    messages: int
    message_units: int
    bits: int
    messages_by_kind: Dict[str, int]
    units_by_kind: Dict[str, int]
    max_edge_bits_in_round: int
    congestion_events: int
    completed: bool
    fault_events: Dict[str, int] = field(default_factory=dict)
    net_events: Dict[str, int] = field(default_factory=dict)

    def messages_per_node(self, num_nodes: int) -> float:
        """Average number of physical messages per node."""
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        return self.messages / num_nodes

    def summary(self) -> str:
        """Human-readable one-line summary (faults and congestion when present)."""
        line = (
            f"rounds={self.rounds} messages={self.messages} "
            f"units={self.message_units} bits={self.bits} completed={self.completed}"
        )
        if self.congestion_events:
            line += f" congestion_events={self.congestion_events}"
        if self.fault_events:
            faults = ",".join(
                f"{kind}={count}" for kind, count in sorted(self.fault_events.items())
            )
            line += f" faults[{faults}]"
        if self.net_events:
            live = ",".join(
                f"{kind}={count}" for kind, count in sorted(self.net_events.items())
            )
            line += f" net[{live}]"
        return line


class MetricsCollector:
    """Mutable accumulator the simulator feeds during a run."""

    def __init__(self, word_bits: int) -> None:
        if word_bits < 1:
            raise ValueError("word_bits must be positive")
        self.word_bits = word_bits
        self.messages = 0
        self.message_units = 0
        self.bits = 0
        self.messages_by_kind: Dict[str, int] = defaultdict(int)
        self.units_by_kind: Dict[str, int] = defaultdict(int)
        self.max_edge_bits_in_round = 0
        self.congestion_events = 0

    def record_send(self, kind: str, size_bits: int) -> None:
        """Account for one physical message of ``size_bits`` bits."""
        units = max(1, -(-size_bits // self.word_bits))
        self.messages += 1
        self.message_units += units
        self.bits += size_bits
        self.messages_by_kind[kind] += 1
        self.units_by_kind[kind] += units

    def record_edge_load(self, edge_bits: int, capacity_bits: int) -> None:
        """Track the heaviest per-edge per-round load and capacity violations."""
        if edge_bits > self.max_edge_bits_in_round:
            self.max_edge_bits_in_round = edge_bits
        if edge_bits > capacity_bits:
            self.congestion_events += 1

    def finalize(
        self,
        rounds: int,
        completed: bool,
        fault_events: Optional[Dict[str, int]] = None,
        net_events: Optional[Dict[str, int]] = None,
    ) -> RunMetrics:
        """Freeze into a :class:`RunMetrics`."""
        return RunMetrics(
            rounds=rounds,
            messages=self.messages,
            message_units=self.message_units,
            bits=self.bits,
            messages_by_kind=dict(self.messages_by_kind),
            units_by_kind=dict(self.units_by_kind),
            max_edge_bits_in_round=self.max_edge_bits_in_round,
            congestion_events=self.congestion_events,
            completed=completed,
            fault_events=dict(fault_events) if fault_events else {},
            net_events=dict(net_events) if net_events else {},
        )
