"""Live-deployable algorithm profiles: election-as-a-service adapters.

The coordinator does not run protocol code; node processes do.  A
:class:`NetProfile` therefore splits each registered algorithm into its two
halves:

* the **coordinator half** (:meth:`~NetProfile.resolve`) runs once, with the
  graph in hand, and produces a JSON-pure *node config* -- everything a node
  process needs to build its protocol instance without ever seeing the
  topology (election parameters, the resolved ``known_n``, the oracle
  mixing time of the ``known_tmix`` baseline, the round cap);
* the **node half** (:func:`build_protocol`) turns that config plus the
  node's :class:`~repro.sim.node.NodeContext` into the exact protocol
  instance the simulator would have constructed.

Profiles pin the algorithm's historical seed streams (port numbering and
per-node randomness), the schedule used to resolve phase-anchored crash
plans, and the outcome aggregation -- so a live run and a simulated run of
the same :class:`~repro.exec.spec.TrialSpec` are the *same experiment*, only
the message transport differs.  That is the cross-validation contract the
``tests/net`` property suite enforces.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional

from ..baselines.known_tmix import known_tmix_factory
from ..core.leader_election import LeaderElectionNode
from ..core.params import ElectionParameters
from ..core.result import TrialOutcome, outcome_from_simulation
from ..core.schedule import PhaseSchedule
from ..exec.spec import TrialSpec
from ..graphs.mixing import cached_mixing_time
from ..graphs.topology import Graph
from ..sim.network import SimulationResult
from ..sim.node import NodeContext, Protocol

__all__ = [
    "NetProfile",
    "LIVE_ALGORITHMS",
    "get_profile",
    "build_protocol",
]


@dataclasses.dataclass(frozen=True)
class NetProfile:
    """One algorithm's live-deployment contract (see module docstring)."""

    name: str
    #: Historical seed stream ids -- the same streams the simulator draws its
    #: port numbering and per-node randomness from, which is what makes a
    #: live run bit-comparable to a simulated one.
    port_stream: int
    network_stream: int
    resolve: Callable[[TrialSpec, Graph], Dict[str, object]]
    phase_start_of: Callable[[Dict[str, object]], Callable[[int], int]]
    finish: Callable[[Dict[str, object], SimulationResult], TrialOutcome]


def _reject_unknown_kwargs(spec: TrialSpec, allowed: frozenset) -> Dict[str, object]:
    kwargs = dict(spec.algo_kwargs)
    unknown = sorted(set(kwargs) - allowed)
    if unknown:
        raise ValueError(
            "algo_kwargs %s are not supported by the live %r deployment "
            "(supported: %s)" % (unknown, spec.algorithm, ", ".join(sorted(allowed)))
        )
    return kwargs


def _params_of(config: Dict[str, object]) -> ElectionParameters:
    return ElectionParameters(**config["params"])


# ------------------------------------------------------------------ election
_ELECTION_KWARGS = frozenset({"known_n", "assumed_n", "max_rounds"})


def _resolve_election(spec: TrialSpec, graph: Graph) -> Dict[str, object]:
    kwargs = _reject_unknown_kwargs(spec, _ELECTION_KWARGS)
    known_n = kwargs.get("known_n", -1)
    resolved: Optional[int] = graph.num_nodes if known_n == -1 else known_n
    assumed_n = kwargs.get("assumed_n")
    if resolved is None and assumed_n is None:
        raise ValueError(
            "the live election needs known_n or assumed_n; both are absent"
        )
    return {
        "algorithm": "election",
        "params": dataclasses.asdict(spec.params),
        "known_n": resolved,
        "assumed_n": assumed_n,
        "max_rounds": kwargs.get("max_rounds", 10_000_000),
    }


def _election_phase_start(config: Dict[str, object]) -> Callable[[int], int]:
    schedule = PhaseSchedule(_params_of(config))
    return lambda index: schedule.window(index).start


def _finish_election(
    config: Dict[str, object], result: SimulationResult
) -> TrialOutcome:
    return TrialOutcome.from_election("election", outcome_from_simulation(result))


# ---------------------------------------------------------------- known_tmix
_KNOWN_TMIX_KWARGS = frozenset({"mixing_time", "safety_factor", "max_rounds"})


def _resolve_known_tmix(spec: TrialSpec, graph: Graph) -> Dict[str, object]:
    kwargs = _reject_unknown_kwargs(spec, _KNOWN_TMIX_KWARGS)
    mixing_time = kwargs.get("mixing_time")
    if mixing_time is None:
        # Resolved coordinator-side: node processes never see the topology,
        # so the oracle value ships in the config like any other parameter.
        mixing_time = cached_mixing_time(graph)
    return {
        "algorithm": "known_tmix",
        "params": dataclasses.asdict(spec.params),
        "known_n": graph.num_nodes,
        "mixing_time": mixing_time,
        "safety_factor": kwargs.get("safety_factor", 1.0),
        "max_rounds": kwargs.get("max_rounds", 1_000_000),
    }


def _known_tmix_phase_start(config: Dict[str, object]) -> Callable[[int], int]:
    # Phase-anchored crash plans resolve against the schedule of the *pinned*
    # parameters -- the walk length every node actually runs with (the same
    # convention as simulate_known_tmix).
    walk_length = max(1, round(config["safety_factor"] * config["mixing_time"]))
    pinned = _params_of(config).with_overrides(initial_walk_length=walk_length)
    schedule = PhaseSchedule(pinned)
    return lambda index: schedule.window(index).start


def _finish_known_tmix(
    config: Dict[str, object], result: SimulationResult
) -> TrialOutcome:
    trial = TrialOutcome.from_election("known_tmix", outcome_from_simulation(result))
    trial.extras["mixing_time"] = config["mixing_time"]
    return trial


# ------------------------------------------------------------------ registry
_PROFILES: Dict[str, NetProfile] = {
    "election": NetProfile(
        name="election",
        port_stream=0xB0B,
        network_stream=0xA11CE,
        resolve=_resolve_election,
        phase_start_of=_election_phase_start,
        finish=_finish_election,
    ),
    "known_tmix": NetProfile(
        name="known_tmix",
        port_stream=0x41,
        network_stream=0x42,
        resolve=_resolve_known_tmix,
        phase_start_of=_known_tmix_phase_start,
        finish=_finish_known_tmix,
    ),
}

#: Algorithms deployable as live node processes, in registry order.
LIVE_ALGORITHMS = tuple(sorted(_PROFILES))


def get_profile(algorithm: str) -> NetProfile:
    """Look up the live-deployment profile of ``algorithm``."""
    try:
        return _PROFILES[algorithm]
    except KeyError:
        raise KeyError(
            "algorithm %r has no live-deployment profile; deployable: %s"
            % (algorithm, ", ".join(LIVE_ALGORITHMS))
        ) from None


def build_protocol(config: Dict[str, object], ctx: NodeContext) -> Protocol:
    """Node half: instantiate the protocol a node config describes.

    This is the only place a node process interprets its config, and it must
    construct *exactly* the instance the simulator's protocol factory would:
    the constructor may draw from ``ctx.rng`` (the election draws its
    identifier there), so even construction order is part of the replay
    contract.
    """
    algorithm = config["algorithm"]
    params = _params_of(config)
    if algorithm == "election":
        return LeaderElectionNode(ctx, params=params, assumed_n=config["assumed_n"])
    if algorithm == "known_tmix":
        factory = known_tmix_factory(
            config["mixing_time"],
            params=params,
            safety_factor=config["safety_factor"],
        )
        return factory(ctx)
    raise ValueError(
        "node config names unknown algorithm %r; deployable: %s"
        % (algorithm, ", ".join(LIVE_ALGORITHMS))
    )
