"""Unit tests for the fault injector's routing decisions and determinism."""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.faults.plan import DelayFaults
from repro.graphs import PortNumberedGraph, complete_graph, cycle_graph


def attached(plan, seed=7, graph=None, phase_start_of=None):
    injector = FaultInjector(plan, master_seed=seed, phase_start_of=phase_start_of)
    injector.attach(PortNumberedGraph(graph or complete_graph(8), seed=1))
    return injector


class TestMessageFaults:
    def test_drop_probability_one_loses_everything(self):
        injector = attached(FaultPlan.dropping(1.0))
        for _ in range(20):
            assert injector.deliveries(0, 0, 1, 1) == []
        assert injector.events["dropped"] == 20

    def test_drop_probability_zero_is_transparent(self):
        injector = attached(FaultPlan.duplicating(0.0))
        assert injector.deliveries(0, 0, 1, 1) == [1]
        assert all(count == 0 for count in injector.events.values())

    def test_duplicate_probability_one_doubles_everything(self):
        injector = attached(FaultPlan.duplicating(1.0))
        assert injector.deliveries(0, 0, 1, 1) == [1, 1]
        assert injector.events["duplicated"] == 1

    def test_intermediate_drop_rate_loses_some(self):
        injector = attached(FaultPlan.dropping(0.5))
        results = [injector.deliveries(0, 0, 1, 1) for _ in range(200)]
        delivered = sum(1 for r in results if r)
        assert 0 < delivered < 200
        assert injector.events["dropped"] == 200 - delivered


class TestCrashFaults:
    def test_explicit_targets_and_round(self):
        injector = attached(FaultPlan.crashing(targets=(2, 5), at_round=10))
        assert injector.crash_rounds == {2: 10, 5: 10}
        assert not injector.is_crashed(2, 9)
        assert injector.is_crashed(2, 10)
        assert injector.crashed_as_of(9) == []
        assert injector.crashed_as_of(10) == [2, 5]

    def test_random_targets_are_distinct_and_in_range(self):
        injector = attached(FaultPlan.crashing(3, at_round=1))
        assert len(injector.crash_rounds) == 3
        assert all(0 <= node < 8 for node in injector.crash_rounds)

    def test_phase_boundary_resolution(self):
        injector = attached(
            FaultPlan.crashing(1, at_phase=2),
            phase_start_of=lambda index: 100 * index,
        )
        assert set(injector.crash_rounds.values()) == {200}

    def test_phase_boundary_without_resolver_raises(self):
        injector = FaultInjector(FaultPlan.crashing(1, at_phase=1), master_seed=1)
        with pytest.raises(ValueError):
            injector.attach(PortNumberedGraph(complete_graph(4), seed=1))

    def test_more_crashes_than_nodes_raises(self):
        injector = FaultInjector(FaultPlan.crashing(99), master_seed=1)
        with pytest.raises(ValueError):
            injector.attach(PortNumberedGraph(complete_graph(4), seed=1))

    def test_target_outside_network_raises(self):
        injector = FaultInjector(FaultPlan.crashing(targets=(9,)), master_seed=1)
        with pytest.raises(ValueError):
            injector.attach(PortNumberedGraph(complete_graph(4), seed=1))

    def test_deliveries_to_crashed_receiver_are_lost(self):
        injector = attached(FaultPlan.crashing(targets=(1,), at_round=5))
        assert injector.deliveries(3, 0, 1, 4) == [4]
        assert injector.deliveries(4, 0, 1, 5) == []
        assert injector.events["lost_to_crash"] == 1


class TestDelayFaults:
    def test_uniform_delay_shifts_every_delivery(self):
        injector = attached(FaultPlan(delays=DelayFaults(max_delay=3, min_delay=3)))
        assert injector.deliveries(0, 0, 1, 1) == [4]
        assert injector.events["delayed"] == 1
        assert injector.events["delay_rounds"] == 3

    def test_random_delays_stay_in_bounds(self):
        injector = attached(FaultPlan.delaying(4))
        for sender in range(8):
            for receiver in range(8):
                if sender == receiver:
                    continue
                (arrival,) = injector.deliveries(0, sender, receiver, 1)
                assert 1 <= arrival <= 5

    def test_delays_are_fixed_per_edge(self):
        injector = attached(FaultPlan.delaying(4))
        first = injector.deliveries(0, 0, 1, 1)
        assert injector.deliveries(5, 0, 1, 6) == [value + 5 for value in first]


class TestEdgeFaults:
    def test_removal_probability_one_cuts_all_edges(self):
        injector = attached(FaultPlan.removing_edges(1.0), graph=cycle_graph(6))
        assert injector.deliveries(0, 0, 1, 1) == []
        assert injector.events["edge_dropped"] == 1

    def test_removal_waits_for_its_round(self):
        injector = attached(
            FaultPlan.removing_edges(1.0, at_round=10), graph=cycle_graph(6)
        )
        assert injector.deliveries(9, 0, 1, 10) == [10]
        assert injector.deliveries(10, 0, 1, 11) == []

    def test_removal_is_symmetric(self):
        injector = attached(FaultPlan.removing_edges(1.0), graph=cycle_graph(6))
        assert injector.deliveries(0, 1, 0, 1) == []


class TestDeterminism:
    def test_same_seed_and_plan_replay_identically(self):
        def run(seed):
            injector = attached(FaultPlan.dropping(0.5), seed=seed)
            return [injector.deliveries(r, 0, 1, r + 1) for r in range(50)]

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_different_plans_draw_different_streams(self):
        light = attached(FaultPlan.dropping(0.5))
        heavy = attached(
            FaultPlan(messages=light.plan.messages, delays=DelayFaults(max_delay=0))
        )
        # Same message model, same master seed -- but the documents differ
        # only if the plans differ; identical plans share the stream.
        assert light.plan.fingerprint() == heavy.plan.fingerprint()
        crashy = attached(FaultPlan.crashing(targets=(0,), at_round=999))
        assert crashy.plan.fingerprint() != light.plan.fingerprint()

    def test_injector_serves_exactly_one_run(self):
        injector = attached(FaultPlan.dropping(0.5))
        with pytest.raises(RuntimeError):
            injector.attach(PortNumberedGraph(complete_graph(4), seed=1))
