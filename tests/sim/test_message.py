"""Unit tests for messages and CONGEST size accounting."""

import pytest

from repro.sim import Message, counter_bits, id_bits, id_set_bits, word_bits_for


class TestWordSizes:
    def test_word_bits_grow_with_n(self):
        assert word_bits_for(2**10) == 40
        assert word_bits_for(2**20) == 80

    def test_word_bits_floor(self):
        assert word_bits_for(1) == 8
        assert word_bits_for(2) >= 8

    def test_id_bits_matches_word(self):
        assert id_bits(1024) == word_bits_for(1024)

    def test_counter_bits(self):
        assert counter_bits(0) == 1
        assert counter_bits(1) == 1
        assert counter_bits(255) == 8
        assert counter_bits(256) == 9

    def test_counter_bits_rejects_negative(self):
        with pytest.raises(ValueError):
            counter_bits(-1)

    def test_id_set_bits_scales_linearly(self):
        assert id_set_bits(10, 1024) == 10 * id_bits(1024)
        assert id_set_bits(0, 1024) == id_bits(1024)


class TestMessage:
    def test_default_payload_is_empty(self):
        message = Message(kind="ping")
        assert message.payload == {}
        assert message.size_bits == 1

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            Message(kind="ping", size_bits=0)

    def test_word_units_rounds_up(self):
        message = Message(kind="data", size_bits=65)
        assert message.word_units(32) == 3

    def test_word_units_minimum_one(self):
        message = Message(kind="tiny", size_bits=1)
        assert message.word_units(64) == 1

    def test_word_units_rejects_bad_word(self):
        message = Message(kind="data", size_bits=8)
        with pytest.raises(ValueError):
            message.word_units(0)

    def test_messages_are_frozen(self):
        message = Message(kind="ping")
        with pytest.raises(Exception):
            message.kind = "pong"
