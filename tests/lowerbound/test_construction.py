"""Tests for the Section 4.1 lower-bound graph construction."""

import math

import pytest

from repro.graphs import cheeger_bounds
from repro.lowerbound import (
    alpha_for_clique_size,
    build_lower_bound_graph,
    epsilon_for_alpha,
    lemma18_expected_messages,
)


@pytest.fixture(scope="module")
def lb_graph():
    return build_lower_bound_graph(240, clique_size=8, seed=7)


class TestParameters:
    def test_epsilon_formula(self):
        n, alpha = 1024, 1 / 64
        assert epsilon_for_alpha(n, alpha) == pytest.approx(math.log(64) / (2 * math.log(1024)))

    def test_epsilon_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            epsilon_for_alpha(100, 2.0)

    def test_alpha_for_clique_size(self):
        assert alpha_for_clique_size(10) == pytest.approx(0.01)

    def test_alpha_rejects_tiny_cliques(self):
        with pytest.raises(ValueError):
            alpha_for_clique_size(1)

    def test_lemma18_bound(self):
        assert lemma18_expected_messages(10) == pytest.approx(12.5)


class TestConstruction:
    def test_requires_exactly_one_sizing_argument(self):
        with pytest.raises(ValueError):
            build_lower_bound_graph(100)
        with pytest.raises(ValueError):
            build_lower_bound_graph(100, alpha=0.01, clique_size=10)

    def test_clique_size_minimum(self):
        with pytest.raises(ValueError):
            build_lower_bound_graph(100, clique_size=3)

    def test_structure_counts(self, lb_graph):
        assert lb_graph.num_cliques == 30
        assert lb_graph.clique_size == 8
        assert lb_graph.num_nodes == 240
        assert len(lb_graph.inter_clique_edges) == lb_graph.supernode_graph.num_edges
        # 4-regular super-node graph -> 2 * num_cliques super edges.
        assert len(lb_graph.inter_clique_edges) == 2 * lb_graph.num_cliques

    def test_graph_is_connected(self, lb_graph):
        assert lb_graph.graph.is_connected()

    def test_uniform_degrees(self, lb_graph):
        degrees = set(lb_graph.graph.degrees())
        # All nodes end up with degree clique_size - 1 after the two removals.
        assert degrees == {lb_graph.clique_size - 1}

    def test_node_to_clique_mapping(self, lb_graph):
        for clique_index, members in enumerate(lb_graph.cliques):
            for node in members:
                assert lb_graph.clique_of(node) == clique_index

    def test_two_intra_edges_removed_per_clique(self, lb_graph):
        assert len(lb_graph.removed_intra_edges) == 2 * lb_graph.num_cliques

    def test_inter_clique_edges_connect_distinct_cliques(self, lb_graph):
        for u, v in lb_graph.inter_clique_edges:
            assert lb_graph.clique_of(u) != lb_graph.clique_of(v)

    def test_alpha_follows_clique_size(self, lb_graph):
        assert lb_graph.alpha == pytest.approx(1 / 64)

    def test_construction_is_seeded(self):
        a = build_lower_bound_graph(160, clique_size=8, seed=3)
        b = build_lower_bound_graph(160, clique_size=8, seed=3)
        assert a.graph == b.graph
        assert a.inter_clique_edges == b.inter_clique_edges


class TestConductanceScale:
    def test_predicted_conductance_matches_alpha_scale(self, lb_graph):
        predicted = lb_graph.predicted_conductance()
        assert predicted == pytest.approx(lb_graph.alpha, rel=2.0)

    def test_balanced_cut_is_theta_alpha(self, lb_graph):
        measured = lb_graph.balanced_supernode_cut_conductance()
        assert lb_graph.alpha / 8 <= measured <= lb_graph.alpha * 8

    def test_cheeger_bounds_consistent_with_alpha(self, lb_graph):
        lower, upper = cheeger_bounds(lb_graph.graph)
        assert lower <= lb_graph.alpha * 8
        assert upper >= lb_graph.alpha / 8

    def test_smaller_alpha_means_smaller_conductance(self):
        coarse = build_lower_bound_graph(150, clique_size=5, seed=1)
        fine = build_lower_bound_graph(600, clique_size=20, seed=1)
        fine_phi = fine.balanced_supernode_cut_conductance()
        assert fine_phi < coarse.balanced_supernode_cut_conductance()
