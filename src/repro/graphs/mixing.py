"""Lazy random walks and mixing times, following Section 2 of the paper.

The paper defines the walk as the *lazy* walk: stay put with probability 1/2,
otherwise move to a uniformly random neighbour.  The mixing time ``t_mix`` is
the smallest ``t`` such that, from every starting distribution, the walk's
distribution after ``t`` steps is within ``1 / (2n)`` of the stationary
distribution in the infinity norm.  Because the infinity-norm distance is a
convex function of the starting distribution, it suffices to check point-mass
starts, which is what :func:`mixing_time` does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .spectra import lazy_walk_second_eigenvalue
from .topology import Graph

__all__ = [
    "lazy_transition_matrix",
    "stationary_distribution",
    "walk_distribution",
    "linf_distance_to_stationary",
    "mixing_time",
    "cached_mixing_time",
    "spectral_mixing_time_estimate",
    "MixingProfile",
    "mixing_profile",
]


def lazy_transition_matrix(graph: Graph, laziness: float = 0.5) -> np.ndarray:
    """Row-stochastic lazy walk matrix ``P`` with ``P[i, i] = laziness``.

    ``P[i, j] = (1 - laziness) / d_i`` for every neighbour ``j`` of ``i`` --
    the paper's preliminaries fix ``laziness = 1/2``, and every protocol in
    this repository uses that value; other values support sensitivity
    experiments on the laziness constant.
    """
    if not 0.0 <= laziness < 1.0:
        raise ValueError("laziness must lie in [0, 1)")
    n = graph.num_nodes
    matrix = np.zeros((n, n), dtype=float)
    for v in graph.nodes():
        degree = graph.degree(v)
        matrix[v, v] = laziness
        if degree == 0:
            matrix[v, v] = 1.0
            continue
        weight = (1.0 - laziness) / degree
        for u in graph.neighbors(v):
            matrix[v, u] = weight
    return matrix


def stationary_distribution(graph: Graph) -> np.ndarray:
    """Stationary distribution ``pi*`` with ``pi*_i = d_i / (2m)``."""
    degrees = np.array(graph.degrees(), dtype=float)
    total = degrees.sum()
    if total == 0:
        raise ValueError("stationary distribution undefined for an empty graph")
    return degrees / total


def walk_distribution(graph: Graph, source: int, steps: int) -> np.ndarray:
    """Distribution of a lazy walk started at ``source`` after ``steps`` steps."""
    if steps < 0:
        raise ValueError("steps must be non-negative")
    transition = lazy_transition_matrix(graph)
    distribution = np.zeros(graph.num_nodes)
    distribution[source] = 1.0
    for _ in range(steps):
        distribution = distribution @ transition
    return distribution


def linf_distance_to_stationary(graph: Graph, distributions: np.ndarray) -> float:
    """Worst infinity-norm distance between the given rows and ``pi*``."""
    stationary = stationary_distribution(graph)
    return float(np.max(np.abs(distributions - stationary)))


def mixing_time(
    graph: Graph,
    threshold: Optional[float] = None,
    max_steps: Optional[int] = None,
    laziness: float = 0.5,
) -> int:
    """Exact mixing time of the lazy walk under the paper's definition.

    ``threshold`` defaults to ``1 / (2n)``.  ``max_steps`` defaults to
    ``64 * n**3`` which exceeds the worst-case lazy-walk mixing time of any
    connected graph; hitting the cap raises ``RuntimeError`` so a silent
    wrong answer is impossible.  ``laziness`` is the walk's stay-put
    probability (the paper's walks use 1/2).
    """
    if not graph.is_connected():
        raise ValueError("mixing time is undefined for a disconnected graph")
    n = graph.num_nodes
    if n == 1:
        return 0
    if threshold is None:
        threshold = 1.0 / (2.0 * n)
    if max_steps is None:
        max_steps = 64 * n**3
    transition = lazy_transition_matrix(graph, laziness=laziness)
    stationary = stationary_distribution(graph)
    # Rows of `powers` hold the distribution of a walk started at each vertex.
    powers = np.eye(n)
    step = 0
    while step < max_steps:
        distance = float(np.max(np.abs(powers - stationary)))
        if distance <= threshold:
            return step
        powers = powers @ transition
        step += 1
    raise RuntimeError("mixing time exceeded max_steps=%d" % max_steps)


def cached_mixing_time(graph: Graph, laziness: float = 0.5) -> int:
    """:func:`mixing_time` memoised on the graph instance.

    The exact computation is a dense-matrix power iteration -- far more
    expensive than any single election trial -- yet sweeps hand one shared
    ``Graph`` to every trial of a configuration and the known-``t_mix``
    adapter needs the value per trial.  The cache key is the graph's mutation
    counter (the same convention as the executor's inline-edge digest)
    *plus* the walk's ``laziness``: the mixing time of the half-lazy and of
    any other walk differ, so memoising on the topology alone would hand a
    sensitivity sweep the first laziness value's answer for every query.
    Topology edits invalidate all entries, and a serial sweep computes each
    ``(topology, laziness)`` mixing time once instead of once per trial.
    Worker processes receive pickled copies, so parallel runs still pay once
    per task -- exactly the cost the fault-free code always had, never more.
    """
    version = graph._mutations
    key = (version, laziness)
    cache = getattr(graph, "_mixing_time_cache", None)
    # Entries from older topology versions are dropped wholesale: a mutated
    # graph never reuses any stale value, whatever its laziness.
    if cache is not None and cache.get("version") == version:
        if key in cache:
            return cache[key]
    else:
        cache = {"version": version}
        graph._mixing_time_cache = cache
    value = mixing_time(graph, laziness=laziness)
    cache[key] = value
    return value


def spectral_mixing_time_estimate(graph: Graph, threshold: Optional[float] = None) -> float:
    """Spectral upper-bound style estimate ``ln(1 / (threshold * pi_min)) / gap``.

    Useful for graphs that are too large for the exact computation; the
    estimate is within a constant factor of the true mixing time for the
    well-connected graphs the paper targets.
    """
    n = graph.num_nodes
    if threshold is None:
        threshold = 1.0 / (2.0 * n)
    gap = 1.0 - lazy_walk_second_eigenvalue(graph)
    if gap <= 0:
        return float("inf")
    pi_min = float(np.min(stationary_distribution(graph)))
    return float(np.log(1.0 / (threshold * pi_min)) / gap)


@dataclass
class MixingProfile:
    """Summary of the walk-related quantities of a graph."""

    num_nodes: int
    num_edges: int
    mixing_time: int
    spectral_estimate: float
    spectral_gap: float

    def __str__(self) -> str:
        return (
            "MixingProfile(n=%d, m=%d, t_mix=%d, spectral_estimate=%.1f, gap=%.4f)"
            % (
                self.num_nodes,
                self.num_edges,
                self.mixing_time,
                self.spectral_estimate,
                self.spectral_gap,
            )
        )


def mixing_profile(graph: Graph) -> MixingProfile:
    """Compute the full :class:`MixingProfile` of a graph."""
    gap = 1.0 - lazy_walk_second_eigenvalue(graph)
    return MixingProfile(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        mixing_time=mixing_time(graph),
        spectral_estimate=spectral_mixing_time_estimate(graph),
        spectral_gap=gap,
    )
