"""Outcome-equivalence of the vectorized and reference simulators.

The two engines share every non-walk random draw byte-for-byte (identities,
contender nominations, crash schedules) but draw walk trajectories from
*different* seed streams -- that is the vectorized engine's documented
contract (see ``docs/architecture.md``, "Simulators").  Equivalence is
therefore asserted on everything the shared streams determine:

* winners / leaders (the same node wins under both engines in the
  overwhelmingly common case where the largest-id contender wins; graphs
  and seeds in this grid are chosen so the grid stays deterministic),
* classification, contender count and the crash set.

Round counts, phase counts and ``forced_stop`` legitimately differ between
engines -- they depend on the walk randomness -- and are deliberately NOT
compared.

The grid is registry-driven: every algorithm that declares the
``"vectorized"`` capability is exercised, on several graph families, with
and without crash fault plans, serially and through the 4-worker pool.
"""

import json

import pytest

from repro.core import ElectionParameters
from repro.exec import (
    BatchRunner,
    GraphSpec,
    TrialSpec,
    algorithm_names,
    execute_trial,
    get_algorithm,
    outcome_to_dict,
)
from repro.faults import CrashFaults, FaultPlan
from repro.graphs.topology import Graph

FAST = ElectionParameters(c1=3.0, c2=0.5)

#: Every public algorithm that declares the vectorized capability.
VECTORIZED_ALGORITHMS = tuple(
    name
    for name in algorithm_names()
    if "vectorized" in get_algorithm(name).simulators
)

FAMILIES = (
    GraphSpec("expander", (24,), {"degree": 4}, seed=11),
    GraphSpec("hypercube", (4,)),
    GraphSpec("gilbert", (24, 0.55), seed=12),
)


def _spec(algorithm, graph, seed, simulator, fault_plan=None, **algo_kwargs):
    if algorithm == "known_tmix":
        algo_kwargs.setdefault("mixing_time", 8)
    return TrialSpec(
        graph=graph,
        algorithm=algorithm,
        seed=seed,
        params=FAST,
        algo_kwargs=algo_kwargs,
        fault_plan=fault_plan,
        simulator=simulator,
    )


def _assert_equivalent(reference, vectorized, context=""):
    """The equivalence contract: shared-stream-determined fields agree."""
    assert vectorized.winners == reference.winners, context
    assert vectorized.classification == reference.classification, context
    assert sorted(vectorized.crashed_nodes) == sorted(reference.crashed_nodes), context
    assert vectorized.num_contenders == reference.num_contenders, context
    assert vectorized.num_nodes == reference.num_nodes, context


def _pair(algorithm, graph, seed, fault_plan=None, **algo_kwargs):
    reference = execute_trial(
        _spec(algorithm, graph, seed, "reference", fault_plan, **algo_kwargs)
    )
    vectorized = execute_trial(
        _spec(algorithm, graph, seed, "vectorized", fault_plan, **algo_kwargs)
    )
    return reference, vectorized


class TestRegistryWideEquivalence:
    def test_the_capability_is_declared(self):
        assert "election" in VECTORIZED_ALGORITHMS
        assert "known_tmix" in VECTORIZED_ALGORITHMS

    @pytest.mark.parametrize("algorithm", VECTORIZED_ALGORITHMS)
    @pytest.mark.parametrize("graph", FAMILIES, ids=lambda g: g.family)
    def test_fault_free_equivalence(self, algorithm, graph):
        for seed in (1, 2):
            reference, vectorized = _pair(algorithm, graph, seed)
            _assert_equivalent(
                reference, vectorized, "%s/%s/seed=%d" % (algorithm, graph.family, seed)
            )
            assert vectorized.extras.get("simulator") == "vectorized"
            assert "simulator" not in reference.extras

    def test_crash_plan_equivalence(self):
        # The paper's election keeps doubling until its intersection and
        # distinctness conditions hold, so its winner set is determined by
        # the shared (identity, crash) streams even when crashes destroy
        # tokens -- full equivalence holds under fault plans.
        graph = GraphSpec("expander", (24,), {"degree": 4}, seed=11)
        plan = FaultPlan(crashes=CrashFaults(count=3, at_round=3))
        for seed in (1, 2):
            reference, vectorized = _pair("election", graph, seed, fault_plan=plan)
            _assert_equivalent(reference, vectorized, "election/crash/seed=%d" % seed)
            assert len(vectorized.crashed_nodes) == 3

    def test_crash_plan_known_tmix_shared_stream_fields(self):
        # The single-phase [25] baseline has no intersection guarantee:
        # whether a *second* leader appears under crashes depends on which
        # walks survived, which is walk randomness -- outside the engines'
        # shared streams.  What the shared streams do determine: the crash
        # set, the contender count, and that the surviving contender with
        # the globally largest id elects itself in both engines (nothing
        # can outrank it), so the winner sets always intersect.
        graph = GraphSpec("expander", (24,), {"degree": 4}, seed=11)
        plan = FaultPlan(crashes=CrashFaults(count=3, at_round=3))
        for seed in (1, 2):
            reference, vectorized = _pair("known_tmix", graph, seed, fault_plan=plan)
            assert sorted(vectorized.crashed_nodes) == sorted(reference.crashed_nodes)
            assert vectorized.num_contenders == reference.num_contenders
            assert set(vectorized.winners) & set(reference.winners)
            for outcome in (reference, vectorized):
                assert outcome.classification in ("elected", "multiple_leaders")

    def test_serial_matches_4_workers_bitwise(self):
        """Vectorized trials replay bit-identically through the worker pool."""
        plan = FaultPlan(crashes=CrashFaults(count=2, at_round=5))
        specs = [
            _spec(algorithm, FAMILIES[0], seed, "vectorized", fault_plan)
            for algorithm in VECTORIZED_ALGORITHMS
            for seed in (1, 2)
            for fault_plan in (None, plan)
        ]
        serial = BatchRunner(workers=1).run(specs)
        parallel = BatchRunner(workers=4).run(specs)

        def signature(results):
            return [
                json.dumps(outcome_to_dict(result.outcome), sort_keys=True)
                for result in results
            ]

        assert signature(serial) == signature(parallel)


class TestEdgeCaseEquivalence:
    def test_single_node_graph(self):
        graph = Graph.from_edges(1, [])
        for algorithm in VECTORIZED_ALGORITHMS:
            for seed in (1, 2, 3):
                reference, vectorized = _pair(algorithm, graph, seed)
                _assert_equivalent(reference, vectorized, "%s/n=1" % algorithm)
                assert vectorized.classification == "elected"
                assert vectorized.winners == [0]

    def test_disconnected_components(self):
        # The gilbert builder always extracts the largest connected
        # component, so a disconnected disc-model graph is built inline:
        # two clusters with no bridge, as a sparse radius would produce.
        edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
        graph = Graph.from_edges(6, edges)
        for seed in (1, 2, 3):
            reference, vectorized = _pair("election", graph, seed)
            _assert_equivalent(reference, vectorized, "disconnected/seed=%d" % seed)

    def test_crash_kills_token_host_mid_walk(self):
        # Round 2 of the first phase is inside the WALK segment, so tokens
        # sitting on the crashed hosts vanish mid-walk in both engines.
        # Only the paper's election guarantees a walk-independent winner
        # set under crashes (see the crash-plan tests above).
        graph = GraphSpec("expander", (24,), {"degree": 4}, seed=11)
        plan = FaultPlan(crashes=CrashFaults(targets=(5, 7), at_round=2))
        for seed in (1, 2):
            reference, vectorized = _pair("election", graph, seed, fault_plan=plan)
            _assert_equivalent(reference, vectorized, "election/mid-walk-crash")
            assert sorted(vectorized.crashed_nodes) == [5, 7]

    def test_round_limit_exhaustion(self):
        # A cutoff before the first decide round: neither engine elects and
        # both classify identically.
        graph = GraphSpec("expander", (24,), {"degree": 4}, seed=11)
        for seed in (1, 2):
            reference, vectorized = _pair(
                "election", graph, seed, max_rounds=10
            )
            _assert_equivalent(reference, vectorized, "cutoff/seed=%d" % seed)
            assert vectorized.winners == []
