"""Pluggable on-disk result cache keyed by trial fingerprint.

:class:`ResultCache` is the persistent fingerprint -> outcome store every
batch runner and campaign consults; since PR 8 the physical layout behind it
is a pluggable :class:`~repro.exec.cache.base.CacheBackend`:

========  =========================================  ============================
name      layout                                     best at
========  =========================================  ============================
json      one JSON file per trial under              human-greppable dirs, tiny
          ``root/<aa>/<fingerprint>.json``           campaigns, cross-tool access
sqlite    one WAL-mode ``cache.sqlite`` database     10^5..10^7-trial campaigns:
          (payload + derived summary per row)        O(1) files, batched lookups,
                                                     single-statement merges,
                                                     streaming reports
========  =========================================  ============================

Both backends store the identical sorted-keys entry document per trial, so
campaigns, merges and reports are byte-identical whichever backend ran them
(``tests/exec/test_cache_backends.py`` pins this property for every
registered algorithm).

Backend selection, strongest first: an explicit ``backend=`` argument
("json"/"sqlite" or a :class:`CacheBackend` instance), an existing
``cache.sqlite`` inside the root (an already-migrated directory stays
SQLite, whatever the environment says), the :data:`CACHE_BACKEND_ENV_VAR`
environment override (how CI runs whole test tiers per backend), and finally
the historical ``json`` default.  Opening a JSON-tree directory with the
SQLite backend imports every readable entry once (one-way migration; the
files stay behind, readable by the ``json`` backend).

Long robustness campaigns accumulate entries across many fault plans;
:meth:`ResultCache.stats` reports the backend, entry count, stored bytes and
the hit-rate since the cache was opened, :meth:`ResultCache.prune` trims the
store to a size/age budget (oldest entries first) and
:meth:`ResultCache.compact` reclaims the space afterwards.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Union

from ...core.result import TrialOutcome
from ..fingerprint import canonical_trial_document
from ..serialize import outcome_from_dict, outcome_to_dict
from ..spec import TrialSpec
from .base import (
    CacheBackend,
    OutcomeSummary,
    SummaryAggregate,
    aggregate_summaries,
    atomic_write_bytes,
    logger,
)
from .json_dir import JsonDirBackend
from .sqlite import DATABASE_NAME, SqliteBackend

__all__ = [
    "ResultCache",
    "CachedTrial",
    "CacheStats",
    "CacheBackend",
    "OutcomeSummary",
    "SummaryAggregate",
    "aggregate_summaries",
    "JsonDirBackend",
    "SqliteBackend",
    "atomic_write_bytes",
    "CACHE_BACKEND_ENV_VAR",
    "cache_backend_names",
    "make_cache_backend",
    "add_cache_backend_argument",
]

#: Environment override consulted when neither an explicit ``backend=`` nor
#: an existing ``cache.sqlite`` decides; one of :func:`cache_backend_names`.
#: This is how the CI cache matrix runs the exec/campaign test tiers under
#: every backend without touching a line of test code.
CACHE_BACKEND_ENV_VAR = "REPRO_CACHE_BACKEND"

_FACTORIES = {
    "json": JsonDirBackend,
    "sqlite": SqliteBackend,
}


def cache_backend_names() -> tuple:
    """The registered cache backend names, sorted.

    >>> cache_backend_names()
    ('json', 'sqlite')
    """
    return tuple(sorted(_FACTORIES))


def make_cache_backend(name: str, root: str) -> CacheBackend:
    """Instantiate a cache backend by registry name over ``root``."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            "unknown cache backend %r; known backends: %s"
            % (name, ", ".join(cache_backend_names()))
        ) from None
    return factory(root)


def add_cache_backend_argument(parser) -> None:
    """Attach the standard ``--cache-backend`` option to an argparse parser.

    One definition for every campaign CLI, mirroring ``--backend`` for
    execution backends: choices track the registry, and the empty-string
    default means "no explicit choice" (auto-detection and the
    ``REPRO_CACHE_BACKEND`` override still apply) -- pass
    ``arguments.cache_backend or None`` through to ``ResultCache``.
    """
    parser.add_argument(
        "--cache-backend",
        default="",
        choices=("",) + cache_backend_names(),
        help="result cache backend (default: auto-detect -- an existing "
        "cache.sqlite keeps sqlite, REPRO_CACHE_BACKEND overrides, "
        "otherwise the json file tree; sqlite is built for "
        "million-trial campaigns)",
    )


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of a cache store plus this process's hit accounting."""

    entries: int
    total_bytes: int
    hits: int
    misses: int
    #: Registry name of the backend serving this cache ("json"/"sqlite").
    backend: str = "json"

    @property
    def lookups(self) -> int:
        """Total ``get`` calls since the cache was opened."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of ``get`` calls served from the store since it opened.

        >>> CacheStats(entries=2, total_bytes=64, hits=3, misses=1).hit_rate
        0.75
        """
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class CachedTrial:
    """One deserialised cache entry (outcome plus bookkeeping)."""

    def __init__(self, outcome: TrialOutcome, elapsed_seconds: float, created: float) -> None:
        self.outcome = outcome
        self.elapsed_seconds = elapsed_seconds
        self.created = created


class ResultCache:
    """Persistent fingerprint -> outcome store for the batch executor."""

    def __init__(
        self,
        root: Union[str, os.PathLike],
        backend: Union[None, str, CacheBackend] = None,
    ) -> None:
        self.root = os.fspath(root)
        if isinstance(backend, CacheBackend):
            self._backend = backend
        else:
            name = backend if backend else self._detect_backend_name(self.root)
            self._backend = make_cache_backend(name, self.root)
        self._hits = 0
        self._misses = 0

    @staticmethod
    def _detect_backend_name(root: str) -> str:
        """Backend for a root nobody chose one for (see the module docstring)."""
        if os.path.exists(os.path.join(root, DATABASE_NAME)):
            return "sqlite"
        return os.environ.get(CACHE_BACKEND_ENV_VAR) or "json"

    @property
    def backend(self) -> CacheBackend:
        """The physical store serving this cache."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Registry name of the active backend ("json"/"sqlite")."""
        return self._backend.name

    # ----------------------------------------------------------------- paths
    def path_for(self, fingerprint: str) -> str:
        """Entry file path, for backends that keep one file per entry.

        The SQLite backend stores rows, not files, and raises a
        ``NotImplementedError`` explaining that instead of returning a path
        that nothing on disk answers to.
        """
        return self._backend.path_for(fingerprint)

    # ---------------------------------------------------------------- lookup
    def get(self, fingerprint: str) -> Optional[CachedTrial]:
        """Return the cached trial for ``fingerprint`` or ``None`` on a miss."""
        cached = self._to_cached(fingerprint, self._backend.load(fingerprint))
        self._account(cached is not None)
        return cached

    def get_many(self, fingerprints: List[str]) -> List[Optional[CachedTrial]]:
        """Batched :meth:`get` (one query on SQLite): same order, same counts."""
        results = []
        for fingerprint, document in zip(
            fingerprints, self._backend.load_many(list(fingerprints))
        ):
            cached = self._to_cached(fingerprint, document)
            self._account(cached is not None)
            results.append(cached)
        return results

    def get_summaries(self, fingerprints: List[str]) -> List[Optional[OutcomeSummary]]:
        """Batched aggregate summaries, ``None`` per miss (report fast path).

        On SQLite this reads the derived summary columns only -- no payload is
        deserialised -- which is what lets ``campaign_report`` stream over
        millions of entries.  Summary lookups count toward the hit/miss
        accounting exactly like full ``get`` calls.
        """
        summaries = self._backend.summaries(list(fingerprints))
        hits = sum(1 for summary in summaries if summary is not None)
        self._hits += hits
        self._misses += len(summaries) - hits
        return summaries

    def get_summary_aggregate(self, fingerprints: List[str]) -> SummaryAggregate:
        """One configuration group folded to exact counts and integer sums.

        The streaming report path: on SQLite the fold runs inside the
        database (one ``GROUP BY`` over the summary index per fingerprint
        chunk), on the JSON tree it folds the summary rows in Python --
        both bit-identical to :func:`~repro.exec.cache.base.aggregate_summaries`
        over :meth:`get_summaries`.  Defined over the distinct fingerprints;
        every distinct fingerprint counts toward the hit/miss accounting
        exactly like a ``get``.
        """
        aggregate = self._backend.aggregate(list(fingerprints))
        self._hits += aggregate.done
        self._misses += aggregate.requested - aggregate.done
        return aggregate

    def _account(self, hit: bool) -> None:
        if hit:
            self._hits += 1
        else:
            self._misses += 1

    def _to_cached(
        self, fingerprint: str, document: Optional[Dict[str, object]]
    ) -> Optional[CachedTrial]:
        if document is None:
            return None
        try:
            return CachedTrial(
                outcome=outcome_from_dict(document["outcome"]),
                elapsed_seconds=float(document.get("elapsed_seconds", 0.0)),
                created=float(document.get("created", 0.0)),
            )
        except (ValueError, KeyError, TypeError) as exc:
            # The store handed back a parseable document that does not hold a
            # readable outcome (schema drift, hand-edited entry): a miss,
            # like every other corruption -- never an exception.
            logger.warning(
                "treating corrupt cache entry %s as a miss (%s: %s); "
                "it will be recomputed and overwritten",
                fingerprint,
                type(exc).__name__,
                exc,
            )
            return None

    # ----------------------------------------------------------------- store
    def put(
        self,
        fingerprint: str,
        spec: TrialSpec,
        outcome: TrialOutcome,
        elapsed_seconds: float,
    ) -> None:
        """Persist one trial result atomically."""
        payload = {
            "fingerprint": fingerprint,
            "trial": canonical_trial_document(spec),
            "label": spec.label,
            "outcome": outcome_to_dict(outcome),
            "elapsed_seconds": elapsed_seconds,
            "created": time.time(),
        }
        self._backend.store(fingerprint, payload)

    def merge_from(self, other: "ResultCache") -> int:
        """Copy every entry of ``other`` that this cache lacks; return the count.

        This is the multi-machine union: after ``m`` shard runs of the same
        campaign into ``m`` separate caches, merging them all into one store
        yields the cache a single-machine run would have produced (entries
        are keyed by trial fingerprint, so the same trial always lands under
        the same key with equivalent content).  Entries already present
        locally are kept untouched.  Merging works across backends in either
        direction -- SQLite-to-SQLite is a single attached-database
        ``INSERT OR IGNORE``; JSON-to-JSON copies files byte-for-byte.
        """
        return self._backend.merge_from(other._backend)

    # ------------------------------------------------------------- inventory
    def __len__(self) -> int:
        return self._backend.count()

    def entries(self) -> Iterator[Dict[str, object]]:
        """Iterate the raw JSON documents of every cache entry."""
        return self._backend.documents()

    # ------------------------------------------------------------ maintenance
    def stats(self) -> CacheStats:
        """Backend, entry count, stored bytes and hit-rate since this opened.

        Hit/miss counters are per :class:`ResultCache` instance (they start
        at zero when the store is opened); entry count and bytes reflect the
        store's current contents, whoever wrote them.  ``backend`` names the
        store layout serving the counts, so sharded campaign logs show which
        representation each machine wrote.
        """
        return CacheStats(
            entries=self._backend.count(),
            total_bytes=self._backend.total_bytes(),
            hits=self._hits,
            misses=self._misses,
            backend=self._backend.name,
        )

    def prune(
        self,
        max_entries: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        now: Optional[float] = None,
    ) -> int:
        """Delete entries beyond the given budgets; return how many were removed.

        ``max_age_seconds`` removes entries whose ``created`` stamp is older
        than that (relative to ``now``, defaulting to the current time);
        ``max_entries`` then keeps only the newest that many entries.  With
        no arguments the cache is cleared entirely.  The budget logic is
        backend-independent (the store only provides timestamps and
        deletion), so both layouts prune identically; pruning a cache that a
        concurrent campaign is writing to is safe -- at worst a freshly
        written entry survives or a removed one is recomputed.
        """
        if max_entries is not None and max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        stamped = self._backend.stamped()
        stamped.sort()  # oldest first

        doomed = []
        if max_age_seconds is not None:
            cutoff = (time.time() if now is None else now) - max_age_seconds
            while stamped and stamped[0][0] < cutoff:
                doomed.append(stamped.pop(0)[1])
        if max_entries is not None:
            keep = max_entries
        elif max_age_seconds is not None:
            keep = len(stamped)  # the age budget alone decides
        else:
            keep = 0  # no budgets at all: clear the cache
        if len(stamped) > keep:
            doomed.extend(
                fingerprint for _created, fingerprint in stamped[: len(stamped) - keep]
            )
        return self._backend.delete(doomed)

    def compact(self) -> None:
        """Reclaim physical space deleted entries held (SQLite ``VACUUM``)."""
        self._backend.compact()

    def close(self) -> None:
        """Release store handles (optional; useful for SQLite on Windows)."""
        self._backend.close()
