"""Unit tests for Algorithm 1 (identifiers and contender self-nomination)."""

import math
import random

import pytest

from repro.core import (
    DEFAULT_PARAMETERS,
    ElectionParameters,
    contender_range_whp,
    decide_contender,
    draw_identifier,
    expected_contenders,
    initialise_node,
)


class TestIdentifiers:
    def test_identifier_range(self):
        rng = random.Random(1)
        params = DEFAULT_PARAMETERS
        n = 50
        for _ in range(200):
            identifier = draw_identifier(rng, n, params)
            assert 1 <= identifier <= n**4

    def test_identifiers_mostly_unique(self):
        rng = random.Random(2)
        n = 64
        ids = [draw_identifier(rng, n, DEFAULT_PARAMETERS) for _ in range(n)]
        assert len(set(ids)) == n  # collisions have probability ~ n^2 / n^4

    def test_custom_id_space_exponent(self):
        params = ElectionParameters(id_space_exponent=2)
        rng = random.Random(3)
        assert all(draw_identifier(rng, 10, params) <= 100 for _ in range(50))


class TestContenderDecision:
    def test_probability_matches_lemma1_rate(self):
        params = ElectionParameters(c1=4.0)
        n = 512
        rng = random.Random(4)
        trials = 20_000
        hits = sum(decide_contender(rng, n, params) for _ in range(trials))
        expected = params.contender_probability(n)
        assert hits / trials == pytest.approx(expected, rel=0.15)

    def test_initialise_node_bundles_both(self):
        rng = random.Random(5)
        identity = initialise_node(rng, 100, DEFAULT_PARAMETERS)
        assert 1 <= identity.identifier <= 100**4
        assert isinstance(identity.is_contender, bool)

    def test_expected_contenders(self):
        params = ElectionParameters(c1=3.0)
        n = 256
        assert expected_contenders(n, params) == pytest.approx(3.0 * math.log(n))

    def test_contender_range_whp_brackets_mean(self):
        params = ElectionParameters(c1=4.0)
        low, high = contender_range_whp(1024, params)
        mean = params.c1 * math.log(1024)
        assert low == pytest.approx(0.75 * mean)
        assert high == pytest.approx(1.25 * mean)
        assert low < mean < high

    def test_lemma1_concentration_empirically(self):
        """Lemma 1: the contender count concentrates around c1 log n."""
        params = ElectionParameters(c1=6.0)
        n = 1024
        rng = random.Random(6)
        low, high = contender_range_whp(n, params)
        inside = 0
        trials = 200
        for _ in range(trials):
            count = sum(decide_contender(rng, n, params) for _ in range(n))
            if low <= count <= high:
                inside += 1
        assert inside / trials >= 0.85
