"""E7 -- Theorem 28: without correct knowledge of n the election breaks.

Runs the paper's algorithm on dumbbells of two opened cliques while every node
believes the network has only half its true size.  Over several trials the
typical outcome is a leader on each side (the bridge edges are almost never
used), which is exactly the indistinguishability argument of Section 5 turned
into an experiment.
"""

from repro.graphs import complete_graph
from repro.lowerbound import run_unknown_n_experiment

SEED = 11
BASE_N = 64
TRIALS = 4

_RESULTS = {}


def _run_all():
    if "runs" not in _RESULTS:
        base = complete_graph(BASE_N)
        _RESULTS["runs"] = [
            run_unknown_n_experiment(base, seed=SEED + trial) for trial in range(TRIALS)
        ]
    return _RESULTS["runs"]


def test_e7_unknown_n_dumbbell(benchmark):
    runs = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    both_sides = sum(run.elected_on_both_sides for run in runs)
    duplicate_leaders = sum(run.num_leaders > 1 for run in runs)
    benchmark.extra_info.update(
        {
            "base_n": BASE_N,
            "trials": TRIALS,
            "both_sides_elected": both_sides,
            "runs_with_duplicate_leaders": duplicate_leaders,
            "leaders_per_run": [run.num_leaders for run in runs],
            "bridge_crossings_per_run": [run.bridge_crossings for run in runs],
            "messages_per_run": [run.messages for run in runs],
        }
    )
    # Theorem 28's failure mode shows up in a constant fraction of the runs.
    assert both_sides >= 1
    # And no run spends anywhere near Omega(m) = Theta(n^2) messages.
    m = 2 * complete_graph(BASE_N).num_edges
    assert all(run.messages < 20 * m for run in runs)


def test_e7_correct_n_restores_uniqueness(benchmark):
    """Control: the same dumbbell with the true n elects a single leader."""
    from repro.core import run_leader_election
    from repro.lowerbound import build_dumbbell_graph

    def run():
        dumbbell = build_dumbbell_graph(complete_graph(BASE_N), seed=SEED)
        return run_leader_election(dumbbell.graph, seed=SEED)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({"leaders": outcome.num_leaders, "messages": outcome.messages})
    assert outcome.num_leaders == 1
