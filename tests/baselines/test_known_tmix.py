"""Tests for the known-mixing-time baseline ([25])."""

from repro.baselines import known_tmix_trial
from repro.core import ElectionParameters
from repro.graphs import complete_graph, expander_graph, mixing_time


class TestKnownTmix:
    def test_elects_unique_leader_on_expander(self):
        graph = expander_graph(48, seed=1)
        outcome = known_tmix_trial(graph, mixing_time(graph), seed=2)
        assert outcome.success

    def test_single_phase_only(self):
        graph = complete_graph(32)
        outcome = known_tmix_trial(graph, mixing_time(graph), seed=3)
        assert outcome.extras["max_phases"] == 1
        assert outcome.extras["final_walk_length"] == mixing_time(graph)

    def test_omitted_mixing_time_is_computed_and_recorded(self):
        graph = complete_graph(32)
        outcome = known_tmix_trial(graph, seed=3)
        assert outcome.extras["mixing_time"] == mixing_time(graph)
        # ... and memoised on the instance (keyed by topology version and
        # walk laziness) for the next trial.
        key = (graph._mutations, 0.5)
        assert graph._mixing_time_cache[key] == outcome.extras["mixing_time"]

    def test_safety_factor_scales_walk_length(self):
        graph = complete_graph(32)
        outcome = known_tmix_trial(graph, 4, safety_factor=2.0, seed=4)
        assert outcome.extras["final_walk_length"] == 8

    def test_all_contenders_stop(self):
        graph = expander_graph(32, seed=5)
        outcome = known_tmix_trial(graph, mixing_time(graph), seed=6)
        assert outcome.metrics.completed

    def test_custom_parameters_respected(self):
        graph = complete_graph(32)
        params = ElectionParameters(c1=2.0, c2=0.5)
        cheap = known_tmix_trial(graph, 4, params=params, seed=7)
        rich = known_tmix_trial(graph, 4, seed=7)
        assert cheap.messages < rich.messages

    def test_observer_hook(self):
        events = []
        graph = complete_graph(24)
        known_tmix_trial(
            graph, 4, seed=8, observers=(lambda r, s, d, m: events.append(m.kind),)
        )
        assert events
