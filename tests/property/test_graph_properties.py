"""Property-based tests for the graph substrate (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.graphs import (
    Graph,
    PortNumberedGraph,
    cheeger_bounds,
    complete_graph,
    cut_conductance,
    cycle_graph,
    exact_conductance,
    mixing_time,
    stationary_distribution,
)


def random_connected_graph(n, seed):
    """A small connected graph: random tree plus a few extra random edges."""
    import random

    rng = random.Random(seed)
    graph = Graph(n)
    nodes = list(range(n))
    rng.shuffle(nodes)
    for i in range(1, n):
        graph.add_edge(nodes[i], nodes[rng.randrange(i)])
    extra = rng.randrange(0, n)
    for _ in range(extra):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


graph_strategy = st.builds(
    random_connected_graph,
    st.integers(min_value=4, max_value=16),
    st.integers(min_value=0, max_value=10_000),
)

import pytest

pytestmark = pytest.mark.slow


class TestGraphInvariants:
    @given(graph_strategy)
    @settings(max_examples=40, deadline=None)
    def test_handshake_lemma(self, graph):
        assert sum(graph.degrees()) == 2 * graph.num_edges

    @given(graph_strategy)
    @settings(max_examples=40, deadline=None)
    def test_volume_splits_across_any_cut(self, graph):
        side = [v for v in graph.nodes() if v % 2 == 0]
        other = [v for v in graph.nodes() if v % 2 == 1]
        assert graph.volume(side) + graph.volume(other) == graph.total_volume()

    @given(graph_strategy)
    @settings(max_examples=40, deadline=None)
    def test_cut_edges_symmetric(self, graph):
        side = [v for v in graph.nodes() if v % 2 == 0]
        other = [v for v in graph.nodes() if v % 2 == 1]
        if side and other:
            assert graph.cut_edges(side) == graph.cut_edges(other)

    @given(graph_strategy)
    @settings(max_examples=30, deadline=None)
    def test_bfs_distances_satisfy_triangle_step(self, graph):
        dist = graph.bfs_distances(0)
        for u, v in graph.edges():
            if dist[u] >= 0 and dist[v] >= 0:
                assert abs(dist[u] - dist[v]) <= 1


class TestConductanceInvariants:
    @given(graph_strategy)
    @settings(max_examples=25, deadline=None)
    def test_conductance_between_zero_and_one_for_connected_graphs(self, graph):
        phi = exact_conductance(graph)
        assert 0 < phi <= 1.0

    @given(graph_strategy)
    @settings(max_examples=25, deadline=None)
    def test_cheeger_brackets_exact_conductance(self, graph):
        lower, upper = cheeger_bounds(graph)
        phi = exact_conductance(graph)
        assert lower <= phi + 1e-9
        assert phi <= upper + 1e-9

    @given(graph_strategy, st.integers(min_value=1, max_value=15))
    @settings(max_examples=25, deadline=None)
    def test_any_cut_upper_bounds_conductance(self, graph, size):
        side = list(range(min(size, graph.num_nodes - 1)))
        assert exact_conductance(graph) <= cut_conductance(graph, side) + 1e-9


class TestWalkInvariants:
    @given(graph_strategy)
    @settings(max_examples=25, deadline=None)
    def test_stationary_distribution_sums_to_one(self, graph):
        pi = stationary_distribution(graph)
        assert abs(float(pi.sum()) - 1.0) < 1e-9

    @given(graph_strategy)
    @settings(max_examples=15, deadline=None)
    def test_mixing_time_positive_for_nontrivial_graphs(self, graph):
        assert mixing_time(graph) >= 1

    @given(st.integers(min_value=3, max_value=10))
    @settings(max_examples=10, deadline=None)
    def test_clique_mixes_faster_than_cycle(self, n):
        assert mixing_time(complete_graph(n)) <= mixing_time(cycle_graph(n)) + 1


class TestPortInvariants:
    @given(graph_strategy, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_port_assignment_is_a_bijection_per_node(self, graph, seed):
        ports = PortNumberedGraph(graph, seed=seed)
        for v in graph.nodes():
            neighbors = {ports.port_to_neighbor(v, p) for p in ports.ports(v)}
            assert neighbors == set(graph.neighbors(v))
            assert len(neighbors) == graph.degree(v)
