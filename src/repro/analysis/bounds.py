"""Closed-form versions of the paper's complexity bounds.

These functions turn the asymptotic statements of the paper into concrete
reference curves (up to the hidden constants, which callers can scale) so the
benchmark harness can plot measured costs against them and fit exponents.
"""

from __future__ import annotations

import math

__all__ = [
    "upper_bound_messages_congest",
    "upper_bound_messages_large",
    "upper_bound_rounds_congest",
    "upper_bound_rounds_large",
    "lower_bound_messages",
    "kutten_lower_bound_messages",
    "explicit_broadcast_messages",
    "broadcast_lower_bound_messages",
    "spanning_tree_lower_bound_messages",
    "mixing_time_bounds_from_conductance",
    "expander_example_messages",
    "hypercube_example_messages",
]


def _log(n: float) -> float:
    return math.log(max(2.0, float(n)))


def upper_bound_messages_congest(n: int, t_mix: float, constant: float = 1.0) -> float:
    """Theorem 13: ``O(sqrt(n) log^{7/2} n * t_mix)`` messages in the CONGEST model."""
    return constant * math.sqrt(n) * _log(n) ** 3.5 * t_mix


def upper_bound_messages_large(n: int, t_mix: float, constant: float = 1.0) -> float:
    """Large-message variant: ``O(sqrt(n) log^{3/2} n * t_mix)`` messages."""
    return constant * math.sqrt(n) * _log(n) ** 1.5 * t_mix


def upper_bound_rounds_congest(n: int, t_mix: float, constant: float = 1.0) -> float:
    """Theorem 13: ``O(t_mix log^2 n)`` rounds in the CONGEST model."""
    return constant * t_mix * _log(n) ** 2


def upper_bound_rounds_large(n: int, t_mix: float, constant: float = 1.0) -> float:
    """Large-message variant: ``O(t_mix)`` rounds."""
    return constant * t_mix


def lower_bound_messages(n: int, phi: float, constant: float = 1.0) -> float:
    """Theorem 15: ``Omega(sqrt(n) / phi^{3/4})`` messages for 1 - o(1) success."""
    if phi <= 0:
        raise ValueError("phi must be positive")
    return constant * math.sqrt(n) / phi**0.75


def kutten_lower_bound_messages(m: int, constant: float = 1.0) -> float:
    """The ``Omega(m)`` bound of Kutten et al. [24] (n unknown or poorly connected)."""
    return constant * m


def explicit_broadcast_messages(n: int, phi: float, constant: float = 1.0) -> float:
    """Corollary 14's broadcast term: ``O(n log n / phi)`` messages."""
    if phi <= 0:
        raise ValueError("phi must be positive")
    return constant * n * _log(n) / phi


def broadcast_lower_bound_messages(n: int, phi: float, constant: float = 1.0) -> float:
    """Corollary 26: broadcast needs ``Omega(n / sqrt(phi))`` messages."""
    if phi <= 0:
        raise ValueError("phi must be positive")
    return constant * n / math.sqrt(phi)


def spanning_tree_lower_bound_messages(n: int, phi: float, constant: float = 1.0) -> float:
    """Corollary 27: spanning tree construction needs ``Omega(n / sqrt(phi))`` messages."""
    return broadcast_lower_bound_messages(n, phi, constant=constant)


def mixing_time_bounds_from_conductance(phi: float) -> tuple:
    """Equation (1): ``Theta(1/phi) <= t_mix <= Theta(1/phi^2)`` (unit constants)."""
    if phi <= 0:
        raise ValueError("phi must be positive")
    return 1.0 / phi, 1.0 / phi**2


def expander_example_messages(n: int, constant: float = 1.0) -> float:
    """Introduction example: expanders (``t_mix = O(log n)``) need
    ``O(sqrt(n) log^{9/2} n)`` messages."""
    return constant * math.sqrt(n) * _log(n) ** 4.5


def hypercube_example_messages(n: int, constant: float = 1.0) -> float:
    """Introduction example: hypercubes need ``O(sqrt(n) log^{9/2} n loglog n)`` messages."""
    return constant * math.sqrt(n) * _log(n) ** 4.5 * math.log(max(2.0, _log(n)))
