"""Tests for the experiment harness (trials, sweeps, tables)."""

import pytest

from repro.analysis import format_table, records_to_columns, run_election_trials, scaling_sweep
from repro.core import ElectionParameters
from repro.graphs import complete_graph


FAST = ElectionParameters(c1=3.0, c2=0.5)


class TestTrials:
    def test_run_trials_collects_outcomes(self):
        trial_set = run_election_trials(complete_graph(24), num_trials=2, params=FAST, base_seed=1)
        assert trial_set.num_trials == 2
        assert 0.0 <= trial_set.success_rate <= 1.0
        assert trial_set.mean_messages > 0
        assert trial_set.elapsed_seconds > 0

    def test_run_trials_requires_positive_count(self):
        with pytest.raises(ValueError):
            run_election_trials(complete_graph(8), num_trials=0)

    def test_trials_are_independent(self):
        trial_set = run_election_trials(complete_graph(24), num_trials=3, params=FAST, base_seed=2)
        messages = [outcome.messages for outcome in trial_set.outcomes]
        assert len(set(messages)) > 1

    def test_record_shape(self):
        trial_set = run_election_trials(
            complete_graph(24), num_trials=1, params=FAST, base_seed=3, label="demo"
        )
        record = trial_set.as_record()
        assert record["label"] == "demo"
        assert record["trials"] == 1
        assert "messages" in record and "rounds" in record


class TestSweep:
    def test_scaling_sweep_rows(self):
        records = scaling_sweep(
            lambda n, seed: complete_graph(n),
            sizes=[16, 24],
            trials=1,
            params=FAST,
            base_seed=4,
        )
        assert [record.num_nodes for record in records] == [16, 24]
        assert all(record.mixing_time > 0 for record in records)
        assert all(record.mean_messages > 0 for record in records)

    def test_sweep_can_skip_mixing_time(self):
        records = scaling_sweep(
            lambda n, seed: complete_graph(n),
            sizes=[16],
            trials=1,
            params=FAST,
            base_seed=5,
            compute_mixing_time=False,
        )
        assert records[0].mixing_time == -1


class TestTables:
    def test_format_table_alignment(self):
        rows = [{"n": 16, "messages": 120}, {"n": 256, "messages": 98765}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "n" in lines[1] and "messages" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_records_to_columns(self):
        columns = records_to_columns([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert columns == {"a": [1, 3], "b": [2, 4]}
