"""Scaling-law fits: estimate the exponent of a power-law relationship.

The benchmark harness verifies the *shape* of the paper's bounds (e.g. that
the message count of the election grows like ``sqrt(n)`` times polylog factors
rather than like ``m``), which boils down to fitting ``y = a * x^b`` on the
measured points and checking the exponent ``b``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["PowerLawFit", "fit_power_law", "ratio_curve"]


@dataclass(frozen=True)
class PowerLawFit:
    """Result of a log-log least-squares fit ``y = coefficient * x**exponent``."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Evaluate the fitted curve at ``x``."""
        return self.coefficient * x**self.exponent

    def __str__(self) -> str:
        return "y = %.3g * x^%.3f (R^2=%.3f)" % (self.coefficient, self.exponent, self.r_squared)


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y = a x^b`` by least squares in log-log space.

    Requires at least two distinct positive ``x`` values and positive ``y``
    values (costs and sizes always are).
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a power law")
    xs_arr = np.asarray(xs, dtype=float)
    ys_arr = np.asarray(ys, dtype=float)
    if np.any(xs_arr <= 0) or np.any(ys_arr <= 0):
        raise ValueError("power-law fitting requires strictly positive values")
    log_x = np.log(xs_arr)
    log_y = np.log(ys_arr)
    if np.allclose(log_x, log_x[0]):
        raise ValueError("need at least two distinct x values")
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predictions = slope * log_x + intercept
    residual = np.sum((log_y - predictions) ** 2)
    total = np.sum((log_y - np.mean(log_y)) ** 2)
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return PowerLawFit(
        exponent=float(slope), coefficient=float(np.exp(intercept)), r_squared=float(r_squared)
    )


def ratio_curve(measured: Sequence[float], reference: Sequence[float]) -> list:
    """Element-wise ``measured / reference``; useful for "within a constant factor" checks."""
    if len(measured) != len(reference):
        raise ValueError("sequences must have equal length")
    ratios = []
    for value, base in zip(measured, reference):
        if base == 0:
            raise ValueError("reference values must be non-zero")
        ratios.append(value / base)
    return ratios
