"""Unit tests for the tracer core: records, spans, composition, scoping."""

import pytest

from repro.obs import NullSink, Tracer, TraceSink, current_tracer, set_tracer, use_tracer


class Collect(TraceSink):
    def __init__(self):
        self.records = []
        self.closed = False

    def emit(self, record):
        self.records.append(record)

    def close(self):
        self.closed = True


class TestTracer:
    def test_event_record_shape(self):
        sink = Collect()
        Tracer(sink).event("demo.event", n=8, label="x")
        (record,) = sink.records
        assert record["kind"] == "event"
        assert record["name"] == "demo.event"
        assert record["attrs"] == {"n": 8, "label": "x"}
        assert isinstance(record["ts"], float)

    def test_span_records_duration(self):
        sink = Collect()
        with Tracer(sink).span("demo.span", stage="build"):
            pass
        (record,) = sink.records
        assert record["kind"] == "span"
        assert record["name"] == "demo.span"
        assert record["attrs"] == {"stage": "build"}
        assert record["dur_s"] >= 0.0

    def test_span_annotates_exceptions_and_reraises(self):
        sink = Collect()
        with pytest.raises(ValueError):
            with Tracer(sink).span("demo.span"):
                raise ValueError("boom")
        (record,) = sink.records
        assert record["attrs"]["error"] == "ValueError: boom"

    def test_disabled_tracer_is_free(self):
        tracer = Tracer()
        assert not tracer.enabled
        tracer.event("anything")  # no sink, no record, no error
        span_a = tracer.span("a")
        span_b = tracer.span("b")
        assert span_a is span_b, "disabled spans share one no-op context manager"
        with span_a:
            pass

    def test_null_sinks_are_filtered_out(self):
        collect = Collect()
        tracer = Tracer((NullSink(), collect, NullSink()))
        assert tracer.enabled
        assert tracer.sinks == (collect,)

    def test_with_sinks_widens_without_mutating(self):
        base_sink, extra_sink = Collect(), Collect()
        base = Tracer(base_sink)
        widened = base.with_sinks((extra_sink,))
        widened.event("demo")
        assert len(base_sink.records) == len(extra_sink.records) == 1
        assert base.sinks == (base_sink,)
        assert base.with_sinks(()) is base
        assert base.with_sinks((NullSink(),)) is base

    def test_close_closes_every_sink(self):
        sinks = (Collect(), Collect())
        Tracer(sinks).close()
        assert all(sink.closed for sink in sinks)


class TestCurrentTracer:
    def test_default_is_disabled(self):
        assert not current_tracer().enabled

    def test_use_tracer_scopes_installation(self):
        sink = Collect()
        with use_tracer(Tracer(sink)) as tracer:
            assert current_tracer() is tracer
            current_tracer().event("inside")
        assert not current_tracer().enabled
        assert [record["name"] for record in sink.records] == ["inside"]

    def test_set_tracer_returns_previous_and_none_resets(self):
        tracer = Tracer(Collect())
        previous = set_tracer(tracer)
        try:
            assert current_tracer() is tracer
        finally:
            assert set_tracer(None) is tracer
        assert not current_tracer().enabled
        set_tracer(previous)
