"""The algorithm registry: every algorithm a :class:`TrialSpec` can name.

Each entry is an :class:`Algorithm`: a module-level adapter
``(graph, spec) -> TrialOutcome`` plus the **declared capabilities** the
executor validates against:

* ``fault_aware`` -- the adapter honours ``TrialSpec.fault_plan``.  Specs
  that set a non-empty plan on a non-fault-aware algorithm are rejected up
  front: silently running them fault-free would poison the cache with
  mislabelled results.
* ``needs_params`` -- the adapter consumes ``TrialSpec.params``.  Specs that
  set non-default election parameters on an algorithm that ignores them are
  rejected for the dual reason: the parameters participate in the cache
  fingerprint, so a param sweep over such an algorithm would cache identical
  results under distinct keys and read as a real effect.
* ``outcome_kind`` -- which classification family the returned
  :class:`~repro.core.result.TrialOutcome` draws from (one of
  :data:`~repro.core.result.TRIAL_KINDS`).
* ``simulators`` -- which execution engines the adapter can run on
  (a subset of :data:`~repro.core.runner.KNOWN_SIMULATORS`).  Every
  algorithm supports the ``"reference"`` object simulator; walk-phase
  algorithms additionally support the numpy ``"vectorized"`` engine.
  Specs naming an undeclared simulator are rejected up front -- the
  simulator participates in the cache fingerprint, so silently running
  them on the reference engine would cache mislabelled results.

Adapters are module-level so a worker process can resolve the algorithm from
the spec's string name -- specs stay picklable and fingerprintable precisely
because they never carry callables.  All randomness comes from ``spec.seed``;
adapters must not draw from any other source, which is what makes serial and
parallel execution bit-identical.  Names starting with ``_`` are reserved for
private/test registrations and are excluded from the public catalog.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Tuple

from ..baselines.clique_sublinear import clique_sublinear_trial
from ..baselines.controlled_flooding import controlled_flooding_trial
from ..baselines.flood_max import flood_max_trial
from ..baselines.known_tmix import known_tmix_trial
from ..broadcast.flooding import flooding_trial
from ..broadcast.push_pull import push_pull_trial
from ..broadcast.spanning_tree import spanning_tree_trial
from ..core.result import TRIAL_KINDS, TrialOutcome
from ..core.runner import KNOWN_SIMULATORS, run_leader_election
from ..graphs.topology import Graph
from .spec import TrialSpec

__all__ = [
    "Algorithm",
    "ALGORITHMS",
    "algorithm_names",
    "fault_aware_algorithms",
    "get_algorithm",
    "register_algorithm",
]

AlgorithmRunner = Callable[[Graph, TrialSpec], TrialOutcome]


@dataclass(frozen=True)
class Algorithm:
    """One registry entry: a named runner plus its declared capabilities."""

    name: str
    runner: AlgorithmRunner
    fault_aware: bool = False
    needs_params: bool = False
    outcome_kind: str = "election"
    description: str = ""
    simulators: Tuple[str, ...] = ("reference",)

    def __post_init__(self) -> None:
        if self.outcome_kind not in TRIAL_KINDS:
            raise ValueError(
                "algorithm %r declares unknown outcome kind %r; expected one of %s"
                % (self.name, self.outcome_kind, ", ".join(TRIAL_KINDS))
            )
        if "reference" not in self.simulators:
            raise ValueError(
                "algorithm %r must support the 'reference' simulator (the "
                "bit-exactness oracle); declared %r" % (self.name, self.simulators)
            )
        for simulator in self.simulators:
            if simulator not in KNOWN_SIMULATORS:
                raise ValueError(
                    "algorithm %r declares unknown simulator %r; expected a "
                    "subset of %s"
                    % (self.name, simulator, ", ".join(KNOWN_SIMULATORS))
                )

    def run(self, graph: Graph, spec: TrialSpec) -> TrialOutcome:
        """Execute this algorithm on ``graph`` as described by ``spec``."""
        return self.runner(graph, spec)

    # ``get_algorithm`` used to return the bare runner callable; keeping the
    # entry itself callable preserves that calling convention for old code.
    __call__ = run


ALGORITHMS: Dict[str, Algorithm] = {}


def register_algorithm(
    name: str,
    *,
    fault_aware: bool = False,
    needs_params: bool = False,
    outcome_kind: str = "election",
    description: str = "",
    simulators: Tuple[str, ...] = ("reference",),
) -> Callable[[AlgorithmRunner], AlgorithmRunner]:
    """Register a runner under ``name`` with its capabilities (decorator form)."""

    def decorator(runner: AlgorithmRunner) -> AlgorithmRunner:
        if name in ALGORITHMS:
            raise ValueError("algorithm %r registered twice" % name)
        ALGORITHMS[name] = Algorithm(
            name=name,
            runner=runner,
            fault_aware=fault_aware,
            needs_params=needs_params,
            outcome_kind=outcome_kind,
            description=description,
            simulators=tuple(simulators),
        )
        return runner

    return decorator


def get_algorithm(name: str) -> Algorithm:
    """Look up a registered :class:`Algorithm` by name."""
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            "unknown algorithm %r; known algorithms: %s"
            % (name, ", ".join(sorted(ALGORITHMS)))
        ) from None


def algorithm_names(include_private: bool = False) -> List[str]:
    """Sorted registry names; ``_``-prefixed (test-only) entries are opt-in.

    >>> "election" in algorithm_names()
    True
    """
    return sorted(
        name for name in ALGORITHMS if include_private or not name.startswith("_")
    )


def fault_aware_algorithms() -> FrozenSet[str]:
    """Names of every registered algorithm that honours ``fault_plan``."""
    return frozenset(
        name for name, algorithm in ALGORITHMS.items() if algorithm.fault_aware
    )


def __getattr__(name: str):
    # Pre-registry code consulted a hand-maintained FAULT_AWARE_ALGORITHMS
    # set; capabilities now live on the Algorithm entries themselves.
    if name == "FAULT_AWARE_ALGORITHMS":
        warnings.warn(
            "FAULT_AWARE_ALGORITHMS is deprecated; capabilities live on the "
            "registry now -- use fault_aware_algorithms() or "
            "get_algorithm(name).fault_aware",
            DeprecationWarning,
            stacklevel=2,
        )
        return set(fault_aware_algorithms())
    raise AttributeError("module %r has no attribute %r" % (__name__, name))


# --------------------------------------------------------------------- paper
@register_algorithm(
    "election",
    fault_aware=True,
    needs_params=True,
    outcome_kind="election",
    description="the paper's Theorem 13 guess-and-double random-walk election",
    simulators=("reference", "vectorized"),
)
def _run_paper_election(graph: Graph, spec: TrialSpec) -> TrialOutcome:
    """The paper's Theorem 13 election; ``algo_kwargs`` may set ``known_n`` etc."""
    outcome = run_leader_election(
        graph,
        params=spec.params,
        seed=spec.seed,
        fault_plan=spec.effective_fault_plan,
        simulator=spec.simulator,
        **spec.algo_kwargs,
    )
    return TrialOutcome.from_election("election", outcome)


# ----------------------------------------------------------------- baselines
@register_algorithm(
    "known_tmix",
    fault_aware=True,
    needs_params=True,
    outcome_kind="election",
    description="Kutten et al. [25]: one oracle-length walk phase (t_mix known)",
    simulators=("reference", "vectorized"),
)
def _run_known_tmix(graph: Graph, spec: TrialSpec) -> TrialOutcome:
    """The Kutten et al. [25] baseline.

    ``algo_kwargs['mixing_time']`` pins the walk length; when omitted the
    exact mixing time is computed in the worker (deterministic per graph and
    memoised on the instance, so serial sweeps pay it once).
    """
    kwargs = dict(spec.algo_kwargs)
    t_mix = kwargs.pop("mixing_time", None)
    return known_tmix_trial(
        graph,
        t_mix,
        params=spec.params,
        seed=spec.seed,
        fault_plan=spec.effective_fault_plan,
        simulator=spec.simulator,
        **kwargs,
    )


@register_algorithm(
    "flood_max",
    fault_aware=True,
    description="flood the maximum id: O(D) rounds, Theta(m)+ messages",
)
def _run_flood_max(graph: Graph, spec: TrialSpec) -> TrialOutcome:
    return flood_max_trial(
        graph, seed=spec.seed, fault_plan=spec.effective_fault_plan, **spec.algo_kwargs
    )


@register_algorithm(
    "controlled_flooding",
    fault_aware=True,
    description="Theta(log n) random candidates flood ids: O(m log n) messages",
)
def _run_controlled_flooding(graph: Graph, spec: TrialSpec) -> TrialOutcome:
    return controlled_flooding_trial(
        graph, seed=spec.seed, fault_plan=spec.effective_fault_plan, **spec.algo_kwargs
    )


@register_algorithm(
    "clique_sublinear",
    fault_aware=True,
    description="Kutten et al. [25] clique-only sublinear sampling election",
)
def _run_clique_sublinear(graph: Graph, spec: TrialSpec) -> TrialOutcome:
    return clique_sublinear_trial(
        graph, seed=spec.seed, fault_plan=spec.effective_fault_plan, **spec.algo_kwargs
    )


# ----------------------------------------------------------------- broadcast
@register_algorithm(
    "flooding",
    fault_aware=True,
    outcome_kind="broadcast",
    description="forward-once flooding broadcast: Theta(m) messages",
)
def _run_flooding(graph: Graph, spec: TrialSpec) -> TrialOutcome:
    """``algo_kwargs``: ``sources`` (list, default ``[0]``), ``rumor``, ``max_rounds``."""
    kwargs = dict(spec.algo_kwargs)
    sources = tuple(kwargs.pop("sources", (0,)))
    return flooding_trial(
        graph,
        sources,
        seed=spec.seed,
        fault_plan=spec.effective_fault_plan,
        **kwargs,
    )


@register_algorithm(
    "push_pull",
    fault_aware=True,
    outcome_kind="broadcast",
    description="Karp et al. [22] push-pull gossip: O(n log n / phi) messages",
)
def _run_push_pull(graph: Graph, spec: TrialSpec) -> TrialOutcome:
    """``algo_kwargs``: ``sources`` (list, default ``[0]``), ``rumor``,
    ``push_rounds``, ``max_rounds``."""
    kwargs = dict(spec.algo_kwargs)
    sources = tuple(kwargs.pop("sources", (0,)))
    return push_pull_trial(
        graph,
        sources,
        seed=spec.seed,
        fault_plan=spec.effective_fault_plan,
        **kwargs,
    )


@register_algorithm(
    "spanning_tree",
    fault_aware=True,
    outcome_kind="spanning_tree",
    description="BFS-style spanning-tree construction: Theta(m) messages",
)
def _run_spanning_tree(graph: Graph, spec: TrialSpec) -> TrialOutcome:
    """``algo_kwargs``: ``root`` (default 0), ``max_rounds``."""
    return spanning_tree_trial(
        graph, seed=spec.seed, fault_plan=spec.effective_fault_plan, **spec.algo_kwargs
    )
