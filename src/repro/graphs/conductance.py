"""Graph conductance, exactly as defined in Section 2 of the paper.

For a cut ``K = (U, V \\ U)`` the cut-conductance is
``phi_K = |E_K| / min(Vol(U), Vol(V \\ U))`` and the conductance of the graph
is the minimum over all cuts.  Exact conductance is only computed for small
graphs (it enumerates all cuts); larger graphs use the spectral Cheeger bounds
and a Fiedler-vector sweep cut, which bracket the true value.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Optional, Set, Tuple

import numpy as np

from .spectra import normalized_laplacian_second_eigenvalue
from .topology import Graph

__all__ = [
    "cut_conductance",
    "exact_conductance",
    "sweep_cut_conductance",
    "cheeger_bounds",
    "ConductanceEstimate",
    "estimate_conductance",
]

_EXACT_LIMIT = 22


def cut_conductance(graph: Graph, side: Iterable[int]) -> float:
    """Conductance of the specific cut ``(side, V \\ side)``.

    Raises ``ValueError`` when ``side`` is empty or covers the whole vertex
    set, because the paper's definition only ranges over proper cuts.
    """
    side_set = set(side)
    if not side_set or len(side_set) >= graph.num_nodes:
        raise ValueError("a cut must have non-empty sides")
    crossing = graph.cut_edges(side_set)
    vol_side = graph.volume(side_set)
    vol_other = graph.total_volume() - vol_side
    denominator = min(vol_side, vol_other)
    if denominator == 0:
        # The smaller side consists only of isolated vertices; the paper's
        # graphs are connected so treat this as "maximally bottlenecked".
        return float("inf") if crossing else 0.0
    return crossing / denominator


def exact_conductance(graph: Graph, limit: int = _EXACT_LIMIT) -> float:
    """Exact conductance by enumerating every cut (exponential; small graphs only).

    ``limit`` guards against accidentally launching a ``2**n`` enumeration on a
    large graph.
    """
    n = graph.num_nodes
    if n > limit:
        raise ValueError(
            "exact conductance enumerates 2^n cuts; n=%d exceeds the limit %d" % (n, limit)
        )
    if n < 2:
        raise ValueError("conductance needs at least two nodes")
    best = float("inf")
    nodes = list(graph.nodes())
    # It suffices to enumerate subsets containing node 0 (each cut is counted once).
    rest = nodes[1:]
    for size in range(0, n - 1):
        for combo in itertools.combinations(rest, size):
            side = {0, *combo}
            best = min(best, cut_conductance(graph, side))
    return best


def sweep_cut_conductance(graph: Graph) -> Tuple[float, Set[int]]:
    """Upper bound on conductance from a Fiedler-vector sweep cut.

    Orders vertices by their entry in the second eigenvector of the normalized
    Laplacian and takes the best prefix cut.  This is the standard Cheeger
    sweep and always yields a *valid* cut, hence an upper bound on ``phi``.
    """
    n = graph.num_nodes
    if n < 2:
        raise ValueError("conductance needs at least two nodes")
    degrees = np.array(graph.degrees(), dtype=float)
    if np.any(degrees == 0):
        raise ValueError("sweep cut requires a graph without isolated vertices")
    adjacency = graph.adjacency_matrix()
    d_inv_sqrt = 1.0 / np.sqrt(degrees)
    lap = np.eye(n) - (adjacency * d_inv_sqrt).T * d_inv_sqrt
    lap = (lap + lap.T) / 2.0
    _, vectors = np.linalg.eigh(lap)
    fiedler = vectors[:, 1] * d_inv_sqrt
    order = np.argsort(fiedler)
    best_value = float("inf")
    best_side: Set[int] = {int(order[0])}
    side: Set[int] = set()
    for idx in order[:-1]:
        side.add(int(idx))
        value = cut_conductance(graph, side)
        if value < best_value:
            best_value = value
            best_side = set(side)
    return best_value, best_side


def cheeger_bounds(graph: Graph) -> Tuple[float, float]:
    """Cheeger bounds ``lambda_2 / 2 <= phi <= sqrt(2 * lambda_2)``.

    ``lambda_2`` is the second-smallest eigenvalue of the normalized
    Laplacian.  These bracket the true conductance for any connected graph.
    """
    lam2 = normalized_laplacian_second_eigenvalue(graph)
    lam2 = max(lam2, 0.0)
    return lam2 / 2.0, float(np.sqrt(2.0 * lam2))


@dataclass
class ConductanceEstimate:
    """Bundle of conductance information returned by :func:`estimate_conductance`."""

    lower_bound: float
    upper_bound: float
    sweep_value: float
    exact_value: Optional[float]

    @property
    def best_estimate(self) -> float:
        """The most accurate single number available."""
        if self.exact_value is not None:
            return self.exact_value
        return self.sweep_value


def estimate_conductance(graph: Graph, exact_limit: int = _EXACT_LIMIT) -> ConductanceEstimate:
    """Estimate conductance: exact for tiny graphs, bracketed otherwise."""
    lower, upper = cheeger_bounds(graph)
    sweep_value, _ = sweep_cut_conductance(graph)
    exact_value = None
    if graph.num_nodes <= exact_limit:
        exact_value = exact_conductance(graph, limit=exact_limit)
    upper = min(upper, sweep_value)
    return ConductanceEstimate(
        lower_bound=lower,
        upper_bound=upper,
        sweep_value=sweep_value,
        exact_value=exact_value,
    )
