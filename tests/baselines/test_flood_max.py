"""Tests for the flood-max baseline."""

from repro.baselines import run_flood_max_election
from repro.graphs import complete_graph, cycle_graph, expander_graph, path_graph


class TestFloodMax:
    def test_unique_leader_on_expander(self):
        outcome = run_flood_max_election(expander_graph(48, seed=1), seed=2)
        assert outcome.success
        assert outcome.num_leaders == 1

    def test_unique_leader_on_path(self):
        outcome = run_flood_max_election(path_graph(20), seed=3)
        assert outcome.success

    def test_rounds_track_eccentricity_of_winner(self):
        graph = path_graph(24)
        outcome = run_flood_max_election(graph, seed=4)
        # The winning id must travel at least the winner's eccentricity, which
        # is at least half the diameter on a path.
        assert outcome.rounds >= graph.diameter() // 2 - 1

    def test_message_cost_is_at_least_m(self):
        graph = complete_graph(24)
        outcome = run_flood_max_election(graph, seed=5)
        assert outcome.messages >= graph.total_volume() / 2

    def test_every_node_participates(self):
        outcome = run_flood_max_election(cycle_graph(12), seed=6)
        assert outcome.contenders == 12

    def test_deterministic_given_seed(self):
        graph = expander_graph(32, seed=7)
        a = run_flood_max_election(graph, seed=8)
        b = run_flood_max_election(graph, seed=8)
        assert a.leaders == b.leaders
        assert a.messages == b.messages

    def test_record_shape(self):
        record = run_flood_max_election(cycle_graph(10), seed=9).as_record()
        assert record["success"] is True
        assert record["messages"] > 0
        assert record["num_nodes"] == 10
