"""repro.faults -- deterministic fault injection and adversarial scheduling.

The paper's model is perfectly synchronous and fault free; this subsystem
asks what happens when it is not.  It has exactly two halves:

* :class:`FaultPlan` and its component models (:class:`MessageFaults`,
  :class:`CrashFaults`, :class:`DelayFaults`, :class:`EdgeFaults`) -- plain
  data describing a composable adversary, fingerprintable and picklable so
  fault parameters participate in executor caching and process parallelism;
* :class:`FaultInjector` -- the runtime object the simulator consults at
  send and activation time, drawing every decision from SplitMix64 streams
  derived from ``(master seed, plan fingerprint)`` so faulty runs replay
  bit-for-bit.

Quickstart::

    from repro import expander_graph, run_leader_election
    from repro.faults import FaultPlan

    graph = expander_graph(128, seed=7)
    outcome = run_leader_election(graph, seed=42, fault_plan=FaultPlan.dropping(0.05))
    print(outcome.classification, outcome.metrics.fault_events)
"""

from .injector import FAULT_EVENT_KINDS, FaultInjector
from .plan import CrashFaults, DelayFaults, EdgeFaults, FaultPlan, MessageFaults

__all__ = [
    "FaultPlan",
    "MessageFaults",
    "CrashFaults",
    "DelayFaults",
    "EdgeFaults",
    "FaultInjector",
    "FAULT_EVENT_KINDS",
]
