"""Property suite: every cache backend is observationally equivalent.

The pluggable backends (JSON tree, SQLite database) must be interchangeable
*implementations* of the same cache: for every registered algorithm on every
simulator it declares, a campaign run against a SQLite cache has to produce
byte-identical reports, the same manifest (up to timestamps), and the same
fingerprint hit/miss behaviour as the same campaign against a JSON-tree
cache.  Sharded runs merged across ``m`` machines must report byte-identical
to the single-machine run regardless of which backend each shard used.
"""

import json
import os

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, write_report
from repro.core import ElectionParameters
from repro.exec import (
    BatchRunner,
    GraphSpec,
    ResultCache,
    Shard,
    SweepSpec,
    TrialSpec,
    cache_backend_names,
    make_cache_backend,
    trial_fingerprint,
)
from repro.exec.cache import aggregate_summaries
from repro.exec.algorithms import algorithm_names, get_algorithm

FAST = ElectionParameters(c1=3.0, c2=0.5)

BACKENDS = cache_backend_names()

#: Every (algorithm, simulator) pair the registry declares.
MATRIX = [
    (name, simulator)
    for name in algorithm_names()
    for simulator in get_algorithm(name).simulators
]


def _trial(algorithm, simulator="reference", graph_size=8):
    params = {"params": FAST} if get_algorithm(algorithm).needs_params else {}
    return TrialSpec(
        graph=GraphSpec("clique", (graph_size,)),
        algorithm=algorithm,
        simulator=simulator,
        **params,
    )


def _campaign(configs, trials=2, name="equivalence"):
    return CampaignSpec(
        name=name,
        sweeps=(
            SweepSpec(name="main", configs=tuple(configs), trials=trials, base_seed=7),
        ),
    )


def _run(campaign, directory, backend, shard=None):
    """Run ``campaign`` into ``directory`` on ``backend``; return its cache."""
    cache = ResultCache(os.path.join(directory, "cache"), backend=backend)
    runner = CampaignRunner(
        campaign, cache, workers=1, directory=directory, shard=shard
    )
    runner.run()
    return cache


def _report_bytes(campaign, cache, directory):
    _, json_path = write_report(campaign, cache, directory)
    with open(json_path, "rb") as handle:
        return handle.read()


def _normalized_manifest(directory):
    """manifest.json minus wall-clock noise (created / per-trial timings)."""
    with open(os.path.join(directory, "manifest.json"), "r", encoding="utf-8") as handle:
        document = json.load(handle)
    document.pop("created", None)
    for trial in document["trials"]:
        trial.pop("elapsed_seconds", None)
    return document


class TestCampaignEquivalence:
    @pytest.mark.parametrize("algorithm,simulator", MATRIX)
    def test_backends_agree_for_every_algorithm(self, tmp_path, algorithm, simulator):
        """Same campaign, every backend: byte-identical report.json, the same
        manifest up to timestamps, the same cache-hit accounting."""
        campaign = _campaign([_trial(algorithm, simulator)])
        artifacts = {}
        for backend in BACKENDS:
            directory = str(tmp_path / backend)
            cache = _run(campaign, directory, backend)
            artifacts[backend] = (
                _report_bytes(campaign, cache, directory),
                _normalized_manifest(directory),
                cache.stats().entries,
            )
        reference = artifacts[BACKENDS[0]]
        for backend in BACKENDS[1:]:
            report, manifest, entries = artifacts[backend]
            assert report == reference[0], "report.json differs on %s" % backend
            assert manifest == reference[1]
            assert entries == reference[2]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_resume_serves_every_trial_from_cache(self, tmp_path, backend):
        campaign = _campaign([_trial("election"), _trial("flood_max")], trials=3)
        directory = str(tmp_path / "campaign")
        _run(campaign, directory, backend)
        cache = ResultCache(os.path.join(directory, "cache"), backend=backend)
        result = CampaignRunner(campaign, cache, workers=1, directory=directory).run()
        assert result.executed == 0
        assert result.cache_hits == campaign.num_trials

    @pytest.mark.parametrize("shards", [2, 3])
    def test_sharded_merges_report_byte_identical(self, tmp_path, shards):
        """m shard caches (each on its own backend) merged into one SQLite
        cache report byte-identically to the single-machine JSON run."""
        campaign = _campaign(
            [_trial("election"), _trial("flood_max"), _trial("spanning_tree")],
            trials=3,
            name="sharded",
        )
        single_dir = str(tmp_path / "single")
        single = _run(campaign, single_dir, "json")
        expected = _report_bytes(campaign, single, single_dir)

        merged = ResultCache(str(tmp_path / "merged"), backend="sqlite")
        for index in range(shards):
            backend = BACKENDS[index % len(BACKENDS)]
            shard_dir = str(tmp_path / ("shard-%d-of-%d" % (index, shards)))
            shard_cache = _run(
                campaign, shard_dir, backend, shard=Shard(index, shards)
            )
            merged.merge_from(shard_cache)
        assert len(merged) == campaign.num_trials
        assert _report_bytes(campaign, merged, str(tmp_path / "merged-report")) == expected


class TestHitMissParity:
    def test_hit_miss_accounting_is_backend_independent(self, tmp_path):
        specs = [_trial("election"), _trial("flooding")]
        counts = {}
        for backend in BACKENDS:
            cache = ResultCache(tmp_path / backend, backend=backend)
            runner = BatchRunner(workers=1, cache=cache)
            runner.run(specs)  # all misses
            runner.run(specs)  # all hits
            stats = cache.stats()
            counts[backend] = (stats.hits, stats.misses, stats.entries)
        assert len(set(counts.values())) == 1
        assert counts[BACKENDS[0]] == (len(specs), len(specs), len(specs))

    def test_entries_agree_across_backends(self, tmp_path):
        """The full stored documents -- trial, outcome, label -- are equal."""
        specs = [_trial("election"), _trial("push_pull")]
        documents = {}
        for backend in BACKENDS:
            cache = ResultCache(tmp_path / backend, backend=backend)
            BatchRunner(workers=1, cache=cache).run(specs)
            documents[backend] = {
                entry["fingerprint"]: {
                    key: value
                    for key, value in entry.items()
                    if key not in ("created", "elapsed_seconds")
                }
                for entry in cache.entries()
            }
        reference = documents[BACKENDS[0]]
        for backend in BACKENDS[1:]:
            assert documents[backend] == reference


class TestCrossBackendMerge:
    @pytest.mark.parametrize("source_backend", BACKENDS)
    @pytest.mark.parametrize("target_backend", BACKENDS)
    def test_merge_between_any_backend_pair(self, tmp_path, source_backend, target_backend):
        source = ResultCache(tmp_path / "source", backend=source_backend)
        target = ResultCache(tmp_path / "target", backend=target_backend)
        spec = _trial("election")
        BatchRunner(workers=1, cache=source).run([spec])
        assert target.merge_from(source) == 1
        assert target.merge_from(source) == 0  # already present: skipped
        assert target.get(trial_fingerprint(spec)) is not None
        hit = BatchRunner(workers=1, cache=target).run([spec])[0]
        assert hit.from_cache


class TestSqliteMergeWatermarks:
    """SQLite-to-SQLite merges are incremental: each database carries a
    ``store_uid`` and the target remembers, per source uid, the highest
    source rowid it has ingested.  Re-merging an unchanged source scans
    nothing; operations that can reissue rowids (delete, compact) rotate
    the uid and safely force the next merge back to a full scan.
    """

    def _sqlite(self, tmp_path, name, specs=()):
        cache = ResultCache(tmp_path / name, backend="sqlite")
        if specs:
            BatchRunner(workers=1, cache=cache).run(list(specs))
        return cache

    def test_repeat_merges_ingest_only_new_rows(self, tmp_path):
        source = self._sqlite(tmp_path, "source", [_trial("election")])
        target = self._sqlite(tmp_path, "target", [_trial("flooding")])
        assert target.merge_from(source) == 1
        assert target.merge_from(source) == 0, "unchanged source: nothing scanned"
        BatchRunner(workers=1, cache=source).run([_trial("flood_max")])
        assert target.merge_from(source) == 1, "only the row past the watermark"
        # The watermark now sits at the source's newest rowid.
        watermark = target._backend.merge_watermark(source._backend)
        (source_max,) = source._backend._connection.execute(
            "SELECT MAX(rowid) FROM entries"
        ).fetchone()
        assert watermark == source_max

    def test_target_prune_is_not_undone_by_remerging_a_seen_source(self, tmp_path):
        """The one deliberate semantic change: entries pruned from the
        *target* stay pruned when an already-seen source is merged again;
        ``reset_merge_watermarks`` is the explicit escape hatch."""
        spec = _trial("election")
        source = self._sqlite(tmp_path, "source", [spec])
        target = self._sqlite(tmp_path, "target", [_trial("flooding")])
        assert target.merge_from(source) == 1
        assert target._backend.delete([trial_fingerprint(spec)]) == 1
        assert target.merge_from(source) == 0, "seen rows are not rescanned"
        assert target.get(trial_fingerprint(spec)) is None
        assert target._backend.reset_merge_watermarks() == 1
        assert target.merge_from(source) == 1, "after the reset, a full rescan"
        assert target.get(trial_fingerprint(spec)) is not None

    def test_source_delete_rotates_its_uid_and_forces_a_full_rescan(self, tmp_path):
        dropped = _trial("election")
        source = self._sqlite(tmp_path, "source", [dropped, _trial("flooding")])
        target = self._sqlite(tmp_path, "target", [_trial("spanning_tree")])
        assert target.merge_from(source) == 2
        uid_before = source._backend.store_uid
        assert source._backend.delete([trial_fingerprint(dropped)]) == 1
        assert source._backend.store_uid != uid_before, "delete reissues rowids"
        BatchRunner(workers=1, cache=source).run([_trial("flood_max")])
        # The old watermark is keyed by the old uid, so the merge rescans
        # the whole source: the new row lands, the seen ones are skipped.
        assert target.merge_from(source) == 1
        assert len(target) == 4

    def test_source_compact_rotates_its_uid(self, tmp_path):
        source = self._sqlite(tmp_path, "source", [_trial("election")])
        uid_before = source._backend.store_uid
        source.compact()
        assert source._backend.store_uid != uid_before

    def test_backup_fast_path_into_an_empty_target_sets_the_watermark(self, tmp_path):
        source = self._sqlite(
            tmp_path, "source", [_trial("election"), _trial("flooding")]
        )
        target = self._sqlite(tmp_path, "target")
        assert target.merge_from(source) == 2
        # The page-level copy duplicated the source's meta table; the target
        # must end up with an identity of its own, already caught up.
        assert target._backend.store_uid != source._backend.store_uid
        assert target.merge_from(source) == 0

    def test_json_sources_merge_without_watermarks(self, tmp_path):
        """A file tree has no stable row order: JSON-source merges stay
        full-scan (and stay idempotent through INSERT OR IGNORE)."""
        source = ResultCache(tmp_path / "source", backend="json")
        BatchRunner(workers=1, cache=source).run([_trial("election")])
        target = self._sqlite(tmp_path, "target")
        assert target.merge_from(source) == 1
        assert target.merge_from(source) == 0


class TestAggregateParity:
    """The report fold (``aggregate``) matches the reference fold exactly.

    SQLite pushes the per-configuration fold into the database (``GROUP BY``
    over the summary index); the JSON tree folds its summary rows in Python.
    Both must equal :func:`repro.exec.cache.aggregate_summaries` applied to
    the backend's own ``summaries()`` stream -- the exact-integer property
    that keeps report.json byte-identical across backends.
    """

    def _filled(self, tmp_path, backend):
        cache = ResultCache(tmp_path / backend, backend=backend)
        runner = BatchRunner(workers=1, cache=cache)
        specs = [
            _trial("election"),
            _trial("flood_max"),
            _trial("spanning_tree"),
            _trial("election", graph_size=12),
        ]
        runner.run(specs)
        return cache, [trial_fingerprint(spec) for spec in specs]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_aggregate_matches_reference_fold(self, tmp_path, backend):
        cache, fingerprints = self._filled(tmp_path, backend)
        # Include misses and a duplicate: requested counts distinct prints.
        requested = fingerprints + ["f" * 64, fingerprints[0]]
        distinct = list(dict.fromkeys(requested))
        expected = aggregate_summaries(
            len(distinct), cache._backend.summaries(distinct)
        )
        assert cache._backend.aggregate(requested) == expected
        assert expected.requested == len(distinct)
        assert expected.done == len(fingerprints)

    def test_aggregates_agree_across_backends(self, tmp_path):
        folds = {}
        for backend in BACKENDS:
            cache, fingerprints = self._filled(tmp_path, backend)
            misses_after_fill = cache.stats().misses
            folds[backend] = cache.get_summary_aggregate(fingerprints)
            stats = cache.stats()
            # The aggregate counted every fingerprint as a hit and added no
            # misses beyond the fill run's own.
            assert (stats.hits, stats.misses) == (
                len(fingerprints),
                misses_after_fill,
            )
        assert folds["json"] == folds["sqlite"]

    def test_aggregate_of_nothing_is_empty(self, tmp_path):
        for backend in BACKENDS:
            cache = ResultCache(tmp_path / backend, backend=backend)
            aggregate = cache.get_summary_aggregate([])
            assert aggregate.requested == 0
            assert aggregate.done == 0
            assert aggregate.kind is None
            assert aggregate.classification_counts == ()


class TestBackendSurface:
    def test_registry_lists_both_backends(self):
        assert BACKENDS == ("json", "sqlite")
        with pytest.raises(KeyError, match="json"):
            make_cache_backend("mongodb", "/nonexistent")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stats_name_the_backend(self, tmp_path, backend):
        cache = ResultCache(tmp_path, backend=backend)
        assert cache.stats().backend == backend
        assert cache.backend_name == backend

    def test_path_for_raises_clearly_on_sqlite(self, tmp_path):
        cache = ResultCache(tmp_path, backend="sqlite")
        with pytest.raises(NotImplementedError, match="sqlite"):
            cache.path_for("ab" * 32)

    def test_sqlite_marker_wins_over_default(self, tmp_path):
        ResultCache(tmp_path, backend="sqlite").close()
        reopened = ResultCache(tmp_path)  # no explicit backend
        assert reopened.backend_name == "sqlite"

    def test_env_var_selects_backend_for_fresh_roots(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "sqlite")
        assert ResultCache(tmp_path / "fresh").backend_name == "sqlite"
        # An explicit argument always beats the environment.
        assert ResultCache(tmp_path / "other", backend="json").backend_name == "json"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_prune_and_compact_on_each_backend(self, tmp_path, backend):
        cache = ResultCache(tmp_path, backend=backend)
        runner = BatchRunner(workers=1, cache=cache)
        for spec in (_trial("election"), _trial("flooding"), _trial("flood_max")):
            runner.run([spec])
        assert cache.stats().entries == 3
        assert cache.prune(max_entries=1) == 2
        assert cache.stats().entries == 1
        cache.compact()
        assert cache.stats().entries == 1
