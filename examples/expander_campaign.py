#!/usr/bin/env python3
"""Scaling campaign on well-connected families (experiments E1 and E2).

Sweeps the network size on expanders and hypercubes, measures messages and
rounds of the election, compares them with the Theorem 13 reference curves and
fits the scaling exponent of messages versus ``n``.  The paper's claim is that
messages grow like ``sqrt(n)`` times polylog factors (times ``t_mix``), far
below the ``Theta(m) = Theta(n)`` cost of flooding-based algorithms.

Trials execute through the ``repro.exec`` batch runner: ``--workers N`` runs
them on ``N`` processes (results are bit-identical to the serial run) and
``--cache DIR`` persists per-trial results so interrupted or repeated
campaigns only pay for trials they have not yet run.

Run with::

    python examples/expander_campaign.py [--quick] [--workers N] [--cache DIR]
"""

from __future__ import annotations

import argparse

from repro.analysis import (
    fit_power_law,
    format_table,
    scaling_sweep,
    upper_bound_messages_large,
)
from repro.exec import ResultCache, TextReporter, default_worker_count
from repro.graphs import expander_graph, hypercube_graph


def sweep_family(name, builder, sizes, trials, workers, cache):
    print("\n=== %s ===" % name)
    records = scaling_sweep(
        builder,
        sizes,
        trials=trials,
        base_seed=11,
        workers=workers,
        cache=cache,
        reporter=TextReporter(prefix=name),
    )
    rows = []
    for record in records:
        row = record.as_dict()
        row["bound_msgs"] = round(
            upper_bound_messages_large(record.num_nodes, max(1, record.mixing_time)), 1
        )
        rows.append(row)
    print(format_table(rows))
    fit = fit_power_law(
        [record.num_nodes for record in records],
        [record.mean_messages for record in records],
    )
    print("message scaling fit: %s" % fit)
    print("(sqrt(n)*polylog corresponds to an exponent of ~0.5-0.8 over wide sweeps; "
          "flood-style baselines sit at >= 1.0.  Fits over only 2-3 sizes with a "
          "single trial are noisy -- run without --quick for the real campaign.)")
    return records


def main(quick: bool = False, workers: int = 1, cache_dir: str = "") -> None:
    if quick:
        expander_sizes = [64, 128]
        hypercube_dims = [5, 6]
        trials = 1
    else:
        expander_sizes = [64, 128, 256, 512]
        hypercube_dims = [5, 6, 7, 8]
        trials = 2

    cache = ResultCache(cache_dir) if cache_dir else None
    sweep_family(
        "random 4-regular expanders (E1)",
        lambda n, seed: expander_graph(n, degree=4, seed=seed),
        expander_sizes,
        trials,
        workers,
        cache,
    )
    sweep_family(
        "hypercubes (E2)",
        lambda n, seed: hypercube_graph(max(2, n.bit_length() - 1)),
        [2**d for d in hypercube_dims],
        trials,
        workers,
        cache,
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="tiny sweep for a fast sanity check")
    parser.add_argument(
        "--workers",
        type=int,
        default=default_worker_count(),
        help="worker processes for the batch runner (default: CPU count)",
    )
    parser.add_argument(
        "--cache", default="", metavar="DIR", help="result-cache directory (default: no cache)"
    )
    arguments = parser.parse_args()
    main(quick=arguments.quick, workers=arguments.workers, cache_dir=arguments.cache)
