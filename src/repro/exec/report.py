"""Progress and summary reporting for batch campaigns.

Progress is delivered through the :mod:`repro.obs` sink API: the runner
emits ``batch.started`` / ``trial.finished`` / ``batch.finished`` trace
events, and anything that wants live progress subscribes a
:class:`~repro.obs.tracer.TraceSink` (``BatchRunner(sinks=...)`` or the
process-wide tracer).  :class:`ProgressSink` is the stock terminal renderer;
the historical :class:`ProgressReporter` observer interface survives as a
deprecated shim bridged by :class:`ReporterSink`, so
``BatchRunner(reporter=...)`` keeps working.  ``BatchSummary.effective_parallelism``
is compute-seconds over wall-seconds -- the measured speedup the pool
actually delivered, which the scaling benchmarks log.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, TextIO

from ..obs.tracer import TraceSink

__all__ = [
    "BatchSummary",
    "ProgressReporter",
    "NullReporter",
    "TextReporter",
    "ReporterSink",
    "ProgressSink",
]


@dataclass
class BatchSummary:
    """What one ``BatchRunner.run`` call did, in aggregate."""

    trials: int
    #: Trials that ran to a successful outcome this call (cache hits and
    #: captured failures excluded) -- matches ``CampaignResult.executed``.
    executed: int
    cache_hits: int
    workers: int
    wall_seconds: float
    compute_seconds: float
    #: Trials that raised under ``on_error="capture"`` (always 0 otherwise).
    failures: int = 0

    @property
    def effective_parallelism(self) -> float:
        """Measured speedup: total trial compute time over wall-clock time."""
        if self.wall_seconds <= 0:
            return 1.0
        return self.compute_seconds / self.wall_seconds

    def __str__(self) -> str:
        failed = ", %d FAILED" % self.failures if self.failures else ""
        return (
            "%d trials (%d executed, %d cached%s) on %d worker(s) in %.2fs "
            "wall / %.2fs compute (x%.2f effective)"
            % (
                self.trials,
                self.executed,
                self.cache_hits,
                failed,
                self.workers,
                self.wall_seconds,
                self.compute_seconds,
                self.effective_parallelism,
            )
        )


class ProgressReporter:
    """Legacy observer interface; subclass and override what you need.

    .. deprecated::
        New code should subscribe a :class:`~repro.obs.tracer.TraceSink`
        (``BatchRunner(sinks=...)``) instead; existing reporters keep
        working through :class:`ReporterSink`, which is exactly what the
        ``BatchRunner(reporter=...)`` shim wraps them in.
    """

    def batch_started(self, total: int, workers: int) -> None:
        """Called once before the first trial is dispatched."""

    def trial_finished(self, result, done: int, total: int) -> None:
        """Called after every trial (``result`` is a ``TrialResult``)."""

    def batch_finished(self, summary: BatchSummary) -> None:
        """Called once after the last trial completed."""


class NullReporter(ProgressReporter):
    """The default: no output."""


class TextReporter(ProgressReporter):
    """Plain-text progress lines, suitable for long campaigns on a terminal."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        every: int = 1,
        prefix: str = "exec",
        keep_lines: bool = False,
    ) -> None:
        if every < 1:
            raise ValueError("every must be at least 1")
        self.stream = stream if stream is not None else sys.stderr
        self.every = every
        self.prefix = prefix
        # Retention is opt-in: long campaigns emit one line per trial, and an
        # always-on transcript would grow for the reporter's whole lifetime.
        self.keep_lines = keep_lines
        self.lines: List[str] = []

    def _emit(self, line: str) -> None:
        if self.keep_lines:
            self.lines.append(line)
        self.stream.write(line + "\n")
        self.stream.flush()

    def batch_started(self, total: int, workers: int) -> None:
        """Announce the batch size and worker count."""
        self._emit("[%s] %d trial(s) on %d worker(s)" % (self.prefix, total, workers))

    def trial_finished(self, result, done: int, total: int) -> None:
        """Emit one progress line per ``every`` trials; failures always print."""
        outcome = result.outcome
        if outcome is None:
            self._emit(
                "[%s] %d/%d %s: FAILED (%s)"
                % (self.prefix, done, total, result.spec.describe(), result.error)
            )
            return
        if done % self.every and done != total:
            return
        self._emit(
            "[%s] %d/%d %s: messages=%d rounds=%d leaders=%d%s"
            % (
                self.prefix,
                done,
                total,
                result.spec.describe(),
                outcome.messages,
                outcome.rounds,
                outcome.num_leaders,
                " (cached)" if result.from_cache else "",
            )
        )

    def batch_finished(self, summary: BatchSummary) -> None:
        """Emit the aggregate wall/compute-time summary line."""
        self._emit("[%s] %s" % (self.prefix, summary))


class ReporterSink(TraceSink):
    """Bridge a legacy :class:`ProgressReporter` onto the trace-sink API.

    The batch runner's progress events carry the live objects the old
    observer interface handed out (the :class:`TrialResult` under
    ``attrs["_result"]``, the :class:`BatchSummary` under
    ``attrs["_summary"]``) -- underscore-prefixed, so serialising sinks drop
    them while this same-process bridge can replay the exact historical
    callbacks.  Events of other layers (simulator rounds, worker heartbeats)
    are ignored: reporters never saw those.
    """

    def __init__(self, reporter: ProgressReporter) -> None:
        self.reporter = reporter

    def emit(self, record: Dict[str, object]) -> None:
        name = record.get("name")
        attrs = record.get("attrs", {})
        if name == "batch.started":
            self.reporter.batch_started(attrs["total"], attrs["workers"])
        elif name == "trial.finished" and "_result" in attrs:
            self.reporter.trial_finished(attrs["_result"], attrs["done"], attrs["total"])
        elif name == "batch.finished" and "_summary" in attrs:
            self.reporter.batch_finished(attrs["_summary"])


class ProgressSink(ReporterSink):
    """The stock terminal progress renderer, as a trace sink.

    Same lines as :class:`TextReporter` (it wraps one), subscribed the new
    way: ``BatchRunner(sinks=(ProgressSink(prefix="e1", every=4),))``.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        every: int = 1,
        prefix: str = "exec",
        keep_lines: bool = False,
    ) -> None:
        super().__init__(
            TextReporter(stream=stream, every=every, prefix=prefix, keep_lines=keep_lines)
        )

    @property
    def lines(self) -> List[str]:
        """Retained lines when ``keep_lines`` was set (see TextReporter)."""
        return self.reporter.lines
