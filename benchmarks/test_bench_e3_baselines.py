"""E3 -- comparison against prior-work baselines.

The paper positions its algorithm against (a) the Omega(m)-message bound that
any flooding-style algorithm pays [24], and (b) the sublinear algorithm of
[25] that needs t_mix as an input.  On dense well-connected graphs (cliques)
the random-walk elections use fewer messages than every flooding baseline, and
the paper's algorithm matches the known-t_mix baseline up to the
guess-and-double overhead while not needing the mixing time at all.
"""

import pytest

from repro.baselines import (
    run_clique_sublinear_election,
    run_controlled_flooding_election,
    run_flood_max_election,
    run_known_tmix_election,
)
from repro.core import run_leader_election
from repro.graphs import complete_graph, expander_graph, mixing_time

SEED = 4242
N_CLIQUE = 128

_CACHE = {}


def _clique():
    if "clique" not in _CACHE:
        _CACHE["clique"] = complete_graph(N_CLIQUE)
    return _CACHE["clique"]


@pytest.mark.parametrize(
    "algorithm",
    ["this_paper", "known_tmix", "flood_max", "controlled_flooding", "clique_sublinear"],
)
def test_e3_clique_comparison(benchmark, algorithm):
    graph = _clique()
    t_mix = mixing_time(graph)

    def run():
        if algorithm == "this_paper":
            return run_leader_election(graph, seed=SEED)
        if algorithm == "known_tmix":
            return run_known_tmix_election(graph, t_mix, seed=SEED)
        if algorithm == "flood_max":
            return run_flood_max_election(graph, seed=SEED)
        if algorithm == "controlled_flooding":
            return run_controlled_flooding_election(graph, seed=SEED)
        return run_clique_sublinear_election(graph, seed=SEED)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    _CACHE[algorithm] = outcome
    benchmark.extra_info.update(
        {
            "algorithm": algorithm,
            "n": graph.num_nodes,
            "m": graph.num_edges,
            "messages": outcome.messages,
            "rounds": outcome.rounds,
            "leaders": outcome.num_leaders,
        }
    )
    assert outcome.num_leaders <= 1


def test_e3_who_wins_on_dense_graphs(benchmark):
    """The paper's algorithm beats both flooding baselines on K_n in messages."""

    def collect():
        graph = _clique()
        t_mix = mixing_time(graph)
        ours = _CACHE.get("this_paper") or run_leader_election(graph, seed=SEED)
        flood = _CACHE.get("flood_max") or run_flood_max_election(graph, seed=SEED)
        controlled = _CACHE.get("controlled_flooding") or run_controlled_flooding_election(
            graph, seed=SEED
        )
        oracle = _CACHE.get("known_tmix") or run_known_tmix_election(graph, t_mix, seed=SEED)
        return ours, flood, controlled, oracle

    ours, flood, controlled, oracle = benchmark.pedantic(collect, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "ours": ours.messages,
            "flood_max": flood.messages,
            "controlled_flooding": controlled.messages,
            "known_tmix": oracle.messages,
            "m": _clique().num_edges,
        }
    )
    assert ours.messages < flood.messages
    assert ours.messages < controlled.messages
    # Not knowing t_mix costs at most the guess-and-double overhead.
    assert ours.messages <= 12 * max(1, oracle.messages)


def test_e3_expander_exponents(benchmark):
    """On sparse expanders the comparison is by growth rate, not absolute cost."""
    from repro.analysis import fit_power_law

    sizes = [64, 128, 256]

    def collect():
        ours, flood = [], []
        for n in sizes:
            graph = expander_graph(n, degree=4, seed=SEED + n)
            ours.append(run_leader_election(graph, seed=SEED + n).messages)
            flood.append(run_flood_max_election(graph, seed=SEED + n).messages)
        return fit_power_law(sizes, ours), fit_power_law(sizes, flood)

    ours_fit, flood_fit = benchmark.pedantic(collect, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "ours_exponent": round(ours_fit.exponent, 3),
            "flood_max_exponent": round(flood_fit.exponent, 3),
        }
    )
    # Flood-max grows at least linearly with n on constant-degree graphs.
    assert flood_fit.exponent >= 0.9
