"""Unit tests for the graph generators."""

import pytest

from repro.graphs import (
    FAMILIES,
    barbell_graph,
    binary_tree_graph,
    complete_bipartite_graph,
    complete_graph,
    connected_erdos_renyi_graph,
    cycle_graph,
    erdos_renyi_graph,
    expander_graph,
    get_family,
    grid_graph,
    hypercube_graph,
    lollipop_graph,
    path_graph,
    random_regular_graph,
    star_graph,
    torus_graph,
)


class TestDeterministicFamilies:
    def test_complete_graph_edge_count(self):
        graph = complete_graph(7)
        assert graph.num_edges == 21
        assert all(graph.degree(v) == 6 for v in graph.nodes())

    def test_cycle_graph(self):
        graph = cycle_graph(9)
        assert graph.num_edges == 9
        assert all(graph.degree(v) == 2 for v in graph.nodes())
        assert graph.is_connected()

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_path_graph(self):
        graph = path_graph(5)
        assert graph.num_edges == 4
        assert graph.degree(0) == 1
        assert graph.degree(2) == 2

    def test_star_graph(self):
        graph = star_graph(6)
        assert graph.degree(0) == 5
        assert all(graph.degree(v) == 1 for v in range(1, 6))

    def test_grid_graph(self):
        graph = grid_graph(3, 4)
        assert graph.num_nodes == 12
        assert graph.num_edges == 3 * 3 + 2 * 4
        assert graph.is_connected()

    def test_torus_graph_is_4_regular(self):
        graph = torus_graph(4, 5)
        assert graph.num_nodes == 20
        assert all(graph.degree(v) == 4 for v in graph.nodes())

    def test_torus_too_small(self):
        with pytest.raises(ValueError):
            torus_graph(2, 5)

    def test_hypercube_dimensions(self):
        graph = hypercube_graph(4)
        assert graph.num_nodes == 16
        assert all(graph.degree(v) == 4 for v in graph.nodes())
        assert graph.is_connected()

    def test_hypercube_diameter_equals_dimension(self):
        assert hypercube_graph(3).diameter() == 3

    def test_complete_bipartite(self):
        graph = complete_bipartite_graph(3, 4)
        assert graph.num_edges == 12
        assert graph.degree(0) == 4
        assert graph.degree(6) == 3

    def test_binary_tree(self):
        graph = binary_tree_graph(7)
        assert graph.num_edges == 6
        assert graph.degree(0) == 2
        assert graph.is_connected()

    def test_barbell(self):
        graph = barbell_graph(5, bridge_length=2)
        assert graph.num_nodes == 12
        assert graph.is_connected()

    def test_lollipop(self):
        graph = lollipop_graph(6, 4)
        assert graph.num_nodes == 10
        assert graph.is_connected()
        assert graph.degree(9) == 1


class TestRandomFamilies:
    def test_random_regular_degrees(self):
        graph = random_regular_graph(20, 4, seed=1)
        assert all(graph.degree(v) == 4 for v in graph.nodes())
        assert graph.is_connected()

    def test_random_regular_parity_check(self):
        with pytest.raises(ValueError):
            random_regular_graph(7, 3, seed=1)

    def test_random_regular_degree_too_large(self):
        with pytest.raises(ValueError):
            random_regular_graph(4, 5, seed=1)

    def test_random_regular_reproducible(self):
        a = random_regular_graph(16, 4, seed=5)
        b = random_regular_graph(16, 4, seed=5)
        assert a == b

    def test_expander_alias(self):
        graph = expander_graph(16, degree=4, seed=2)
        assert all(graph.degree(v) == 4 for v in graph.nodes())

    def test_erdos_renyi_probability_bounds(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 1.5)

    def test_erdos_renyi_extreme_probabilities(self):
        empty = erdos_renyi_graph(8, 0.0, seed=1)
        full = erdos_renyi_graph(8, 1.0, seed=1)
        assert empty.num_edges == 0
        assert full.num_edges == 28

    def test_connected_erdos_renyi_is_connected(self):
        graph = connected_erdos_renyi_graph(24, 0.3, seed=3)
        assert graph.is_connected()

    def test_connected_erdos_renyi_gives_up(self):
        with pytest.raises(RuntimeError):
            connected_erdos_renyi_graph(30, 0.0, seed=3, max_attempts=2)


class TestFamilyRegistry:
    def test_known_families_present(self):
        for name in ("clique", "cycle", "hypercube", "expander", "torus"):
            assert name in FAMILIES

    def test_get_family_unknown(self):
        with pytest.raises(KeyError):
            get_family("does-not-exist")

    def test_build_deterministic_family(self):
        graph = get_family("clique").build(6)
        assert graph.num_edges == 15

    def test_build_seeded_family(self):
        family = get_family("expander")
        a = family.build(16, seed=7)
        b = family.build(16, seed=7)
        assert a == b

    def test_family_repr(self):
        assert "expander" in repr(get_family("expander"))
