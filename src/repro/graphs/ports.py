"""Port-numbered view of a graph (the paper's anonymity model).

In the paper's computing model, nodes do not know their neighbours' identities:
node ``u`` with degree ``d_u`` has ports ``1 .. d_u`` and only knows that each
port leads to *some* neighbour.  Port assignments need not be symmetric.  The
simulator hands algorithms a :class:`PortNumberedGraph` so that protocol code
physically cannot peek at neighbour identities.

Ports are 0-based in code (``0 .. d_u - 1``) for natural Python indexing; the
paper's ``1 .. d_u`` numbering is an off-by-one away and carries no meaning.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from .topology import Graph

__all__ = ["PortNumberedGraph"]


class PortNumberedGraph:
    """A graph together with a (possibly asymmetric) port assignment.

    The assignment maps, for every node ``v``, each port ``0 .. deg(v) - 1`` to
    a distinct neighbour.  The default assignment is a uniformly random
    permutation per node, matching the paper's "ports assigned uniformly at
    random" assumption used in the lower-bound argument (Lemma 18).
    """

    def __init__(self, graph: Graph, seed: Optional[int] = None) -> None:
        self._graph = graph
        rng = random.Random(seed)
        self._port_to_neighbor: List[List[int]] = []
        self._neighbor_to_port: List[Dict[int, int]] = []
        for v in graph.nodes():
            neighbors = graph.neighbors(v)
            rng.shuffle(neighbors)
            self._port_to_neighbor.append(list(neighbors))
            self._neighbor_to_port.append({u: port for port, u in enumerate(neighbors)})

    # ------------------------------------------------------------------ views
    @property
    def graph(self) -> Graph:
        """The underlying :class:`Graph` (analysis code may use it; protocol code must not)."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self._graph.num_nodes

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._graph.num_edges

    def degree(self, v: int) -> int:
        """Degree (= number of ports) of node ``v``."""
        return self._graph.degree(v)

    # ------------------------------------------------------------------ ports
    def port_to_neighbor(self, v: int, port: int) -> int:
        """Neighbour reached from node ``v`` through ``port``.

        Only the simulator should call this; algorithm code never learns the
        returned identity.
        """
        ports = self._port_to_neighbor[v]
        if not 0 <= port < len(ports):
            raise ValueError("node %d has no port %d (degree %d)" % (v, port, len(ports)))
        return ports[port]

    def neighbor_to_port(self, v: int, neighbor: int) -> int:
        """The port of ``v`` that leads to ``neighbor``."""
        try:
            return self._neighbor_to_port[v][neighbor]
        except KeyError:
            raise ValueError("nodes %d and %d are not adjacent" % (v, neighbor)) from None

    def endpoints_of_port(self, v: int, port: int) -> Tuple[int, int]:
        """The directed edge ``(v, neighbour)`` behind ``(v, port)``."""
        return v, self.port_to_neighbor(v, port)

    def ports(self, v: int) -> range:
        """All ports of node ``v``."""
        return range(self.degree(v))
