"""Host-death chaos tests for the fleet dispatcher.

The fleet's contract under fire: SIGKILL any one host mid-campaign and the
run still completes -- the dead host's cache is salvaged, only its genuinely
unfinished trials are re-placed on survivors via work stealing, and not one
completed trial ever executes twice (asserted from an execution log the
chaos algorithms write, and from the resume manifest).  A SIGSTOPped host --
alive but frozen, heartbeats included -- trips the hang deadline and is
treated exactly like a death.

The chaos agents are deterministic: test-only algorithms, preloaded into the
hosts from a module this test writes to disk, that SIGKILL (or SIGSTOP) their
own host process the first time they run (leaving a marker file) and succeed
on every run after.  No timing, no races.

CI's fleet-smoke job runs this file with ``FLEET_SMOKE_DIR`` pointing at a
workspace directory; the campaign artifacts (``fleet.json``, ``manifest.json``,
reports, traces) then land there for artifact upload instead of in tmp_path.
"""

import os
import sys
import textwrap

import pytest

from repro.campaign import CampaignSpec
from repro.exec import GraphSpec, SweepSpec, TrialSpec
from repro.fleet import FleetDispatcher, local_inventory

CHAOS_MODULE = "repro_fleet_chaos_algos_test_only"

CHAOS_SOURCE = textwrap.dedent(
    '''
    """Test-only fleet chaos algorithms, importable by hosts via preload."""

    import os
    import signal

    from repro.baselines.flood_max import flood_max_trial
    from repro.exec.algorithms import ALGORITHMS, register_algorithm

    if "_fleet_die_once_test_only" not in ALGORITHMS:

        @register_algorithm("_fleet_die_once_test_only")
        def _run_die_once(graph, spec):
            marker = spec.algo_kwargs["marker"]
            if not os.path.exists(marker):
                with open(marker, "w"):
                    pass
                os.kill(os.getpid(), signal.SIGKILL)
            return flood_max_trial(graph, seed=spec.seed)

    if "_fleet_stall_once_test_only" not in ALGORITHMS:

        @register_algorithm("_fleet_stall_once_test_only")
        def _run_stall_once(graph, spec):
            marker = spec.algo_kwargs["marker"]
            if not os.path.exists(marker):
                with open(marker, "w"):
                    pass
                # Freeze the whole host process (heartbeat thread included):
                # it stays alive but can never emit another frame.
                os.kill(os.getpid(), signal.SIGSTOP)
            return flood_max_trial(graph, seed=spec.seed)

    if "_fleet_counted_test_only" not in ALGORITHMS:

        @register_algorithm("_fleet_counted_test_only")
        def _run_counted(graph, spec):
            # One append per *execution*: the zero-re-run assertions count
            # these lines across kills and resumes.
            with open(spec.algo_kwargs["log"], "a") as handle:
                handle.write("%d\\n" % spec.seed)
            return flood_max_trial(graph, seed=spec.seed)
    '''
)


@pytest.fixture
def chaos_module(tmp_path_factory):
    """Write the chaos module where this process and the hosts find it."""
    directory = tmp_path_factory.mktemp("fleet-chaos")
    path = directory / ("%s.py" % CHAOS_MODULE)
    path.write_text(CHAOS_SOURCE)
    sys.path.insert(0, str(directory))
    try:
        __import__(CHAOS_MODULE)  # register in the dispatching process too
        yield str(directory)
    finally:
        sys.path.remove(str(directory))


def _smoke_dir(tmp_path, name):
    """Campaign directory: ``FLEET_SMOKE_DIR`` (CI artifact upload) or tmp."""
    base = os.environ.get("FLEET_SMOKE_DIR")
    if base:
        directory = os.path.join(base, name)
        os.makedirs(directory, exist_ok=True)
        return directory
    return str(tmp_path / name)


def _chaos_campaign(killer_algorithm, marker, log, name, trials=6):
    counted = TrialSpec(
        graph=GraphSpec("clique", (10,)),
        algorithm="_fleet_counted_test_only",
        algo_kwargs={"log": log},
    )
    killer = TrialSpec(
        graph=GraphSpec("clique", (10,)),
        algorithm=killer_algorithm,
        algo_kwargs={"marker": marker},
    )
    return CampaignSpec(
        name=name,
        sweeps=(
            SweepSpec(
                name="counted", configs=(counted,), trials=trials, base_seed=41
            ),
            SweepSpec(name="chaos", configs=(killer,), trials=1, base_seed=43),
        ),
    )


def _dispatcher(campaign, directory, chaos_module, hosts=3, **kwargs):
    kwargs.setdefault("heartbeat_seconds", 0.1)
    kwargs.setdefault("hang_deadline_seconds", 2.0)
    return FleetDispatcher(
        campaign,
        local_inventory(hosts),
        directory,
        preload=(CHAOS_MODULE,),
        extra_paths=(chaos_module,),
        **kwargs,
    )


def _execution_log(log):
    if not os.path.exists(log):
        return []
    with open(log, "r", encoding="utf-8") as handle:
        return [line.strip() for line in handle if line.strip()]


class TestHostSigkill:
    def test_killed_host_shard_is_stolen_and_nothing_reruns(self, chaos_module, tmp_path):
        """The acceptance scenario: SIGKILL one host mid-campaign.  The dead
        host's shard is re-placed by work stealing, the campaign completes
        with zero failures, and a resume re-executes nothing."""
        directory = _smoke_dir(tmp_path, "sigkill")
        marker = os.path.join(directory, "killed.marker")
        log = os.path.join(directory, "executions.log")
        campaign = _chaos_campaign(
            "_fleet_die_once_test_only", marker, log, "fleet-sigkill"
        )

        result = _dispatcher(campaign, directory, chaos_module).run()

        assert os.path.exists(marker), "the chaos trial ran on a host"
        counts = result.manifest.counts()
        assert counts["failed"] == 0, [
            entry.error for entry in result.manifest.entries if entry.status == "failed"
        ]
        assert counts["executed"] == campaign.num_trials
        dead = [h["name"] for h in result.status["hosts"] if h["status"] == "dead"]
        assert len(dead) == 1, "exactly the SIGKILLed host is marked dead"
        survivors = [h for h in result.status["hosts"] if h["status"] == "done"]
        assert len(survivors) == 2

        # Every counted trial executed exactly once across the whole fleet,
        # salvage and re-placement included.
        executions = _execution_log(log)
        assert len(executions) == len(set(executions)) == 6

        # Resume in the same directory: everything is served from the merged
        # campaign cache -- zero re-executions, straight from the manifest.
        resumed = _dispatcher(campaign, directory, chaos_module).run()
        resumed_counts = resumed.manifest.counts()
        assert resumed_counts["cached"] == campaign.num_trials
        assert resumed_counts["executed"] == 0
        assert _execution_log(log) == executions, "resume re-ran nothing"

    def test_single_host_fleet_fails_the_lost_shard_but_survives(
        self, chaos_module, tmp_path
    ):
        """With no survivor to steal the work, the dead host's unfinished
        trials are recorded as failures -- the dispatcher itself returns."""
        directory = str(tmp_path / "lonely")
        marker = os.path.join(directory, "killed.marker")
        log = os.path.join(directory, "executions.log")
        os.makedirs(directory)
        campaign = _chaos_campaign(
            "_fleet_die_once_test_only", marker, log, "fleet-lonely", trials=2
        )
        result = _dispatcher(campaign, directory, chaos_module, hosts=1).run()
        counts = result.manifest.counts()
        assert counts["failed"] >= 1
        assert "no live host" in [
            entry.error for entry in result.manifest.entries if entry.status == "failed"
        ][0]
        # What the host finished before dying was salvaged from its cache.
        assert counts["executed"] == len(_execution_log(log))


class TestHostSigstop:
    def test_frozen_host_trips_the_hang_deadline_and_is_replaced(
        self, chaos_module, tmp_path
    ):
        """A SIGSTOPped host emits no frames; the hang deadline marks it
        dead, SIGKILLs it, and its shard completes on a surviving host."""
        directory = str(tmp_path / "sigstop")
        marker = os.path.join(directory, "stalled.marker")
        log = os.path.join(directory, "executions.log")
        os.makedirs(directory)
        campaign = _chaos_campaign(
            "_fleet_stall_once_test_only", marker, log, "fleet-sigstop", trials=4
        )

        result = _dispatcher(campaign, directory, chaos_module).run()

        assert os.path.exists(marker), "the stall trial ran on a host"
        counts = result.manifest.counts()
        assert counts["failed"] == 0
        assert counts["executed"] == campaign.num_trials
        dead = [h for h in result.status["hosts"] if h["status"] == "dead"]
        assert len(dead) == 1, "the frozen host is marked dead, not hung forever"
        # The frozen host was SIGKILLed: no process with its pid remains.
        for host in dead:
            with pytest.raises(OSError):
                os.kill(host["pid"], 0)
