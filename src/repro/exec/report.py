"""Progress and summary reporting for batch campaigns.

The runner drives a tiny observer interface so that examples can print live
progress, tests can stay silent and future dashboards can subscribe without
touching executor internals.  ``BatchSummary.effective_parallelism`` is
compute-seconds over wall-seconds -- the measured speedup the pool actually
delivered, which the scaling benchmarks log.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import List, Optional, TextIO

__all__ = ["BatchSummary", "ProgressReporter", "NullReporter", "TextReporter"]


@dataclass
class BatchSummary:
    """What one ``BatchRunner.run`` call did, in aggregate."""

    trials: int
    #: Trials that ran to a successful outcome this call (cache hits and
    #: captured failures excluded) -- matches ``CampaignResult.executed``.
    executed: int
    cache_hits: int
    workers: int
    wall_seconds: float
    compute_seconds: float
    #: Trials that raised under ``on_error="capture"`` (always 0 otherwise).
    failures: int = 0

    @property
    def effective_parallelism(self) -> float:
        """Measured speedup: total trial compute time over wall-clock time."""
        if self.wall_seconds <= 0:
            return 1.0
        return self.compute_seconds / self.wall_seconds

    def __str__(self) -> str:
        failed = ", %d FAILED" % self.failures if self.failures else ""
        return (
            "%d trials (%d executed, %d cached%s) on %d worker(s) in %.2fs "
            "wall / %.2fs compute (x%.2f effective)"
            % (
                self.trials,
                self.executed,
                self.cache_hits,
                failed,
                self.workers,
                self.wall_seconds,
                self.compute_seconds,
                self.effective_parallelism,
            )
        )


class ProgressReporter:
    """Observer interface; subclass and override what you need."""

    def batch_started(self, total: int, workers: int) -> None:
        """Called once before the first trial is dispatched."""

    def trial_finished(self, result, done: int, total: int) -> None:
        """Called after every trial (``result`` is a ``TrialResult``)."""

    def batch_finished(self, summary: BatchSummary) -> None:
        """Called once after the last trial completed."""


class NullReporter(ProgressReporter):
    """The default: no output."""


class TextReporter(ProgressReporter):
    """Plain-text progress lines, suitable for long campaigns on a terminal."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        every: int = 1,
        prefix: str = "exec",
        keep_lines: bool = False,
    ) -> None:
        if every < 1:
            raise ValueError("every must be at least 1")
        self.stream = stream if stream is not None else sys.stderr
        self.every = every
        self.prefix = prefix
        # Retention is opt-in: long campaigns emit one line per trial, and an
        # always-on transcript would grow for the reporter's whole lifetime.
        self.keep_lines = keep_lines
        self.lines: List[str] = []

    def _emit(self, line: str) -> None:
        if self.keep_lines:
            self.lines.append(line)
        self.stream.write(line + "\n")
        self.stream.flush()

    def batch_started(self, total: int, workers: int) -> None:
        """Announce the batch size and worker count."""
        self._emit("[%s] %d trial(s) on %d worker(s)" % (self.prefix, total, workers))

    def trial_finished(self, result, done: int, total: int) -> None:
        """Emit one progress line per ``every`` trials; failures always print."""
        outcome = result.outcome
        if outcome is None:
            self._emit(
                "[%s] %d/%d %s: FAILED (%s)"
                % (self.prefix, done, total, result.spec.describe(), result.error)
            )
            return
        if done % self.every and done != total:
            return
        self._emit(
            "[%s] %d/%d %s: messages=%d rounds=%d leaders=%d%s"
            % (
                self.prefix,
                done,
                total,
                result.spec.describe(),
                outcome.messages,
                outcome.rounds,
                outcome.num_leaders,
                " (cached)" if result.from_cache else "",
            )
        )

    def batch_finished(self, summary: BatchSummary) -> None:
        """Emit the aggregate wall/compute-time summary line."""
        self._emit("[%s] %s" % (self.prefix, summary))
