"""Declarative host inventory: which machines a fleet campaign runs on.

A fleet is described by a sequence of :class:`HostSpec` values -- plain data,
serialisable as JSON, with **no transport code of their own**: each host
carries a *command template* whose expansion must start a
``python -m repro.fleet.host`` process speaking length-prefixed JSON frames
on stdio (see :mod:`repro.fleet.host`).  Because the transport is just an
argv, the same dispatcher drives:

* **local process groups** (the default, ``command=None``) -- the testable
  backbone of the chaos suite and CI's fleet-smoke job;
* **SSH** -- ``command="ssh user@node42 {python} -m repro.fleet.host"``;
* **k8s / job queues** -- ``command="kubectl exec -i pod-{host} -- {python}
  -m repro.fleet.host"`` or a scheduler submit wrapper.

Template placeholders: ``{python}`` expands to the host's interpreter
(``python`` field, or this interpreter) and ``{host}`` to the host's name.
Inventories load from JSON (:func:`load_inventory`) or are built in code
(:func:`local_inventory`); see docs/architecture.md "Fleet dispatch" for the
file format and the remote recipes.

>>> host = HostSpec(name="a")
>>> host.command_argv()[-3:]
['-m', 'repro.fleet.host', '--serve']
>>> HostSpec(name="n7", command="ssh n7 {python} -m repro.fleet.host --serve").command_argv()[0]
'ssh'
"""

from __future__ import annotations

import json
import os
import shlex
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "HostSpec",
    "INVENTORY_VERSION",
    "inventory_to_document",
    "load_inventory",
    "local_inventory",
    "parse_inventory",
]

#: Version stamp of the JSON inventory format.
INVENTORY_VERSION = 1


@dataclass(frozen=True)
class HostSpec:
    """One machine of the fleet, as plain declarative data.

    ``name`` doubles as the host's directory name under the campaign
    directory (``<dir>/hosts/<name>/``), so it must be filesystem-safe.
    ``env`` entries overlay the spawned process's environment (stored as a
    sorted tuple of pairs so specs stay hashable and order-independent).
    """

    name: str
    #: Command template whose expansion starts the host process; ``None``
    #: spawns ``{python} -m repro.fleet.host --serve`` locally.
    command: Optional[str] = None
    #: Worker budget of this host's batch runner (its local parallelism).
    workers: int = 1
    #: Extra environment variables for the host process.
    env: Tuple[Tuple[str, str], ...] = ()
    #: Interpreter the ``{python}`` placeholder expands to (this one if unset).
    python: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name or not all(c.isalnum() or c in "-._" for c in self.name):
            raise ValueError(
                "host name %r must be non-empty and contain only letters, "
                "digits, '-', '.' or '_' (it names a directory)" % (self.name,)
            )
        if self.workers < 1:
            raise ValueError("workers must be at least 1, got %d" % self.workers)
        if isinstance(self.env, dict):
            object.__setattr__(self, "env", tuple(sorted(self.env.items())))
        else:
            object.__setattr__(self, "env", tuple((k, v) for k, v in self.env))
        for key, value in self.env:
            if not isinstance(key, str) or not isinstance(value, str):
                raise TypeError(
                    "env entries must be str -> str; got %r=%r" % (key, value)
                )

    # ------------------------------------------------------------- transport
    def command_argv(self) -> List[str]:
        """The argv that starts this host's serve-mode process."""
        python = self.python or sys.executable
        if self.command is None:
            return [python, "-m", "repro.fleet.host", "--serve"]
        try:
            return [
                part.format(python=python, host=self.name)
                for part in shlex.split(self.command)
            ]
        except (KeyError, IndexError) as exc:
            raise ValueError(
                "host %r command template %r uses an unknown placeholder "
                "(known: {python}, {host}): %s" % (self.name, self.command, exc)
            ) from None

    def environment(self, base: Dict[str, str]) -> Dict[str, str]:
        """``base`` with this host's ``env`` entries overlaid."""
        merged = dict(base)
        merged.update(dict(self.env))
        return merged

    # ------------------------------------------------------------------ wire
    def to_document(self) -> Dict[str, object]:
        """JSON-able form (the inventory-file entry shape)."""
        document: Dict[str, object] = {"name": self.name, "workers": self.workers}
        if self.command is not None:
            document["command"] = self.command
        if self.env:
            document["env"] = dict(self.env)
        if self.python is not None:
            document["python"] = self.python
        return document

    @classmethod
    def from_document(cls, document: Dict[str, object]) -> "HostSpec":
        """Rebuild a host spec from its :meth:`to_document` form."""
        return cls(
            name=document["name"],
            command=document.get("command"),
            workers=int(document.get("workers", 1)),
            env=dict(document.get("env", {})),
            python=document.get("python"),
        )


def local_inventory(count: int, workers: int = 1) -> Tuple[HostSpec, ...]:
    """``count`` local process-group hosts (``host-0`` ... ``host-N``).

    The testable default inventory: every "host" is a local subprocess, so
    chaos tests can SIGKILL/SIGSTOP individual hosts deterministically.
    """
    if count < 1:
        raise ValueError("a fleet needs at least one host, got %d" % count)
    return tuple(HostSpec(name="host-%d" % i, workers=workers) for i in range(count))


def parse_inventory(document: Dict[str, object]) -> Tuple[HostSpec, ...]:
    """Decode a JSON inventory document into host specs (validated)."""
    if document.get("version") != INVENTORY_VERSION:
        raise ValueError(
            "inventory version %r does not match this code's %d"
            % (document.get("version"), INVENTORY_VERSION)
        )
    raw_hosts = document.get("hosts")
    if not isinstance(raw_hosts, list) or not raw_hosts:
        raise ValueError("inventory carries no host list")
    hosts = tuple(HostSpec.from_document(entry) for entry in raw_hosts)
    names = [host.name for host in hosts]
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        raise ValueError(
            "host names must be unique; duplicated: %s" % ", ".join(duplicates)
        )
    return hosts


def inventory_to_document(hosts: Sequence[HostSpec]) -> Dict[str, object]:
    """The JSON document form of an inventory (``parse_inventory``'s inverse)."""
    return {
        "version": INVENTORY_VERSION,
        "hosts": [host.to_document() for host in hosts],
    }


def load_inventory(path: Union[str, os.PathLike]) -> Tuple[HostSpec, ...]:
    """Read a JSON inventory file (see docs/architecture.md for the format)."""
    with open(os.fspath(path), "r", encoding="utf-8") as handle:
        return parse_inventory(json.load(handle))
