"""Tests for the budget-limited election harness (Theorem 15 mechanism)."""

import random

import pytest

from repro.graphs import complete_graph
from repro.lowerbound import (
    CliqueCommunicationTracker,
    build_lower_bound_graph,
    lemma18_expected_messages,
    run_budgeted_probe_election,
    run_walk_budget_election,
    sample_clique_discovery_messages,
)


@pytest.fixture(scope="module")
def lb_graph():
    return build_lower_bound_graph(200, clique_size=8, seed=11)


class TestLemma18Sampler:
    def test_rejects_tiny_cliques(self):
        with pytest.raises(ValueError):
            sample_clique_discovery_messages(2, random.Random(0))

    def test_sample_is_positive_and_bounded(self):
        rng = random.Random(1)
        for _ in range(50):
            value = sample_clique_discovery_messages(10, rng)
            assert 1 <= value <= 100

    def test_mean_scales_with_clique_size_squared(self):
        rng = random.Random(2)
        small = sum(sample_clique_discovery_messages(6, rng) for _ in range(400)) / 400
        large = sum(sample_clique_discovery_messages(18, rng) for _ in range(400)) / 400
        # Expected counts are ~ (s^2+1)/5, so a 3x clique size gives ~9x messages.
        assert large / small == pytest.approx(9.0, rel=0.4)

    def test_mean_exceeds_paper_bound(self):
        rng = random.Random(3)
        mean = sum(sample_clique_discovery_messages(12, rng) for _ in range(400)) / 400
        assert mean >= lemma18_expected_messages(12)


class TestWalkBudgetElection:
    def test_short_walks_yield_many_leaders(self, lb_graph):
        outcome = run_walk_budget_election(lb_graph.graph, walk_length=1, seed=5)
        assert outcome.num_leaders > 1

    def test_long_walks_yield_one_leader(self, lb_graph):
        outcome = run_walk_budget_election(lb_graph.graph, walk_length=32, seed=5)
        assert outcome.num_leaders == 1

    def test_messages_grow_with_walk_length(self, lb_graph):
        short = run_walk_budget_election(lb_graph.graph, walk_length=1, seed=6)
        long = run_walk_budget_election(lb_graph.graph, walk_length=16, seed=6)
        assert long.messages > short.messages

    def test_tracker_sees_few_cg_edges_for_short_walks(self, lb_graph):
        tracker = CliqueCommunicationTracker(lb_graph.node_to_clique)
        run_walk_budget_election(lb_graph.graph, walk_length=1, seed=7, observers=(tracker,))
        assert tracker.num_edges < lb_graph.num_cliques


class TestProbeElection:
    def test_probe_election_on_clique_succeeds_with_budget(self):
        graph = complete_graph(64)
        outcome = run_budgeted_probe_election(graph, probes_per_candidate=40, seed=8)
        assert outcome.num_leaders == 1

    def test_probe_election_with_zero_budget_fails(self):
        graph = complete_graph(64)
        outcome = run_budgeted_probe_election(graph, probes_per_candidate=0, seed=9)
        # Candidates never learn of each other: every candidate self-elects.
        assert outcome.num_leaders == outcome.candidates

    def test_probe_election_on_lb_graph_fragmented(self, lb_graph):
        outcome = run_budgeted_probe_election(lb_graph.graph, probes_per_candidate=3, seed=10)
        assert outcome.num_leaders >= 1
        assert outcome.messages > 0
