"""One embedded SQLite database as a cache backend for million-trial runs.

The whole cache is a single ``cache.sqlite`` file inside the cache root:
``entries(fingerprint PRIMARY KEY, payload, s_*, created, nbytes)`` plus a
``meta`` key/value table.  ``payload`` holds the exact sorted-keys JSON
document the JSON tree would have written to a file -- zlib-compressed on
disk, byte-identical once decoded -- so everything downstream of a read
(reports, merges back into a tree, the ``entries()`` iterator) is
representation-independent, while bulk I/O (merges, whole-store scans)
moves a few times less data than the file tree does.  ``nbytes`` records
the *decoded* document size, so ``stats()`` agrees with the JSON backend
about the logical store size.  The ``s_*`` columns denormalise the tiny
:class:`~repro.exec.cache.base.OutcomeSummary` projection at write time --
covered by their own index, so streaming reports aggregate a million plain
row tuples straight out of the index B-tree without deserialising a single
outcome (or even touching the payload pages).

Concurrency and crash safety:

* the database runs in WAL mode with ``synchronous=NORMAL`` and a 30 s busy
  timeout, so several shard processes can write the same cache file
  concurrently (writers queue, readers never block) and a SIGKILL mid-write
  rolls back to the last committed entry on the next open -- the database is
  never left unreadable;
* each ``store`` autocommits (one trial result is durable the moment the
  runner recorded it -- resuming after a kill re-executes nothing that
  finished), while bulk operations (merge, migration, benchmarks) batch
  inside :meth:`batch` transactions;
* ``merge_from`` another SQLite cache is a single attached-database
  ``INSERT OR IGNORE ... SELECT``, i.e. O(new entries), not O(files);
* repeated merges from the same source (the fleet dispatcher's collection
  loop) are incremental: each database carries a random ``store_uid`` in
  ``meta``, and the target remembers ``merge_seen_rowid:<source_uid>`` --
  the highest source rowid it has ingested -- so later passes only scan
  rows past that watermark.  Operations that can reissue rowids
  (``delete``, ``compact``) rotate the store's uid, which safely
  invalidates every watermark other stores hold against it (their next
  merge falls back to a full scan).  One deliberate consequence: entries
  deleted from the *target* are not resurrected by re-merging an
  already-seen source -- call :meth:`reset_merge_watermarks` first to
  force a full rescan.

Opening a cache root that holds a historical JSON tree imports every
readable entry once (``INSERT OR IGNORE`` under their stored fingerprints;
corrupt files are skipped with a logged warning) and remembers the import in
``meta``, so millions of files are not rescanned per open.  The JSON files
are left in place: migration is one-way and old directories stay readable
with the ``json`` backend.
"""

from __future__ import annotations

import json
import os
import sqlite3
import uuid
import zlib
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..fingerprint import CACHE_SCHEMA_VERSION
from .base import (
    CacheBackend,
    OutcomeSummary,
    SummaryAggregate,
    logger,
    summary_from_document,
)
from .json_dir import JsonDirBackend

__all__ = ["SqliteBackend", "DATABASE_NAME"]

#: File name of the database inside a cache root (its presence is also how
#: backend auto-detection recognises an already-migrated directory).
DATABASE_NAME = "cache.sqlite"

#: Milliseconds a writer waits on a locked database before giving up; 30 s
#: comfortably covers another shard's bulk merge commit.
_BUSY_TIMEOUT_MS = 30_000

#: Fingerprints per ``IN (...)`` clause (SQLite's default variable limit is
#: 999; staying well under keeps us compatible with conservative builds).
_SELECT_CHUNK = 900

#: Page-cache budget (KiB) per connection: large enough that the summary
#: index of a million-entry store stays resident while a report streams
#: over it, small enough to be irrelevant next to a campaign's working set.
_CACHE_KIB = 65_536

#: zlib level for payload compression: level 1 already shrinks the highly
#: repetitive outcome JSON severalfold, and bulk merges are I/O-bound, so
#: cheap-and-fast beats maximal compression here.
_COMPRESS_LEVEL = 1

#: Covering index for the report path: a summary probe or aggregate query is
#: answered entirely from this B-tree, never touching the (much fatter)
#: payload-bearing table pages -- and the whole index of a million-entry
#: store fits in the page cache.  Bulk merges drop and re-create it (one
#: sorted build beats a million random insertions), hence the shared DDL.
_SUMMARY_INDEX_SQL = (
    "CREATE INDEX IF NOT EXISTS entries_summary ON entries ("
    " fingerprint, s_algorithm, s_kind, s_classification,"
    " s_success, s_messages, s_message_units, s_rounds)"
)


class SqliteBackend(CacheBackend):
    """Fingerprint-keyed store over one WAL-mode SQLite database."""

    name = "sqlite"

    def __init__(self, root: str) -> None:
        super().__init__(root)
        os.makedirs(self.root, exist_ok=True)
        self.database_path = os.path.join(self.root, DATABASE_NAME)
        # isolation_level=None puts the connection in autocommit mode: every
        # store() is its own durable transaction, and bulk paths open
        # explicit BEGIN IMMEDIATE transactions (ATTACH also requires being
        # outside a transaction).
        self._connection = sqlite3.connect(
            self.database_path,
            timeout=_BUSY_TIMEOUT_MS / 1000.0,
            isolation_level=None,
            check_same_thread=False,
        )
        self._in_batch = False
        cursor = self._connection.cursor()
        cursor.execute("PRAGMA journal_mode=WAL")
        cursor.execute("PRAGMA synchronous=NORMAL")
        cursor.execute("PRAGMA busy_timeout=%d" % _BUSY_TIMEOUT_MS)
        cursor.execute("PRAGMA cache_size=-%d" % _CACHE_KIB)
        cursor.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)"
        )
        # The s_* columns denormalise the OutcomeSummary projection so the
        # streaming report path reads plain row tuples -- no per-row JSON
        # parse, which is what buys the order-of-magnitude report speedup
        # over the one-file-per-entry tree.
        cursor.execute(
            "CREATE TABLE IF NOT EXISTS entries ("
            " fingerprint TEXT PRIMARY KEY,"
            " payload BLOB NOT NULL,"
            " s_algorithm TEXT NOT NULL,"
            " s_kind TEXT NOT NULL,"
            " s_classification TEXT NOT NULL,"
            " s_success INTEGER NOT NULL,"
            " s_messages INTEGER NOT NULL,"
            " s_message_units INTEGER NOT NULL,"
            " s_rounds INTEGER NOT NULL,"
            " created REAL NOT NULL,"
            " nbytes INTEGER NOT NULL)"
        )
        cursor.execute(_SUMMARY_INDEX_SQL)
        cursor.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES ('schema_version', ?)",
            (str(CACHE_SCHEMA_VERSION),),
        )
        # Identity of this database's rowid history.  Merge watermarks are
        # keyed by it, so rotating the uid (on delete/compact, which may
        # reissue rowids) atomically invalidates every watermark other
        # stores hold against this one.
        cursor.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES ('store_uid', ?)",
            (uuid.uuid4().hex,),
        )
        self._import_json_tree_once()

    # ------------------------------------------------------------- migration
    def _import_json_tree_once(self) -> None:
        """One-way import of a pre-existing JSON tree under the same root.

        Runs at most once per database (guarded by a ``meta`` flag, so a
        directory of millions of already-imported files is not rescanned on
        every open).  Entries keep their stored fingerprints; corrupt or
        truncated files are skipped with a logged warning, exactly like the
        JSON backend treats them on read.  The files themselves are left
        untouched.
        """
        cursor = self._connection.cursor()
        row = cursor.execute(
            "SELECT value FROM meta WHERE key = 'json_import_done'"
        ).fetchone()
        if row is not None:
            return
        imported = 0
        skipped = 0
        with self.batch():
            for path in JsonDirBackend(self.root)._entry_paths():
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        document = json.load(handle)
                    if not isinstance(document, dict):
                        raise ValueError("not a JSON object")
                    summary = summary_from_document(document)
                except (OSError, ValueError, KeyError, TypeError) as exc:
                    logger.warning(
                        "skipping corrupt cache entry %s during sqlite import "
                        "(%s: %s); it was not imported",
                        path,
                        type(exc).__name__,
                        exc,
                    )
                    skipped += 1
                    continue
                fingerprint = str(
                    document.get("fingerprint")
                    or os.path.basename(path)[: -len(".json")]
                )
                before = self._connection.total_changes
                self._insert(
                    "INSERT OR IGNORE", fingerprint, document, summary, cursor
                )
                imported += self._connection.total_changes - before
            cursor.execute(
                "INSERT OR REPLACE INTO meta (key, value) "
                "VALUES ('json_import_done', ?)",
                (str(imported),),
            )
        if imported or skipped:
            logger.info(
                "imported %d JSON cache entr%s into %s (%d corrupt file(s) skipped)",
                imported,
                "y" if imported == 1 else "ies",
                self.database_path,
                skipped,
            )

    # --------------------------------------------------------------- entries
    def _insert(
        self,
        verb: str,
        fingerprint: str,
        document: Dict[str, object],
        summary: OutcomeSummary,
        cursor: Optional[sqlite3.Cursor] = None,
    ) -> None:
        raw = json.dumps(document, sort_keys=True).encode("utf-8")
        (cursor or self._connection).execute(
            "%s INTO entries (fingerprint, payload, s_algorithm, s_kind,"
            " s_classification, s_success, s_messages, s_message_units,"
            " s_rounds, created, nbytes) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
            % verb,
            (
                fingerprint,
                zlib.compress(raw, _COMPRESS_LEVEL),
                summary.algorithm,
                summary.kind,
                summary.classification,
                int(summary.success),
                summary.messages,
                summary.message_units,
                summary.rounds,
                float(document.get("created", 0.0) or 0.0),
                len(raw),
            ),
        )

    def load(self, fingerprint: str) -> Optional[Dict[str, object]]:
        row = self._connection.execute(
            "SELECT payload FROM entries WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        if row is None:
            return None
        return self._parse_payload(fingerprint, row[0])

    def load_many(self, fingerprints: List[str]) -> List[Optional[Dict[str, object]]]:
        by_fingerprint: Dict[str, object] = {}
        for start in range(0, len(fingerprints), _SELECT_CHUNK):
            chunk = fingerprints[start : start + _SELECT_CHUNK]
            placeholders = ",".join("?" for _ in chunk)
            rows = self._connection.execute(
                "SELECT fingerprint, payload FROM entries "
                "WHERE fingerprint IN (%s)" % placeholders,
                chunk,
            ).fetchall()
            by_fingerprint.update(rows)
        return [
            self._parse_payload(fingerprint, by_fingerprint[fingerprint])
            if fingerprint in by_fingerprint
            else None
            for fingerprint in fingerprints
        ]

    def _parse_payload(
        self, fingerprint: str, payload: object
    ) -> Optional[Dict[str, object]]:
        try:
            if isinstance(payload, bytes):
                payload = zlib.decompress(payload)
            document = json.loads(payload)
            if not isinstance(document, dict):
                raise ValueError("not a JSON object")
        except (zlib.error, ValueError, TypeError) as exc:
            logger.warning(
                "treating corrupt cache entry %s in %s as a miss (%s: %s); "
                "it will be recomputed and overwritten",
                fingerprint,
                self.database_path,
                type(exc).__name__,
                exc,
            )
            return None
        return document

    def store(self, fingerprint: str, document: Dict[str, object]) -> None:
        self._insert(
            "INSERT OR REPLACE", fingerprint, document, summary_from_document(document)
        )

    def summaries(self, fingerprints: List[str]) -> List[Optional[OutcomeSummary]]:
        """Summary rows straight from the ``s_*`` columns (no payload parse).

        Each hit costs one covering-index probe and one named-tuple
        construction, never a JSON deserialisation.
        """
        by_fingerprint: Dict[str, OutcomeSummary] = {}
        for start in range(0, len(fingerprints), _SELECT_CHUNK):
            chunk = fingerprints[start : start + _SELECT_CHUNK]
            placeholders = ",".join("?" for _ in chunk)
            # INDEXED BY: the planner left alone probes the primary-key
            # index and then fetches the s_* columns from the payload-fat
            # table rows; pinning the covering index answers the whole
            # query from its own (page-cache-resident) B-tree.
            rows = self._connection.execute(
                "SELECT fingerprint, s_algorithm, s_kind, s_classification,"
                " s_success, s_messages, s_message_units, s_rounds"
                " FROM entries INDEXED BY entries_summary"
                " WHERE fingerprint IN (%s)" % placeholders,
                chunk,
            ).fetchall()
            for row in rows:
                by_fingerprint[row[0]] = OutcomeSummary(
                    row[1], row[2], row[3], bool(row[4]), row[5], row[6], row[7]
                )
        return [by_fingerprint.get(fingerprint) for fingerprint in fingerprints]

    def aggregate(self, fingerprints: List[str]) -> SummaryAggregate:
        """The configuration-group fold pushed down into the database.

        One ``GROUP BY (kind, classification)`` query per fingerprint chunk:
        SQLite probes the covering summary index and folds the counts and
        integer sums in C, so Python touches a handful of group rows per
        configuration instead of one tuple per trial.  This is the streaming
        report path over million-trial stores.  SQLite sums of ``INTEGER``
        columns come back as exact Python ints, so the result is
        bit-identical to the reference fold in
        :func:`~repro.exec.cache.base.aggregate_summaries`.
        """
        distinct = list(dict.fromkeys(fingerprints))
        done = successes = sum_messages = sum_message_units = sum_rounds = 0
        counts: Dict[str, int] = {}
        kinds = set()
        for start in range(0, len(distinct), _SELECT_CHUNK):
            chunk = distinct[start : start + _SELECT_CHUNK]
            placeholders = ",".join("?" for _ in chunk)
            rows = self._connection.execute(
                "SELECT s_kind, s_classification, COUNT(*), SUM(s_success),"
                " SUM(s_messages), SUM(s_message_units), SUM(s_rounds)"
                " FROM entries INDEXED BY entries_summary"
                " WHERE fingerprint IN (%s)"
                " GROUP BY s_kind, s_classification" % placeholders,
                chunk,
            ).fetchall()
            for kind, classification, count, group_successes, messages, units, rounds in rows:
                done += count
                successes += group_successes
                sum_messages += messages
                sum_message_units += units
                sum_rounds += rounds
                counts[classification] = counts.get(classification, 0) + count
                kinds.add(kind)
        return SummaryAggregate(
            requested=len(distinct),
            done=done,
            successes=successes,
            sum_messages=sum_messages,
            sum_message_units=sum_message_units,
            sum_rounds=sum_rounds,
            kind=min(kinds) if kinds else None,
            classification_counts=tuple(sorted(counts.items())),
        )

    # ------------------------------------------------------------- inventory
    def fingerprints(self) -> Iterator[str]:
        cursor = self._connection.execute(
            "SELECT fingerprint FROM entries ORDER BY fingerprint"
        )
        for (fingerprint,) in cursor:
            yield fingerprint

    def documents(self) -> Iterator[Dict[str, object]]:
        cursor = self._connection.execute(
            "SELECT fingerprint, payload FROM entries ORDER BY fingerprint"
        )
        for fingerprint, payload in cursor:
            document = self._parse_payload(fingerprint, payload)
            if document is not None:
                yield document

    def count(self) -> int:
        return int(self._connection.execute("SELECT COUNT(*) FROM entries").fetchone()[0])

    def total_bytes(self) -> int:
        row = self._connection.execute(
            "SELECT COALESCE(SUM(nbytes), 0) FROM entries"
        ).fetchone()
        return int(row[0])

    def stamped(self) -> List[Tuple[float, str]]:
        return [
            (float(created), fingerprint)
            for created, fingerprint in self._connection.execute(
                "SELECT created, fingerprint FROM entries"
            )
        ]

    # -------------------------------------------------------------- identity
    @property
    def store_uid(self) -> str:
        """Identity of this database's rowid history (merge watermark key)."""
        row = self._connection.execute(
            "SELECT value FROM meta WHERE key = 'store_uid'"
        ).fetchone()
        return str(row[0])

    def _rotate_store_uid(self) -> None:
        """Give the store a fresh identity after its rowids became unstable."""
        self._connection.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES ('store_uid', ?)",
            (uuid.uuid4().hex,),
        )

    def merge_watermark(self, source: "SqliteBackend") -> int:
        """Highest ``source`` rowid this store has already ingested (0 = none)."""
        row = self._connection.execute(
            "SELECT value FROM meta WHERE key = ?",
            ("merge_seen_rowid:%s" % source.store_uid,),
        ).fetchone()
        return int(row[0]) if row is not None else 0

    def reset_merge_watermarks(self) -> int:
        """Forget all source watermarks so the next merge rescans fully.

        The escape hatch for the one behaviour the watermark changes: after
        deleting entries *here*, re-merging an already-seen source will not
        restore them unless its watermark is dropped first.
        """
        before = self._connection.total_changes
        self._connection.execute(
            "DELETE FROM meta WHERE key LIKE 'merge_seen_rowid:%'"
        )
        return self._connection.total_changes - before

    # ----------------------------------------------------------- maintenance
    @contextmanager
    def batch(self) -> Iterator[None]:
        """Group many writes into one transaction (nesting collapses)."""
        if self._in_batch:
            yield
            return
        self._in_batch = True
        self._connection.execute("BEGIN IMMEDIATE")
        try:
            yield
        except BaseException:
            self._connection.execute("ROLLBACK")
            raise
        finally:
            self._in_batch = False
        self._connection.execute("COMMIT")

    def delete(self, fingerprints: Iterable[str]) -> int:
        doomed = list(fingerprints)
        before = self._connection.total_changes
        removed = 0
        with self.batch():
            for start in range(0, len(doomed), _SELECT_CHUNK):
                chunk = doomed[start : start + _SELECT_CHUNK]
                placeholders = ",".join("?" for _ in chunk)
                self._connection.execute(
                    "DELETE FROM entries WHERE fingerprint IN (%s)" % placeholders,
                    chunk,
                )
            removed = self._connection.total_changes - before
            if removed:
                # Freed rowids may be reissued to future entries, so merge
                # watermarks other stores hold against this one are no
                # longer safe -- rotating the uid sends their next merge
                # back to a full scan.
                self._rotate_store_uid()
        return removed

    def merge_from(self, other: CacheBackend) -> int:
        """Union in ``other``'s entries; SQLite sources merge at page speed.

        A SQLite source merging into an *empty* store (the shard-union case:
        ``m`` shard caches folded into a fresh one) is a C-level page copy
        via the SQLite backup API -- schema, indexes and all, no B-tree
        rebuild whatsoever.  Into a non-empty store it is attached and
        imported with a single ``INSERT OR IGNORE ... SELECT`` -- entries
        already present locally are kept untouched, and the count of new
        rows comes from the connection's change counter.  Repeated merges
        from the same SQLite source are incremental: a per-source rowid
        watermark (``merge_seen_rowid:<store_uid>`` in ``meta``) restricts
        each pass to rows the last pass had not seen, so the fleet's
        collection loop pays O(new trials), not O(source).  Non-SQLite
        sources stream through their entry documents inside one batched
        transaction (no watermark: a file tree has no stable row order).
        """
        if isinstance(other, SqliteBackend):
            source_uid = other.store_uid
            watermark_key = "merge_seen_rowid:%s" % source_uid
            source_max = int(
                other._connection.execute(
                    "SELECT COALESCE(MAX(rowid), 0) FROM entries"
                ).fetchone()[0]
            )
            if not self._in_batch and self.count() == 0:
                other._connection.backup(self._connection)
                # The page copy inherited the source's identity (and its
                # own watermarks, which stay valid: this copy has ingested
                # exactly what the source had).  From here the two rowid
                # histories diverge, so the copy needs a uid of its own --
                # and it has, by construction, seen every source row.
                self._rotate_store_uid()
                self._connection.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                    (watermark_key, str(source_max)),
                )
                return self.count()
            watermark = self.merge_watermark(other)
            if source_max < watermark:
                # The source shrank since we last looked: it was pruned or
                # rebuilt without rotating its uid (an older build, or a
                # hand-edited file), so the watermark means nothing --
                # fall back to a full scan.
                watermark = 0
            before = self._connection.total_changes
            # When the unseen slice outweighs what is already here, one
            # sorted re-build of the summary index after the bulk insert
            # beats maintaining it through that many random-order
            # insertions; for small incremental merges into a big store the
            # re-build (O(existing + new)) would dominate, so the index is
            # left in place.  Both paths run inside one transaction -- a
            # crash mid-merge rolls back to the pre-merge store, index and
            # watermark included.
            unseen = int(
                other._connection.execute(
                    "SELECT COUNT(*) FROM entries WHERE rowid > ?", (watermark,)
                ).fetchone()[0]
            )
            rebuild_index = unseen > self.count()
            self._connection.execute(
                "ATTACH DATABASE ? AS merge_source", (other.database_path,)
            )
            try:
                with self.batch():
                    if rebuild_index:
                        self._connection.execute("DROP INDEX IF EXISTS entries_summary")
                    self._connection.execute(
                        "INSERT OR IGNORE INTO entries "
                        "SELECT fingerprint, payload, s_algorithm, s_kind,"
                        " s_classification, s_success, s_messages,"
                        " s_message_units, s_rounds, created, nbytes "
                        "FROM merge_source.entries WHERE rowid > ?",
                        (watermark,),
                    )
                    if rebuild_index:
                        self._connection.execute(_SUMMARY_INDEX_SQL)
                    merged = self._connection.total_changes - before
                    self._connection.execute(
                        "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                        (watermark_key, str(source_max)),
                    )
            finally:
                self._connection.execute("DETACH DATABASE merge_source")
            return merged
        merged = 0
        with self.batch():
            for document in other.documents():
                fingerprint = document.get("fingerprint")
                if not isinstance(fingerprint, str) or not fingerprint:
                    continue
                try:
                    summary = summary_from_document(document)
                except (ValueError, KeyError, TypeError) as exc:
                    logger.warning(
                        "skipping unsummarisable entry %s during merge (%s: %s)",
                        fingerprint,
                        type(exc).__name__,
                        exc,
                    )
                    continue
                before = self._connection.total_changes
                self._insert("INSERT OR IGNORE", fingerprint, document, summary)
                merged += self._connection.total_changes - before
        return merged

    def compact(self) -> None:
        """Reclaim the space deleted entries held (SQLite ``VACUUM``)."""
        # VACUUM may renumber the hidden rowids of a TEXT-keyed table, so
        # watermarks other stores hold against this one go stale with it.
        self._rotate_store_uid()
        self._connection.execute("VACUUM")

    def close(self) -> None:
        self._connection.close()
