"""E12 -- campaign orchestration: sharded, resumable campaigns with reports.

E1-E11 measure the paper's algorithms; E12 measures the machinery that runs
them at scale.  It pins the three contracts the ``repro.campaign`` subsystem
makes (see docs/architecture.md for the determinism/fingerprint contract they
rest on):

* **resume** -- a campaign whose trials are already cached re-runs with zero
  executions (the CI campaign-smoke step exercises exactly this after a
  2-shard run);
* **shard equivalence** -- the union of ``m`` shard runs, executed into
  separate caches and merged, is byte-identical at the report level to the
  single-machine run of the same campaign and master seeds;
* **bounded retry** -- per-trial status (cached / executed / failed /
  other_shard) lands in the manifest with attempt counts.

The benchmark numbers published as ``extra_info`` are orchestration costs:
trials executed vs served from cache, and the report's coverage accounting.
"""

import json

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, write_report
from repro.core import ElectionParameters
from repro.exec import GraphSpec, ResultCache, Shard, SweepSpec, TrialSpec

SEED = 1203
FAST = ElectionParameters(c1=3.0, c2=0.5)


def _mini_campaign(trials: int = 2) -> CampaignSpec:
    """A tiny but heterogeneous campaign: scaling sweep + baseline sweep."""
    return CampaignSpec(
        name="e12-mini",
        sweeps=(
            SweepSpec(
                name="scaling",
                configs=tuple(
                    TrialSpec(
                        graph=GraphSpec("clique", (n,)), params=FAST, label="n=%d" % n
                    )
                    for n in (12, 16)
                ),
                trials=trials,
                base_seed=SEED,
            ),
            SweepSpec(
                name="baselines",
                configs=(
                    TrialSpec(
                        graph=GraphSpec("clique", (12,)),
                        algorithm="flood_max",
                        label="flood_max",
                    ),
                    TrialSpec(
                        graph=GraphSpec("clique", (12,)), params=FAST, label="election"
                    ),
                ),
                trials=trials,
                base_seed=SEED + 1,
            ),
        ),
    )


def test_e12_two_shard_resume_smoke(benchmark, tmp_path):
    """Smoke slice (runs in CI): 2-shard mini-campaign, resume re-runs nothing.

    Both shards run into one cache directory (the single-filesystem flavour
    of a two-machine split); the resume pass must serve every trial from
    cache -- zero re-executed trials -- and the report must show full
    coverage.
    """
    campaign = _mini_campaign()
    cache = ResultCache(tmp_path / "cache")

    shard_results = [
        CampaignRunner(
            campaign, cache, shard=Shard(k, 2), directory=tmp_path / ("shard-%d" % k)
        ).run()
        for k in (0, 1)
    ]
    assert sum(result.assigned for result in shard_results) == campaign.num_trials
    assert sum(result.executed for result in shard_results) == campaign.num_trials
    for result in shard_results:
        assert result.failed == 0

    resume = benchmark.pedantic(
        lambda: CampaignRunner(campaign, cache, directory=tmp_path / "resume").run(),
        rounds=1,
        iterations=1,
    )
    assert resume.executed == 0, "resume after a full 2-shard run must re-run nothing"
    assert resume.cache_hits == campaign.num_trials
    assert resume.manifest.counts()["cached"] == campaign.num_trials

    markdown_path, json_path = write_report(campaign, cache, tmp_path / "out")
    with open(json_path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    assert report["coverage"] == 1.0
    assert report["cached"] == campaign.num_trials
    benchmark.extra_info.update(
        {
            "trials": campaign.num_trials,
            "shard_executed": [result.executed for result in shard_results],
            "resume_executed": resume.executed,
            "resume_cache_hits": resume.cache_hits,
        }
    )


@pytest.mark.slow
@pytest.mark.parametrize("num_shards", [2, 3])
def test_e12_merged_shard_caches_byte_identical_report(benchmark, tmp_path, num_shards):
    """Union of per-machine shard caches == single-machine run, byte for byte."""
    campaign = _mini_campaign()

    single = ResultCache(tmp_path / "single")
    CampaignRunner(campaign, single).run()

    union = ResultCache(tmp_path / "union")
    assigned = 0
    for k in range(num_shards):
        shard_cache = ResultCache(tmp_path / ("machine-%d" % k))
        result = CampaignRunner(campaign, shard_cache, shard=Shard(k, num_shards)).run()
        assigned += result.assigned
        union.merge_from(shard_cache)
    assert assigned == campaign.num_trials

    def render_both():
        return (
            write_report(campaign, union, tmp_path / "report-union"),
            write_report(campaign, single, tmp_path / "report-single"),
        )

    (union_md, union_json), (single_md, single_json) = benchmark.pedantic(
        render_both, rounds=1, iterations=1
    )
    with open(union_json, "rb") as a, open(single_json, "rb") as b:
        assert a.read() == b.read()
    with open(union_md, "rb") as a, open(single_md, "rb") as b:
        assert a.read() == b.read()
    benchmark.extra_info.update({"num_shards": num_shards, "trials": campaign.num_trials})


@pytest.mark.slow
def test_e12_interrupted_after_first_shard_resumes_from_cache(benchmark, tmp_path):
    """The acceptance scenario: killed after shard 1 of 2, resumed on one box.

    Only shard 0 ran before the "interruption"; the unsharded resume must
    serve every shard-0 trial from cache and execute exactly the rest.
    """
    campaign = _mini_campaign()
    cache = ResultCache(tmp_path / "cache")
    first = CampaignRunner(campaign, cache, shard=Shard(0, 2)).run()
    assert 0 < first.assigned < campaign.num_trials

    resumed = benchmark.pedantic(
        lambda: CampaignRunner(campaign, cache).run(), rounds=1, iterations=1
    )
    assert resumed.cache_hits == first.assigned
    assert resumed.executed == campaign.num_trials - first.assigned
    assert resumed.failed == 0
    benchmark.extra_info.update(
        {
            "shard0_trials": first.assigned,
            "resumed_from_cache": resumed.cache_hits,
            "resumed_executed": resumed.executed,
        }
    )
