"""Run the doctests of the orchestration packages as part of tier-1.

The public API of ``repro.exec``, ``repro.faults``, ``repro.campaign`` and
``repro.obs`` carries short runnable examples in its docstrings (the docs
satellite of the campaign PR).  CI additionally runs ``pytest --doctest-modules`` over these
packages; this in-suite runner keeps the examples honest for anyone who only
runs the plain tier-1 suite.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro.campaign
import repro.exec
import repro.faults
import repro.obs

PACKAGES = (repro.exec, repro.faults, repro.campaign, repro.obs)


def _modules():
    for package in PACKAGES:
        yield package.__name__
        for info in pkgutil.iter_modules(package.__path__):
            yield "%s.%s" % (package.__name__, info.name)


@pytest.mark.parametrize("module_name", sorted(_modules()))
def test_module_doctests_pass(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, "%d doctest failure(s) in %s" % (
        results.failed,
        module_name,
    )


def test_examples_actually_exist():
    """The doctest pass is not vacuous: each package carries examples."""
    finder = doctest.DocTestFinder()
    for package in PACKAGES:
        examples = 0
        for info in pkgutil.iter_modules(package.__path__):
            module = importlib.import_module("%s.%s" % (package.__name__, info.name))
            examples += sum(len(test.examples) for test in finder.find(module))
        assert examples >= 2, "package %s has too few doctest examples" % package.__name__
