#!/usr/bin/env python
"""Latency driver for the live networked deployment, with a committed baseline.

Measures what the ``repro.net`` coordinator *adds* on top of the simulator:
every cell of a fixed ``family x n x transport`` grid runs one real
deployment -- node processes, frames over a socket, a coordinator barrier per
event round -- and records **rounds per second** (how fast the lock-step
barrier turns over) plus the per-round latency and per-election wall time
derived from it.  Each cell also cross-validates its live outcome against
the simulator's before any number is recorded: a benchmark run that diverges
from the model is a failed run, not a slow one.

The result is written as ``BENCH_net.json`` (committed at the repository
root).  CI's ``perf-trajectory`` job re-runs the quick subset on every push
and diffs the fresh numbers against the committed baseline with the same
machine-speed-normalised scheme as ``perf_driver.py``: the median of
``current / baseline`` over shared cells absorbs slower hardware, and only
cells falling behind their peers fail the run.
``tests/test_net_baseline.py`` pins the committed file's structure.

Usage::

    python benchmarks/perf_net.py --quick                 # measure only
    python benchmarks/perf_net.py --output BENCH_net.json
    python benchmarks/perf_net.py --quick --baseline BENCH_net.json

Exit status: 0 on success (or measure-only), 1 when any cell regressed
beyond the failure threshold or a live outcome diverged from the simulator.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.core import ElectionParameters  # noqa: E402
from repro.exec import GraphSpec, TrialSpec  # noqa: E402
from repro.net.coordinator import cross_validate  # noqa: E402

#: Baseline document schema version (bumped on incompatible changes).
BASELINE_VERSION = 1

#: Default committed baseline, relative to the repository root.
DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_net.json"
)

#: Every cell is timed over at least this long; fast cells repeat whole
#: elections so quick runs measure throughput, not scheduler noise.
MIN_SECONDS = 1.0
MAX_REPS = 8

#: Election parameters that keep each election short enough to repeat.
FAST = ElectionParameters(c1=3.0, c2=0.5)

#: Deterministic graph construction across baseline regenerations.
GRAPH_SEED = 20180723

#: Trial seed every cell runs (the live/sim agreement is seed-exact).
TRIAL_SEED = 42


def _graph_spec(family: str, n: int) -> GraphSpec:
    if family == "expander":
        return GraphSpec("expander", (n,), {"degree": 4}, seed=GRAPH_SEED)
    if family == "hypercube":
        dimension = n.bit_length() - 1
        assert 2**dimension == n, "hypercube cells need a power-of-two n"
        return GraphSpec("hypercube", (dimension,))
    raise ValueError("unknown benchmark family %r" % family)


def _grid(quick: bool) -> List[Dict[str, object]]:
    """The measurement grid; ``quick`` selects the CI subset.

    The full grid keeps the quick cells, so a full baseline regeneration
    still contains every cell the CI quick diff needs to compare.
    """
    cells = [
        {"family": "expander", "n": 8, "transport": "uds", "quick": True},
        {"family": "hypercube", "n": 8, "transport": "uds", "quick": True},
    ]
    if not quick:
        cells.extend(
            [
                {"family": "expander", "n": 8, "transport": "tcp", "quick": False},
                {"family": "expander", "n": 16, "transport": "uds", "quick": False},
                {"family": "hypercube", "n": 16, "transport": "uds", "quick": False},
            ]
        )
    return cells


def _run_cell(cell: Dict[str, object]) -> Dict[str, object]:
    """Time one grid cell; returns the cell dict extended with measurements."""
    family = str(cell["family"])
    n = int(cell["n"])
    transport = str(cell["transport"])
    spec = TrialSpec(
        graph=_graph_spec(family, n),
        algorithm="election",
        seed=TRIAL_SEED,
        params=FAST,
    )

    def run_once() -> Tuple[int, int]:
        agreement = cross_validate(spec, transport=transport)
        if not agreement.agrees:
            raise RuntimeError(
                "live run diverged from the simulator in cell %s/%d/%s:\n%s"
                % (family, n, transport, "\n".join(agreement.mismatches))
            )
        events = agreement.live.metrics.net_events
        return int(events["barriers"]), int(events["frames"])

    barriers = frames = 0
    reps = 0
    start = time.perf_counter()
    while True:
        cell_barriers, cell_frames = run_once()
        barriers += cell_barriers
        frames += cell_frames
        reps += 1
        elapsed = time.perf_counter() - start
        if reps >= MAX_REPS or elapsed >= MIN_SECONDS:
            break
    rounds_per_sec = barriers / elapsed if elapsed > 0 else float("inf")
    return {
        "family": family,
        "n": n,
        "transport": transport,
        "quick": bool(cell["quick"]),
        "reps": reps,
        "seconds": round(elapsed, 4),
        "barriers": barriers,
        "frames": frames,
        "rounds_per_sec": round(rounds_per_sec, 4),
        "round_latency_ms": round(1000.0 / rounds_per_sec, 4) if barriers else 0.0,
        "elections_per_sec": round(reps / elapsed, 4) if elapsed > 0 else float("inf"),
    }


def _cell_key(cell: Dict[str, object]) -> Tuple[str, int, str]:
    return (str(cell["family"]), int(cell["n"]), str(cell["transport"]))


def measure(quick: bool) -> Dict[str, object]:
    """Run the full grid and assemble the baseline document."""
    results = []
    for cell in _grid(quick):
        result = _run_cell(cell)
        results.append(result)
        print(
            "%-10s n=%-4d %-4s %8.1f rounds/sec  %7.2f ms/round  (%d election(s))"
            % (
                result["family"],
                result["n"],
                result["transport"],
                result["rounds_per_sec"],
                result["round_latency_ms"],
                result["reps"],
            ),
            flush=True,
        )
    return {
        "version": BASELINE_VERSION,
        "unit": "rounds_per_sec",
        "quick": quick,
        "cells": results,
    }


def diff_against_baseline(
    current: Dict[str, object],
    baseline: Dict[str, object],
    fail_threshold: float,
    warn_threshold: float,
) -> Tuple[List[str], List[str]]:
    """Machine-speed-normalised per-cell comparison (same scheme as
    ``perf_driver.py``): cells present on only one side warn, shared cells
    falling behind the median drift fail."""
    current_by_key = {_cell_key(c): c for c in current["cells"]}
    baseline_by_key = {_cell_key(c): c for c in baseline["cells"]}
    shared = sorted(set(current_by_key) & set(baseline_by_key))
    warnings: List[str] = []
    failures: List[str] = []
    for key in sorted(set(baseline_by_key) - set(current_by_key)):
        warnings.append("cell %r is in the baseline but was not measured" % (key,))
    for key in sorted(set(current_by_key) - set(baseline_by_key)):
        warnings.append("cell %r was measured but has no baseline entry" % (key,))
    if not shared:
        failures.append("no cells shared with the baseline; nothing to diff")
        return failures, warnings

    ratios = [
        current_by_key[key]["rounds_per_sec"] / baseline_by_key[key]["rounds_per_sec"]
        for key in shared
    ]
    factor = statistics.median(ratios)
    print("machine-speed factor (median current/baseline): %.3f" % factor)
    for key, ratio in zip(shared, ratios):
        relative = ratio / factor
        line = "%-10s n=%-4d %-4s %+6.1f%% vs baseline (normalised)" % (
            key[0],
            key[1],
            key[2],
            (relative - 1.0) * 100.0,
        )
        if relative < 1.0 - fail_threshold:
            failures.append(line)
        elif abs(relative - 1.0) > warn_threshold:
            warnings.append(line)
    return failures, warnings


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="run the CI subset of the grid"
    )
    parser.add_argument(
        "--output", help="write the measured baseline document to this path"
    )
    parser.add_argument(
        "--baseline",
        nargs="?",
        const=DEFAULT_BASELINE,
        help="diff the fresh measurements against this committed baseline "
        "(default when the flag is given without a value: BENCH_net.json "
        "at the repository root)",
    )
    parser.add_argument(
        "--fail-threshold",
        type=float,
        default=0.30,
        help="normalised per-cell slowdown that fails the run (default 0.30)",
    )
    parser.add_argument(
        "--warn-threshold",
        type=float,
        default=0.15,
        help="normalised per-cell drift that warns (default 0.15)",
    )
    args = parser.parse_args(argv)

    document = measure(args.quick)

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.output)

    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        if baseline.get("version") != BASELINE_VERSION:
            print(
                "baseline version %r != driver version %d; regenerate it"
                % (baseline.get("version"), BASELINE_VERSION),
                file=sys.stderr,
            )
            return 1
        failures, warnings = diff_against_baseline(
            document, baseline, args.fail_threshold, args.warn_threshold
        )
        for line in warnings:
            print("WARN %s" % line)
        for line in failures:
            print("FAIL %s" % line, file=sys.stderr)
        if failures:
            return 1
        print("perf trajectory OK (%d cells compared)" % len(document["cells"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
