"""The stdlib REST status endpoint and snapshot writing."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.net.status import StatusBoard, StatusServer, write_snapshot


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


class TestStatusBoard:
    def test_update_and_snapshot(self):
        board = StatusBoard(algorithm="election")
        assert board.snapshot() == {"state": "starting", "algorithm": "election"}
        board.update(state="running", round=7)
        assert board.snapshot()["round"] == 7

    def test_snapshot_is_a_copy(self):
        board = StatusBoard()
        snapshot = board.snapshot()
        snapshot["state"] = "tampered"
        assert board.snapshot()["state"] == "starting"

    def test_concurrent_updates_do_not_corrupt(self):
        board = StatusBoard()

        def bump(key):
            for value in range(200):
                board.update(**{key: value})

        threads = [
            threading.Thread(target=bump, args=("k%d" % i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = board.snapshot()
        assert all(snapshot["k%d" % i] == 199 for i in range(4))


class TestStatusServer:
    def test_serves_status_and_healthz(self):
        board = StatusBoard(algorithm="election", n=8)
        server = StatusServer(board, port=0)
        try:
            status, payload = _get(server.url + "/status")
            assert status == 200
            assert payload["algorithm"] == "election"
            board.update(state="running", round=12)
            _, payload = _get(server.url + "/status")
            assert payload["round"] == 12
            _, health = _get(server.url + "/healthz")
            assert health == {"ok": True}
        finally:
            server.close()

    def test_unknown_path_is_404(self):
        server = StatusServer(StatusBoard(), port=0)
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/nope")
            assert excinfo.value.code == 404
        finally:
            server.close()


def test_write_snapshot(tmp_path):
    board = StatusBoard(state="finished", winners=[3])
    path = write_snapshot(tmp_path / "status.json", board)
    with open(path, encoding="utf-8") as handle:
        assert json.load(handle) == {"state": "finished", "winners": [3]}
