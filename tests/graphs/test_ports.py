"""Unit tests for the port-numbered graph view (anonymity model)."""

import pytest

from repro.graphs import PortNumberedGraph, complete_graph, cycle_graph, star_graph


class TestPortAssignment:
    def test_degree_matches_graph(self):
        graph = star_graph(6)
        ports = PortNumberedGraph(graph, seed=1)
        assert ports.degree(0) == 5
        assert ports.degree(3) == 1

    def test_ports_cover_all_neighbors(self):
        graph = complete_graph(7)
        ports = PortNumberedGraph(graph, seed=2)
        for v in graph.nodes():
            reached = {ports.port_to_neighbor(v, p) for p in ports.ports(v)}
            assert reached == set(graph.neighbors(v))

    def test_round_trip_port_lookup(self):
        graph = cycle_graph(9)
        ports = PortNumberedGraph(graph, seed=3)
        for v in graph.nodes():
            for p in ports.ports(v):
                neighbor = ports.port_to_neighbor(v, p)
                assert ports.neighbor_to_port(v, neighbor) == p

    def test_invalid_port_raises(self):
        ports = PortNumberedGraph(cycle_graph(5), seed=1)
        with pytest.raises(ValueError):
            ports.port_to_neighbor(0, 2)

    def test_non_adjacent_lookup_raises(self):
        ports = PortNumberedGraph(cycle_graph(6), seed=1)
        with pytest.raises(ValueError):
            ports.neighbor_to_port(0, 3)

    def test_assignment_is_seeded(self):
        graph = complete_graph(8)
        a = PortNumberedGraph(graph, seed=11)
        b = PortNumberedGraph(graph, seed=11)
        c = PortNumberedGraph(graph, seed=12)
        same = all(
            a.port_to_neighbor(v, p) == b.port_to_neighbor(v, p)
            for v in graph.nodes()
            for p in a.ports(v)
        )
        assert same
        different = any(
            a.port_to_neighbor(v, p) != c.port_to_neighbor(v, p)
            for v in graph.nodes()
            for p in a.ports(v)
        )
        assert different

    def test_endpoints_of_port(self):
        graph = cycle_graph(4)
        ports = PortNumberedGraph(graph, seed=5)
        v, u = ports.endpoints_of_port(2, 0)
        assert v == 2
        assert graph.has_edge(v, u)

    def test_exposes_sizes(self):
        graph = cycle_graph(10)
        ports = PortNumberedGraph(graph, seed=1)
        assert ports.num_nodes == 10
        assert ports.num_edges == 10
        assert ports.graph is graph
