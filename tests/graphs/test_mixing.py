"""Unit tests for lazy random walks and mixing times."""

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    expander_graph,
    hypercube_graph,
    lazy_transition_matrix,
    linf_distance_to_stationary,
    mixing_profile,
    mixing_time,
    path_graph,
    spectral_mixing_time_estimate,
    stationary_distribution,
    walk_distribution,
)
from repro.graphs.mixing import cached_mixing_time


class TestTransitionMatrix:
    def test_rows_are_stochastic(self):
        graph = cycle_graph(7)
        matrix = lazy_transition_matrix(graph)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_laziness_on_diagonal(self):
        graph = complete_graph(5)
        matrix = lazy_transition_matrix(graph)
        assert np.allclose(np.diag(matrix), 0.5)

    def test_neighbor_probability(self):
        graph = cycle_graph(6)
        matrix = lazy_transition_matrix(graph)
        assert matrix[0, 1] == pytest.approx(0.25)
        assert matrix[0, 3] == 0.0

    def test_stationary_is_degree_proportional(self):
        graph = path_graph(4)
        pi = stationary_distribution(graph)
        assert pi[0] == pytest.approx(1 / 6)
        assert pi[1] == pytest.approx(2 / 6)
        assert pi.sum() == pytest.approx(1.0)

    def test_stationary_is_fixed_point(self):
        graph = expander_graph(16, seed=3)
        matrix = lazy_transition_matrix(graph)
        pi = stationary_distribution(graph)
        assert np.allclose(pi @ matrix, pi)


class TestWalkDistribution:
    def test_zero_steps_is_point_mass(self):
        graph = cycle_graph(5)
        dist = walk_distribution(graph, 2, 0)
        assert dist[2] == 1.0

    def test_distribution_converges(self):
        graph = complete_graph(8)
        pi = stationary_distribution(graph)
        dist = walk_distribution(graph, 0, 30)
        assert np.allclose(dist, pi, atol=1e-6)

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            walk_distribution(cycle_graph(5), 0, -1)

    def test_linf_distance(self):
        graph = complete_graph(4)
        dist = np.eye(4)[0]
        distance = linf_distance_to_stationary(graph, dist)
        assert distance == pytest.approx(0.75)


class TestMixingTime:
    def test_complete_graph_mixes_fast(self):
        assert mixing_time(complete_graph(16)) <= 10

    def test_cycle_mixes_slowly(self):
        short = mixing_time(cycle_graph(8))
        long = mixing_time(cycle_graph(16))
        assert long > short

    def test_definition_threshold_is_met(self):
        graph = hypercube_graph(3)
        t = mixing_time(graph)
        n = graph.num_nodes
        worst = max(
            np.max(np.abs(walk_distribution(graph, v, t) - stationary_distribution(graph)))
            for v in graph.nodes()
        )
        assert worst <= 1 / (2 * n) + 1e-12

    def test_one_step_before_mixing_violates_threshold(self):
        graph = cycle_graph(12)
        t = mixing_time(graph)
        n = graph.num_nodes
        worst = max(
            np.max(np.abs(walk_distribution(graph, v, t - 1) - stationary_distribution(graph)))
            for v in graph.nodes()
        )
        assert worst > 1 / (2 * n)

    def test_disconnected_rejected(self):
        graph = Graph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            mixing_time(graph)

    def test_max_steps_cap(self):
        with pytest.raises(RuntimeError):
            mixing_time(cycle_graph(32), max_steps=3)

    def test_expander_mixing_time_is_logarithmic(self):
        graph = expander_graph(128, seed=1)
        assert mixing_time(graph) <= 12 * np.log2(128)

    def test_spectral_estimate_same_order(self):
        graph = expander_graph(64, seed=2)
        exact = mixing_time(graph)
        estimate = spectral_mixing_time_estimate(graph)
        assert estimate / 8 <= exact <= estimate * 8

    def test_mixing_profile_fields(self):
        graph = hypercube_graph(4)
        profile = mixing_profile(graph)
        assert profile.num_nodes == 16
        assert profile.mixing_time == mixing_time(graph)
        assert profile.spectral_gap > 0
        assert "t_mix" in str(profile)


class TestLaziness:
    def test_diagonal_follows_laziness(self):
        graph = cycle_graph(6)
        matrix = lazy_transition_matrix(graph, laziness=0.25)
        assert np.allclose(np.diag(matrix), 0.25)
        assert matrix[0, 1] == pytest.approx(0.375)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_invalid_laziness_rejected(self):
        graph = cycle_graph(4)
        with pytest.raises(ValueError):
            lazy_transition_matrix(graph, laziness=1.0)
        with pytest.raises(ValueError):
            lazy_transition_matrix(graph, laziness=-0.1)

    def test_less_lazy_walk_mixes_no_slower(self):
        graph = expander_graph(32, seed=4)
        assert mixing_time(graph, laziness=0.25) <= mixing_time(graph)

    def test_cache_keys_include_laziness(self):
        graph = expander_graph(32, seed=4)
        half = cached_mixing_time(graph)
        quarter = cached_mixing_time(graph, laziness=0.25)
        assert half == mixing_time(graph)
        assert quarter == mixing_time(graph, laziness=0.25)
        # Both entries coexist; asking again returns the memoised values.
        assert cached_mixing_time(graph) == half
        assert cached_mixing_time(graph, laziness=0.25) == quarter
        key = (graph._mutations, 0.25)
        assert graph._mixing_time_cache[key] == quarter

    def test_cache_invalidated_by_mutation(self):
        graph = cycle_graph(8)
        before = cached_mixing_time(graph)
        graph.add_edge(0, 4)
        after = cached_mixing_time(graph)
        assert after == mixing_time(graph)
        assert after != before or graph._mixing_time_cache["version"] == graph._mutations
