"""Fleet dispatcher tests: placement, resume, and single-machine equivalence.

The load-bearing property: a campaign dispatched over ``m`` hosts produces a
merged ``report.json``/``report.md`` byte-identical to the same campaign run
on a single machine, and re-running the fleet serves every trial from the
merged cache without placing anything.
"""

import io
import json
import os

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, write_report
from repro.exec import ExecutionProfile, GraphSpec, ResultCache, SweepSpec, TrialSpec
from repro.exec.wire import WIRE_VERSION, read_frame, spec_to_dict, write_frame
from repro.exec.fingerprint import trial_fingerprint
from repro.fleet import (
    FLEET_STATUS_SCHEMA,
    FleetDispatcher,
    HostSpec,
    local_inventory,
)
from repro.fleet import host as fleet_host

#: Fast fleet supervision cadence for tests (hosts answer in well under 2 s).
FLEET_KWARGS = dict(heartbeat_seconds=0.5, hang_deadline_seconds=10.0)


def _campaign(trials=2, name="fleet-test", sizes=(8, 10)):
    return CampaignSpec(
        name=name,
        sweeps=(
            SweepSpec(
                name="cliques",
                configs=tuple(
                    TrialSpec(graph=GraphSpec("clique", (n,)), algorithm="flood_max")
                    for n in sizes
                ),
                trials=trials,
                base_seed=3,
            ),
        ),
    )


class TestConstructorValidation:
    def test_needs_hosts_with_unique_names(self, tmp_path):
        with pytest.raises(ValueError, match="at least one host"):
            FleetDispatcher(_campaign(), (), tmp_path)
        twins = (HostSpec(name="a"), HostSpec(name="a"))
        with pytest.raises(ValueError, match="unique"):
            FleetDispatcher(_campaign(), twins, tmp_path)

    def test_profile_must_be_a_profile_of_names(self, tmp_path):
        hosts = local_inventory(1)
        with pytest.raises(TypeError, match="ExecutionProfile"):
            FleetDispatcher(_campaign(), hosts, tmp_path, profile="sqlite")
        live = ExecutionProfile(cache_backend=ResultCache(tmp_path / "c")._backend)
        with pytest.raises(TypeError, match="live instance"):
            FleetDispatcher(_campaign(), hosts, tmp_path, profile=live)

    def test_supervision_parameters_are_validated(self, tmp_path):
        hosts = local_inventory(1)
        with pytest.raises(ValueError, match="heartbeat_seconds"):
            FleetDispatcher(_campaign(), hosts, tmp_path, heartbeat_seconds=0)
        with pytest.raises(ValueError, match="exceed"):
            FleetDispatcher(
                _campaign(), hosts, tmp_path, heartbeat_seconds=2.0, hang_deadline_seconds=1.0
            )
        with pytest.raises(ValueError, match="shards"):
            FleetDispatcher(_campaign(), hosts, tmp_path, shards=0)
        with pytest.raises(ValueError, match="max_placements"):
            FleetDispatcher(_campaign(), hosts, tmp_path, max_placements_per_shard=0)

    def test_default_shards_oversubscribe_the_fleet(self, tmp_path):
        dispatcher = FleetDispatcher(_campaign(), local_inventory(3), tmp_path)
        assert dispatcher.shards == 6, "2x hosts so fast hosts can steal work"


class TestFleetRun:
    def test_fleet_executes_campaign_and_writes_all_artifacts(self, tmp_path):
        campaign = _campaign()
        directory = str(tmp_path / "run")
        result = FleetDispatcher(
            campaign, local_inventory(2), directory, **FLEET_KWARGS
        ).run()

        counts = result.manifest.counts()
        assert counts["executed"] == campaign.num_trials
        assert counts["failed"] == 0
        assert counts["cached"] == 0
        assert os.path.exists(os.path.join(directory, "manifest.json"))
        assert os.path.exists(os.path.join(directory, "report.json"))
        assert result.status["schema"] == FLEET_STATUS_SCHEMA
        assert result.status["trials"]["done"] == campaign.num_trials
        statuses = {host["name"]: host["status"] for host in result.status["hosts"]}
        assert statuses == {"host-0": "done", "host-1": "done"}
        assert "0 died" in result.describe()
        # The per-host trial tallies cover the whole campaign: work stealing
        # split the shards, nothing ran twice.
        assert sum(h["trials_done"] for h in result.status["hosts"]) == campaign.num_trials

    @pytest.mark.parametrize("m", [2, 3])
    def test_fleet_report_is_byte_identical_to_single_machine(self, tmp_path, m):
        """The acceptance property: merged fleet report == single-machine
        report, byte for byte, for m hosts."""
        campaign = _campaign(name="fleet-equiv")
        single_dir = str(tmp_path / "single")
        cache = ResultCache(os.path.join(single_dir, "cache"))
        CampaignRunner(campaign, cache, workers=1, directory=single_dir).run()
        write_report(campaign, cache, single_dir)

        fleet_dir = str(tmp_path / ("fleet-%d" % m))
        FleetDispatcher(
            campaign, local_inventory(m), fleet_dir, **FLEET_KWARGS
        ).run()

        for artifact in ("report.json", "report.md"):
            with open(os.path.join(single_dir, artifact), "rb") as handle:
                expected = handle.read()
            with open(os.path.join(fleet_dir, artifact), "rb") as handle:
                assert handle.read() == expected, "%s differs for m=%d" % (artifact, m)

    def test_rerun_resumes_fully_from_the_merged_cache(self, tmp_path):
        campaign = _campaign()
        directory = str(tmp_path / "run")
        FleetDispatcher(campaign, local_inventory(2), directory, **FLEET_KWARGS).run()
        resumed = FleetDispatcher(
            campaign, local_inventory(2), directory, **FLEET_KWARGS
        ).run()
        counts = resumed.manifest.counts()
        assert counts["cached"] == campaign.num_trials
        assert counts["executed"] == 0
        # Nothing was pending, so no host process was ever spawned.
        assert all(host["pid"] is None for host in resumed.status["hosts"])

    def test_undispatchable_spec_fails_fast(self, tmp_path):
        from repro.exec.algorithms import ALGORITHMS, register_algorithm

        @register_algorithm("_fleet_local_only_test")
        def local_algorithm(graph, spec):  # pragma: no cover - never runs
            raise AssertionError

        try:
            campaign = CampaignSpec(
                name="undispatchable",
                sweeps=(
                    SweepSpec(
                        name="s",
                        configs=(
                            TrialSpec(
                                graph=GraphSpec("clique", (8,)),
                                algorithm="_fleet_local_only_test",
                            ),
                        ),
                        trials=1,
                        base_seed=1,
                    ),
                ),
            )
            dispatcher = FleetDispatcher(
                campaign, local_inventory(1), tmp_path / "run", **FLEET_KWARGS
            )
            with pytest.raises(ValueError, match="cannot be dispatched"):
                dispatcher.run()
        finally:
            del ALGORITHMS["_fleet_local_only_test"]


def _drive_host(*frames):
    """Feed frames to the host serve loop in-process; return (status, replies)."""
    stdin = io.BytesIO()
    for frame in frames:
        write_frame(stdin, frame)
    stdin.seek(0)
    stdout = io.BytesIO()
    status = fleet_host._serve(stdin, stdout)
    stdout.seek(0)
    replies = []
    while True:
        frame = read_frame(stdout)
        if frame is None:
            break
        replies.append(frame)
    return status, replies


class TestHostServeLoop:
    def test_ping_shutdown_and_clean_eof(self):
        status, replies = _drive_host({"op": "ping"})
        assert status == 0, "EOF is a clean shutdown"
        assert replies[0]["ok"] is True
        assert replies[0]["version"] == WIRE_VERSION
        status, replies = _drive_host({"op": "shutdown"}, {"op": "ping"})
        assert status == 0
        assert len(replies) == 1, "shutdown stops before later frames"

    def test_unknown_op_answers_an_error_frame(self):
        _, replies = _drive_host({"op": "launch_missiles"})
        assert "unknown op" in replies[0]["error"]

    def test_version_mismatch_is_a_request_level_error(self):
        _, replies = _drive_host(
            {"op": "run_shard", "version": WIRE_VERSION + 1, "shard": "0/1", "trials": []}
        )
        assert "wire version" in replies[0]["error"]
        assert replies[0]["results"] == []

    def test_missing_cache_root_is_a_request_level_error(self):
        _, replies = _drive_host(
            {"op": "run_shard", "version": WIRE_VERSION, "shard": "0/1", "trials": []}
        )
        assert "cache_root" in replies[0]["error"]

    def test_run_shard_executes_and_reports_per_trial_statuses(self, tmp_path):
        spec = TrialSpec(graph=GraphSpec("clique", (8,)), algorithm="flood_max", seed=5)
        fingerprint = trial_fingerprint(spec)
        request = {
            "op": "run_shard",
            "version": WIRE_VERSION,
            "shard": "0/1",
            "cache_root": str(tmp_path / "cache"),
            "workers": 1,
            "heartbeat_seconds": 0,
            "trials": [
                {
                    "fingerprint": fingerprint,
                    "sweep": "s",
                    "index": 0,
                    "spec": spec_to_dict(spec),
                },
                {"fingerprint": "bogus", "sweep": "s", "index": 1, "spec": {"junk": 1}},
            ],
        }
        _, replies = _drive_host(request)
        progress = [frame for frame in replies if frame.get("op") == "progress"]
        assert progress[0]["event"] == "trial_started"
        assert progress[-1]["event"] == "trial_finished"
        result = [frame for frame in replies if frame.get("op") == "shard_result"][0]
        by_fingerprint = {entry["fingerprint"]: entry for entry in result["results"]}
        assert by_fingerprint[fingerprint]["status"] == "executed"
        assert by_fingerprint["bogus"]["status"] == "failed"
        assert "undecodable" in by_fingerprint["bogus"]["error"]
        # The executed trial landed in the host's cache...
        assert ResultCache(tmp_path / "cache").get(fingerprint) is not None
        # ...so the same request again is served as "cached".
        _, replies = _drive_host(request)
        result = [frame for frame in replies if frame.get("op") == "shard_result"][0]
        by_fingerprint = {entry["fingerprint"]: entry for entry in result["results"]}
        assert by_fingerprint[fingerprint]["status"] == "cached"


class TestFleetStatusFile:
    def test_fleet_json_is_valid_and_schema_tagged(self, tmp_path):
        directory = str(tmp_path / "run")
        FleetDispatcher(
            _campaign(), local_inventory(2), directory, **FLEET_KWARGS
        ).run()
        with open(os.path.join(directory, "fleet.json"), "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["schema"] == FLEET_STATUS_SCHEMA
        assert document["version"] == 1
        assert document["campaign"] == "fleet-test"
        for host in document["hosts"]:
            assert set(host) == {
                "name",
                "status",
                "pid",
                "shard",
                "shards_done",
                "trials_done",
                "heartbeats",
                "last_frame_age_s",
            }
