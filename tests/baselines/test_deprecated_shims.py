"""The migration contract of the deprecated ``run_*_election`` shims.

Each shim must (a) emit a ``DeprecationWarning`` naming its replacement and
(b) return exactly the numbers its ``*_trial`` successor produces -- the
envelope changed, nothing else.  The docs/architecture.md migration note
points here.
"""

import warnings

import pytest

from repro.baselines import (
    clique_sublinear_trial,
    controlled_flooding_trial,
    flood_max_trial,
    known_tmix_trial,
    run_clique_sublinear_election,
    run_controlled_flooding_election,
    run_flood_max_election,
    run_known_tmix_election,
)
from repro.graphs import complete_graph

SEED = 17


def _quietly(function, *args, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return function(*args, **kwargs)


@pytest.mark.parametrize(
    "shim, trial",
    [
        (run_flood_max_election, flood_max_trial),
        (run_controlled_flooding_election, controlled_flooding_trial),
        (run_clique_sublinear_election, clique_sublinear_trial),
    ],
)
def test_shims_warn_and_match_their_trial_function(shim, trial):
    graph = complete_graph(20)
    with pytest.warns(DeprecationWarning, match="deprecated"):
        old = shim(graph, seed=SEED)
    new = trial(graph, seed=SEED)
    assert old.leaders == new.winners
    assert old.metrics == new.metrics
    assert old.num_nodes == new.num_nodes


def test_known_tmix_shim_matches_trial():
    graph = complete_graph(20)
    with pytest.warns(DeprecationWarning, match="known_tmix_trial"):
        old = run_known_tmix_election(graph, mixing_time=2, seed=SEED)
    new = known_tmix_trial(graph, 2, seed=SEED)
    assert old.leaders == new.winners
    assert old.metrics == new.metrics
    assert old.classification == new.classification


def test_shim_results_are_baseline_shaped():
    """The shims keep their historical return types for old callers."""
    outcome = _quietly(run_flood_max_election, complete_graph(12), seed=1)
    record = outcome.as_record()
    assert record["num_contenders"] == 12
    assert record["success"] is True
