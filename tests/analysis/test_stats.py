"""Tests for the statistics helpers."""

import pytest

from repro.analysis import (
    confidence_interval,
    mean,
    std,
    success_rate,
    summarize,
    wilson_interval,
)


class TestBasicStatistics:
    def test_mean(self):
        assert mean([1, 2, 3, 4]) == pytest.approx(2.5)

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_std_of_constant_sequence(self):
        assert std([5, 5, 5]) == 0.0

    def test_std_known_value(self):
        assert std([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.138, rel=1e-3)

    def test_std_single_sample(self):
        assert std([3]) == 0.0

    def test_success_rate(self):
        assert success_rate([True, False, True, True]) == pytest.approx(0.75)

    def test_success_rate_empty_rejected(self):
        with pytest.raises(ValueError):
            success_rate([])


class TestIntervals:
    def test_confidence_interval_contains_mean(self):
        low, high = confidence_interval([10, 12, 11, 13, 9])
        assert low <= mean([10, 12, 11, 13, 9]) <= high

    def test_confidence_interval_single_sample(self):
        assert confidence_interval([4.0]) == (4.0, 4.0)

    def test_wilson_interval_bounds(self):
        low, high = wilson_interval(8, 10)
        assert 0.0 <= low <= 0.8 <= high <= 1.0

    def test_wilson_interval_extremes(self):
        low, high = wilson_interval(0, 20)
        assert low == 0.0
        low, high = wilson_interval(20, 20)
        assert high == 1.0

    def test_wilson_rejects_bad_input(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(7, 5)


class TestSummaries:
    def test_summarize_fields(self):
        summary = summarize([1.0, 2.0, 6.0])
        assert summary.count == 3
        assert summary.mean == pytest.approx(3.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 6.0
        assert "mean=" in str(summary)

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
