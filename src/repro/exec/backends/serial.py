"""In-process execution: no pool, no pickling, no subprocesses."""

from __future__ import annotations

from concurrent.futures import Future
from typing import Iterator, Sequence, Tuple

from ..execute import TrialPayload, guarded_payload
from ..spec import TrialSpec
from .base import ExecutionBackend

__all__ = ["SerialBackend"]


class SerialBackend(ExecutionBackend):
    """Execute every trial in the submitting process, one after the other.

    The reference backend: everything else must match it bit for bit.  With
    no worker processes there is nothing to survive the death of --
    ``survives_worker_death`` is ``False`` because the "worker" is the
    orchestrating process itself.
    """

    name = "serial"
    survives_worker_death = False

    def submit(self, spec: TrialSpec) -> "Future[TrialPayload]":
        """Execute immediately; the returned future is already resolved."""
        future: "Future[TrialPayload]" = Future()
        future.set_result(guarded_payload(spec))
        return future

    def map(self, specs: Sequence[TrialSpec]) -> Iterator[Tuple[int, TrialPayload]]:
        """Execute lazily in submission order.

        Laziness matters for ``on_error="raise"``: the runner stops
        consuming at the first failure, so trials after it never execute --
        the historical serial semantics.
        """
        for index, spec in enumerate(specs):
            yield index, guarded_payload(spec)
