"""Broadcast substrates: push-pull gossip and flooding."""

from .flooding import FloodingNode, FloodingOutcome, flooding_factory, run_flooding_broadcast
from .push_pull import BroadcastOutcome, PushPullNode, push_pull_factory, run_push_pull_broadcast
from .spanning_tree import (
    SpanningTreeNode,
    SpanningTreeOutcome,
    run_spanning_tree_construction,
    spanning_tree_factory,
)

__all__ = [
    "PushPullNode",
    "push_pull_factory",
    "BroadcastOutcome",
    "run_push_pull_broadcast",
    "FloodingNode",
    "flooding_factory",
    "FloodingOutcome",
    "run_flooding_broadcast",
    "SpanningTreeNode",
    "spanning_tree_factory",
    "SpanningTreeOutcome",
    "run_spanning_tree_construction",
]
