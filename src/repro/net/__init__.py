"""Election as a service: live node processes over real sockets.

Everything below :mod:`repro.sim` executes the paper's model in one process.
This package deploys the *same* protocols as real operating-system processes
exchanging :mod:`repro.exec.wire` frames over TCP or Unix-domain sockets:

* :mod:`repro.net.node` -- one protocol instance per process, anonymous and
  topology-blind exactly as the model demands;
* :mod:`repro.net.coordinator` -- spawns the node fleet, routes frames in
  lock-step rounds, injects the trial's fault plan as real transport faults
  (message drops/delays on the relay, crash-stops as ``SIGKILL``), and
  aggregates the final :class:`~repro.core.result.TrialOutcome`;
* :mod:`repro.net.transport` -- framing, addresses, and the payload codec;
* :mod:`repro.net.protocols` -- per-algorithm deployment profiles;
* :mod:`repro.net.faults` -- the plan-to-transport fault mapping;
* :mod:`repro.net.status` -- the stdlib REST status endpoint.

The headline guarantee is **cross-validation**: a live run of a
:class:`~repro.exec.spec.TrialSpec` produces the exact outcome the simulator
produces for the same seed -- winners, classification, crashed nodes and all
model-level metrics -- with the transport's own costs recorded separately in
``metrics.net_events``.  :func:`cross_validate` (the CLI's ``--verify``)
checks it in one call::

    python -m repro.net.coordinator --family expander --n 8 --seed 42 --verify
"""

from .protocols import LIVE_ALGORITHMS, get_profile
from .status import StatusBoard, StatusServer, write_snapshot
from .transport import NET_WIRE_VERSION, FrameStream, parse_address

#: Coordinator re-exports resolved lazily (PEP 562): ``python -m
#: repro.net.coordinator`` first imports this package, and an eager import of
#: the submodule about to be run as ``__main__`` would trigger runpy's
#: double-execution warning.
_COORDINATOR_EXPORTS = (
    "Agreement",
    "LiveElection",
    "compare_outcomes",
    "cross_validate",
    "run_live_trial",
)


def __getattr__(name: str):
    if name in _COORDINATOR_EXPORTS:
        from . import coordinator

        return getattr(coordinator, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))

__all__ = [
    "Agreement",
    "LiveElection",
    "compare_outcomes",
    "cross_validate",
    "run_live_trial",
    "LIVE_ALGORITHMS",
    "get_profile",
    "StatusBoard",
    "StatusServer",
    "write_snapshot",
    "NET_WIRE_VERSION",
    "FrameStream",
    "parse_address",
]
