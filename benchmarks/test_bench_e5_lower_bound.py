"""E5 -- Theorem 15 and Lemmas 18-20: cheap algorithms fail on the lower-bound graph.

Sweeps the walk-length (and hence message) budget of a single-phase election
on the Section 4.1 graph.  With small budgets the cliques never discover their
inter-clique edges (Lemma 18), the clique communication graph stays sparse
(Lemma 19) and several local leaders emerge; only budgets comfortably above
the ``Omega(sqrt(n)/phi^{3/4})`` threshold restore a unique leader.
"""

import random

import pytest

from repro.analysis import lower_bound_messages
from repro.lowerbound import (
    CliqueCommunicationTracker,
    build_lower_bound_graph,
    lemma18_expected_messages,
    run_walk_budget_election,
    sample_clique_discovery_messages,
)

SEED = 55
WALK_LENGTHS = [1, 2, 8, 32]

_LB = {}


def _graph():
    if "lb" not in _LB:
        _LB["lb"] = build_lower_bound_graph(240, clique_size=8, seed=SEED)
    return _LB["lb"]


@pytest.mark.parametrize("walk_length", WALK_LENGTHS)
def test_e5_budget_sweep(benchmark, walk_length):
    lb = _graph()
    tracker = CliqueCommunicationTracker(lb.node_to_clique)

    outcome = benchmark.pedantic(
        run_walk_budget_election,
        kwargs={
            "graph": lb.graph,
            "walk_length": walk_length,
            "seed": SEED,
            "observers": (tracker,),
        },
        rounds=1,
        iterations=1,
    )
    _LB[walk_length] = (outcome, tracker)
    benchmark.extra_info.update(
        {
            "walk_length": walk_length,
            "messages": outcome.messages,
            "leaders": outcome.num_leaders,
            "cg_edges": tracker.num_edges,
            "spontaneous_cliques": len(tracker.spontaneous_cliques()),
            "theorem15_threshold": round(lower_bound_messages(lb.num_nodes, lb.alpha), 1),
        }
    )
    assert outcome.num_leaders >= 1


def test_e5_failure_below_and_success_above_the_threshold(benchmark):
    def collect():
        lb = _graph()
        results = {}
        for walk_length in WALK_LENGTHS:
            if walk_length not in _LB:
                tracker = CliqueCommunicationTracker(lb.node_to_clique)
                outcome = run_walk_budget_election(
                    lb.graph, walk_length=walk_length, seed=SEED, observers=(tracker,)
                )
                _LB[walk_length] = (outcome, tracker)
            results[walk_length] = _LB[walk_length]
        return results

    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    cheap_outcome, cheap_tracker = results[WALK_LENGTHS[0]]
    rich_outcome, rich_tracker = results[WALK_LENGTHS[-1]]
    benchmark.extra_info.update(
        {
            "cheap_leaders": cheap_outcome.num_leaders,
            "rich_leaders": rich_outcome.num_leaders,
            "cheap_cg_edges": cheap_tracker.num_edges,
            "rich_cg_edges": rich_tracker.num_edges,
        }
    )
    # Below the threshold: many leaders and a fragmented communication graph.
    assert cheap_outcome.num_leaders > 1
    assert cheap_tracker.num_edges < rich_tracker.num_edges
    # Above the threshold: the election succeeds again.
    assert rich_outcome.num_leaders == 1


def test_e5_lemma18_discovery_cost(benchmark):
    """Messages before an inter-clique port is found scale with clique_size^2."""

    def sample():
        rng = random.Random(SEED)
        means = {}
        for clique_size in (6, 12, 24):
            samples = [sample_clique_discovery_messages(clique_size, rng) for _ in range(300)]
            means[clique_size] = sum(samples) / len(samples)
        return means

    means = benchmark.pedantic(sample, rounds=1, iterations=1)
    benchmark.extra_info.update({"mean_messages": {k: round(v, 1) for k, v in means.items()}})
    for clique_size, mean in means.items():
        assert mean >= lemma18_expected_messages(clique_size)
    assert means[24] > means[12] > means[6]
