"""Tests for the clique communication graph tracker."""

from repro.sim import Message

from repro.lowerbound import CliqueCommunicationTracker


def send(tracker, sender, receiver, round_number=0):
    tracker(round_number, sender, receiver, Message(kind="x", size_bits=8))


class TestTracker:
    def test_intra_clique_messages_do_not_create_edges(self):
        tracker = CliqueCommunicationTracker([0, 0, 1, 1])
        send(tracker, 0, 1)
        assert tracker.num_edges == 0
        assert tracker.inter_clique_messages == 0

    def test_inter_clique_message_creates_edge(self):
        tracker = CliqueCommunicationTracker([0, 0, 1, 1])
        send(tracker, 1, 2)
        assert tracker.num_edges == 1
        assert tracker.inter_clique_messages == 1

    def test_edges_are_undirected_and_deduplicated(self):
        tracker = CliqueCommunicationTracker([0, 0, 1, 1])
        send(tracker, 1, 2)
        send(tracker, 2, 1)
        send(tracker, 0, 3)
        assert tracker.num_edges == 1
        assert tracker.inter_clique_messages == 3

    def test_messages_per_clique(self):
        tracker = CliqueCommunicationTracker([0, 0, 1, 1])
        send(tracker, 0, 1)
        send(tracker, 0, 2)
        send(tracker, 3, 2)
        assert tracker.messages_sent_by_clique(0) == 2
        assert tracker.messages_sent_by_clique(1) == 1
        assert tracker.total_messages() == 3

    def test_spontaneous_cliques(self):
        tracker = CliqueCommunicationTracker([0, 1, 2])
        send(tracker, 0, 1, round_number=1)   # clique 0 sends before receiving
        send(tracker, 1, 2, round_number=2)   # clique 1 had already received
        assert tracker.spontaneous_cliques() == {0}

    def test_simultaneous_send_and_receive_counts_as_spontaneous(self):
        tracker = CliqueCommunicationTracker([0, 1])
        send(tracker, 0, 1, round_number=5)
        send(tracker, 1, 0, round_number=5)
        assert tracker.spontaneous_cliques() == {0, 1}

    def test_connected_components(self):
        tracker = CliqueCommunicationTracker([0, 1, 2, 3])
        send(tracker, 0, 1)
        components = sorted(sorted(c) for c in tracker.connected_components())
        assert [0, 1] in components
        assert [2] in components and [3] in components
        assert len(tracker.non_singleton_components()) == 1

    def test_disjointness_with_one_spontaneous_clique_per_component(self):
        tracker = CliqueCommunicationTracker([0, 1, 2])
        send(tracker, 0, 1, round_number=1)
        send(tracker, 1, 2, round_number=3)
        assert tracker.disjointness_holds()

    def test_disjointness_violated_when_two_spontaneous_cliques_merge(self):
        tracker = CliqueCommunicationTracker([0, 1])
        send(tracker, 0, 1, round_number=1)
        send(tracker, 1, 0, round_number=1)
        assert not tracker.disjointness_holds()

    def test_empty_tracker(self):
        tracker = CliqueCommunicationTracker([0, 0, 1])
        assert tracker.num_edges == 0
        assert tracker.spontaneous_cliques() == set()
        assert tracker.disjointness_holds()
        assert tracker.num_cliques == 2
