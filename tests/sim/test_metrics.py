"""Unit tests for the metrics collector."""

import pytest

from repro.sim import MetricsCollector


class TestMetricsCollector:
    def test_record_send_counts_units(self):
        collector = MetricsCollector(word_bits=32)
        collector.record_send("token", size_bits=70)
        metrics = collector.finalize(rounds=3, completed=True)
        assert metrics.messages == 1
        assert metrics.message_units == 3
        assert metrics.bits == 70
        assert metrics.messages_by_kind == {"token": 1}
        assert metrics.units_by_kind == {"token": 3}

    def test_multiple_kinds(self):
        collector = MetricsCollector(word_bits=16)
        collector.record_send("a", 16)
        collector.record_send("a", 16)
        collector.record_send("b", 8)
        metrics = collector.finalize(rounds=1, completed=True)
        assert metrics.messages == 3
        assert metrics.messages_by_kind == {"a": 2, "b": 1}

    def test_edge_load_tracking(self):
        collector = MetricsCollector(word_bits=8)
        collector.record_edge_load(edge_bits=64, capacity_bits=32)
        collector.record_edge_load(edge_bits=16, capacity_bits=32)
        metrics = collector.finalize(rounds=1, completed=True)
        assert metrics.max_edge_bits_in_round == 64
        assert metrics.congestion_events == 1

    def test_invalid_word_bits(self):
        with pytest.raises(ValueError):
            MetricsCollector(word_bits=0)

    def test_finalize_keeps_completion_flag(self):
        collector = MetricsCollector(word_bits=8)
        metrics = collector.finalize(rounds=7, completed=False)
        assert metrics.rounds == 7
        assert not metrics.completed

    def test_messages_per_node(self):
        collector = MetricsCollector(word_bits=8)
        for _ in range(10):
            collector.record_send("x", 8)
        metrics = collector.finalize(rounds=1, completed=True)
        assert metrics.messages_per_node(5) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            metrics.messages_per_node(0)

    def test_summary_string(self):
        collector = MetricsCollector(word_bits=8)
        collector.record_send("x", 8)
        metrics = collector.finalize(rounds=2, completed=True)
        summary = metrics.summary()
        assert "messages=1" in summary
        # A clean run stays one terse line: no fault or congestion noise.
        assert "faults" not in summary
        assert "congestion_events" not in summary

    def test_summary_includes_faults_and_congestion(self):
        collector = MetricsCollector(word_bits=8)
        collector.record_send("x", 8)
        collector.record_edge_load(edge_bits=64, capacity_bits=32)
        metrics = collector.finalize(
            rounds=2, completed=True, fault_events={"crashed": 2, "dropped": 1}
        )
        summary = metrics.summary()
        assert "congestion_events=1" in summary
        assert "faults[crashed=2,dropped=1]" in summary
