"""The committed perf baseline (BENCH_simcore.json) stays well-formed.

CI's perf-trajectory job diffs fresh measurements against this file; these
checks pin its structure and the repository's headline speedup claim so a
regenerated baseline cannot silently drop the cells the claim rests on.
No simulation runs here -- the file is validated as committed.
"""

import json
import os

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO_ROOT, "BENCH_simcore.json")

REQUIRED_CELL_KEYS = {
    "algorithm",
    "family",
    "n",
    "simulator",
    "trials",
    "seconds",
    "trials_per_sec",
}


def _load():
    with open(BASELINE_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _by_key(document):
    return {
        (c["algorithm"], c["family"], c["n"], c["simulator"]): c
        for c in document["cells"]
    }


def test_baseline_structure():
    document = _load()
    assert document["version"] == 1
    assert document["unit"] == "trials_per_sec"
    assert document["cells"], "baseline has no cells"
    for cell in document["cells"]:
        assert REQUIRED_CELL_KEYS <= set(cell), cell
        assert cell["trials_per_sec"] > 0, cell
        assert cell["trials"] >= 1, cell
        assert cell["simulator"] in ("reference", "vectorized"), cell


def test_baseline_covers_both_simulators_per_cell():
    by_key = _by_key(_load())
    for algorithm, family, n, simulator in by_key:
        other = "vectorized" if simulator == "reference" else "reference"
        assert (algorithm, family, n, other) in by_key, (
            "cell (%s, %s, %d) measured only under %s"
            % (algorithm, family, n, simulator)
        )


def test_committed_speedup_claim():
    """The acceptance pin: >=10x vectorized speedup on n>=512 expander
    election cells (and the grid actually contains such a cell)."""
    by_key = _by_key(_load())
    large_expander = [
        key
        for key in by_key
        if key[0] == "election"
        and key[1] == "expander"
        and key[2] >= 512
        and key[3] == "vectorized"
    ]
    assert large_expander, "baseline lost its n>=512 expander election cells"
    for key in large_expander:
        vectorized = by_key[key]["trials_per_sec"]
        reference = by_key[(key[0], key[1], key[2], "reference")]["trials_per_sec"]
        assert vectorized >= 10 * reference, (
            "committed speedup claim broken at %s: %.2fx"
            % (key, vectorized / reference)
        )
