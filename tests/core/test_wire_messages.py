"""Unit tests for the protocol's wire messages and their size accounting."""

from repro.core import messages as wire
from repro.sim.message import id_bits


class TestWalkToken:
    def test_payload_fields(self):
        message = wire.make_walk_token(
            origin=42, phase=3, steps_taken=5, count=17, n_hint=256, winner_flag=False
        )
        assert message.kind == wire.WALK_TOKEN
        assert message.payload["origin"] == 42
        assert message.payload["count"] == 17
        assert message.payload["steps"] == 5
        assert not message.payload["winner"]

    def test_size_independent_of_count_value_scale(self):
        small = wire.make_walk_token(1, 1, 1, 1, 256, False)
        large = wire.make_walk_token(1, 1, 1, 200, 256, False)
        # A count of 200 needs only a few more bits than a count of 1.
        assert large.size_bits - small.size_bits <= 8

    def test_aggregation_is_cheaper_than_individual_tokens(self):
        """The Lemma 12 optimisation: one token with a count beats `count` tokens."""
        aggregated = wire.make_walk_token(1, 1, 1, 100, 256, False)
        individual = wire.make_walk_token(1, 1, 1, 1, 256, False)
        assert aggregated.size_bits < 100 * individual.size_bits


class TestSetCarryingMessages:
    def test_report_size_scales_with_ids(self):
        empty = wire.make_report(1, 1, frozenset(), 0, 0, 256, False)
        full = wire.make_report(1, 1, frozenset(range(10)), 0, 0, 256, False)
        assert full.size_bits - empty.size_bits >= 9 * id_bits(256)

    def test_report_payload_roundtrip(self):
        message = wire.make_report(7, 2, frozenset({5, 6}), 3, 9, 128, True)
        assert message.payload["ids"] == frozenset({5, 6})
        assert message.payload["distinct"] == 3
        assert message.payload["proxies"] == 9
        assert message.payload["winner"]

    def test_distribute_and_collect_symmetry(self):
        ids = frozenset({1, 2, 3})
        distribute = wire.make_distribute(9, 1, ids, 64, False)
        collect = wire.make_collect(9, 1, ids, 64, False)
        assert distribute.kind == wire.DISTRIBUTE
        assert collect.kind == wire.COLLECT
        assert distribute.size_bits == collect.size_bits

    def test_all_sizes_positive(self):
        for message in (
            wire.make_walk_token(1, 0, 0, 1, 16, False),
            wire.make_report(1, 0, frozenset(), 0, 0, 16, False),
            wire.make_distribute(1, 0, frozenset(), 16, False),
            wire.make_collect(1, 0, frozenset(), 16, False),
            wire.make_winner_up(1, 0, 2, 16),
            wire.make_winner_down(1, 0, 2, 16),
        ):
            assert message.size_bits >= 1


class TestWinnerMessages:
    def test_winner_messages_carry_leader(self):
        up = wire.make_winner_up(origin=4, phase=2, leader_id=99, n_hint=64)
        down = wire.make_winner_down(origin=4, phase=2, leader_id=99, n_hint=64)
        assert up.payload["leader"] == 99
        assert down.payload["leader"] == 99
        assert up.kind != down.kind

    def test_winner_messages_are_constant_size(self):
        a = wire.make_winner_up(1, 1, 1, 256)
        b = wire.make_winner_up(10**9, 5, 10**9, 256)
        assert abs(a.size_bits - b.size_bits) <= 8
