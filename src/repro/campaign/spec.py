"""Campaign descriptions: named sweeps plus retry/resume policy, as plain data.

A :class:`CampaignSpec` bundles the :class:`~repro.exec.spec.SweepSpec`\\ s of
one evaluation campaign (scaling, baselines, robustness, ...) under unique
names, together with the :class:`RetryPolicy` the runner applies to transient
trial failures.  Like every other description in this codebase it is plain
data -- no callables, no handles -- so a campaign can be fingerprinted,
recorded in a manifest, sharded across machines and re-expanded identically
anywhere.

The unit of execution is the *expanded trial list*:

    >>> from repro.exec import GraphSpec, SweepSpec, TrialSpec
    >>> sweep = SweepSpec(
    ...     name="scaling",
    ...     configs=(TrialSpec(graph=GraphSpec("clique", (8,))),),
    ...     trials=2,
    ... )
    >>> campaign = CampaignSpec(name="demo", sweeps=(sweep,))
    >>> campaign.num_trials
    2
    >>> [name for name, spec in campaign.expand()]
    ['scaling', 'scaling']

Expansion is sweep-major in declaration order and delegates per-trial seed
derivation to ``SweepSpec.expand``, so a campaign run produces exactly the
trials (and numbers) the individual sweeps would.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..exec.fingerprint import trial_fingerprint
from ..exec.spec import SweepSpec, TrialSpec

__all__ = ["RetryPolicy", "CampaignSpec"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry of trials that fail with an exception.

    ``max_attempts`` is the total number of times one trial may run (first
    attempt included), so the default of 3 means "retry twice".  Trials in
    this codebase are deterministic in their spec, so retries exist for
    *transient* infrastructure failures -- a worker killed by the OS, a full
    disk, a flaky filesystem -- not for algorithmic randomness.

    >>> RetryPolicy().max_attempts
    3
    >>> RetryPolicy(max_attempts=1).retries
    0
    """

    max_attempts: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                "max_attempts must be at least 1, got %d" % self.max_attempts
            )

    @property
    def retries(self) -> int:
        """How many re-runs a failing trial gets after its first attempt."""
        return self.max_attempts - 1


@dataclass(frozen=True)
class CampaignSpec:
    """A named bundle of sweeps executed and reported as one campaign."""

    name: str
    sweeps: Tuple[SweepSpec, ...]
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a campaign needs a non-empty name")
        if not self.sweeps:
            raise ValueError("a campaign needs at least one sweep")
        names = [sweep.name for sweep in self.sweeps]
        if len(set(names)) != len(names):
            raise ValueError(
                "sweep names must be unique within a campaign, got %r" % names
            )

    # ------------------------------------------------------------- expansion
    @property
    def num_trials(self) -> int:
        """Total trial count over all sweeps."""
        return sum(sweep.num_trials for sweep in self.sweeps)

    def sweep(self, name: str) -> SweepSpec:
        """Look up one of the campaign's sweeps by name."""
        for sweep in self.sweeps:
            if sweep.name == name:
                return sweep
        raise KeyError(
            "campaign %r has no sweep %r; sweeps: %s"
            % (self.name, name, ", ".join(s.name for s in self.sweeps))
        )

    def expand(self) -> List[Tuple[str, TrialSpec]]:
        """The full deterministic trial list as ``(sweep name, spec)`` pairs.

        Sweep-major in declaration order; within a sweep the order is
        ``SweepSpec.expand``'s config-major order.  This is the canonical
        ordering every runner, manifest and report of the campaign uses.
        """
        pairs: List[Tuple[str, TrialSpec]] = []
        for sweep in self.sweeps:
            pairs.extend((sweep.name, spec) for spec in sweep.expand())
        return pairs

    # ----------------------------------------------------------- fingerprint
    def fingerprint(self, trial_fingerprints: Optional[Sequence[str]] = None) -> str:
        """Hex SHA-256 of the campaign's canonical expanded description.

        Stable across processes and machines for the same code version (it
        hashes every expanded trial's fingerprint, which embeds the
        executor's code-version tag), so a manifest can detect that it is
        being resumed against a different campaign than the one that wrote
        it.  ``trial_fingerprints`` may carry the expanded trials'
        precomputed fingerprints in :meth:`expand` order -- the campaign
        runner already holds them, and recomputing is O(edges) per
        inline-graph trial.
        """
        if trial_fingerprints is None:
            trial_fingerprints = [trial_fingerprint(spec) for _, spec in self.expand()]
        elif len(trial_fingerprints) != self.num_trials:
            raise ValueError(
                "expected %d trial fingerprints, got %d"
                % (self.num_trials, len(trial_fingerprints))
            )
        per_sweep = []
        offset = 0
        for sweep in self.sweeps:
            per_sweep.append(
                {
                    "name": sweep.name,
                    "trials": list(trial_fingerprints[offset : offset + sweep.num_trials]),
                }
            )
            offset += sweep.num_trials
        document = {
            "name": self.name,
            "max_attempts": self.retry.max_attempts,
            "sweeps": per_sweep,
        }
        encoded = json.dumps(document, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()
