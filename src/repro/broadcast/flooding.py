"""Flooding broadcast: the baseline that uses Theta(m) messages.

Used by the Corollary 26 experiment (broadcast lower bound on the Section 4.1
graphs) and as the dissemination step of the flood-max election baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set

from ..core.result import TrialOutcome, classify_broadcast
from ..faults.plan import FaultPlan
from ..graphs.topology import Graph
from ..sim.harness import run_protocol
from ..sim.message import Message, id_bits
from ..sim.metrics import RunMetrics
from ..sim.network import SimulationResult
from ..sim.node import Inbox, NodeContext, Protocol

__all__ = [
    "FloodingNode",
    "flooding_factory",
    "FloodingOutcome",
    "flooding_trial",
    "run_flooding_broadcast",
]

FLOOD = "flood"


class FloodingNode(Protocol):
    """Forward the rumor over every port the first time it is seen."""

    def __init__(self, ctx: NodeContext, sources: Set[int], rumor: int) -> None:
        super().__init__(ctx)
        n = ctx.known_n if ctx.known_n is not None else 2
        self.rumor: Optional[int] = rumor if ctx.node_index in sources else None
        self.forwarded = False
        self._rumor_bits = id_bits(max(2, n))

    def on_start(self) -> None:
        if self.rumor is not None:
            self._forward()

    def on_round(self, inbox: Inbox) -> None:
        for batch in inbox.values():
            for message in batch:
                if message.kind == FLOOD and self.rumor is None:
                    self.rumor = message.payload["rumor"]
        if self.rumor is not None and not self.forwarded:
            self._forward()

    def result(self) -> Dict[str, object]:
        return {"informed": self.rumor is not None, "rumor": self.rumor}

    def _forward(self) -> None:
        self.forwarded = True
        message = Message(kind=FLOOD, payload={"rumor": self.rumor}, size_bits=self._rumor_bits)
        for port in self.ctx.ports:
            self.ctx.send(port, message)


def flooding_factory(sources: Set[int], rumor: int):
    """Protocol factory for :class:`repro.sim.Network`."""

    def factory(ctx: NodeContext) -> FloodingNode:
        return FloodingNode(ctx, sources=sources, rumor=rumor)

    return factory


@dataclass
class FloodingOutcome:
    """Result of a flooding broadcast run."""

    num_nodes: int
    informed: int
    metrics: RunMetrics

    @property
    def all_informed(self) -> bool:
        return self.informed == self.num_nodes

    @property
    def messages(self) -> int:
        return self.metrics.messages

    @property
    def rounds(self) -> int:
        return self.metrics.rounds


def _simulate(
    graph: Graph,
    sources: Set[int],
    rumor: int,
    seed: Optional[int],
    fault_plan: Optional[FaultPlan],
    max_rounds: int,
) -> SimulationResult:
    """One flooding run on the shared harness (historical seed streams)."""
    if not sources:
        raise ValueError("at least one source node is required")
    return run_protocol(
        graph,
        flooding_factory(sources, rumor),
        seed=seed,
        port_stream=0x11,
        network_stream=0x12,
        fault_plan=fault_plan,
        max_rounds=max_rounds,
    )


def flooding_trial(
    graph: Graph,
    sources: Iterable[int] = (0,),
    rumor: int = 1,
    *,
    seed: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    max_rounds: int = 1_000_000,
) -> TrialOutcome:
    """Flood ``rumor`` from ``sources`` and return the unified trial outcome.

    ``winners`` are the sources; the classification distinguishes full
    coverage, full coverage of the *live* nodes (the rest crash-stopped), and
    genuinely partial spread -- see
    :data:`~repro.core.result.BROADCAST_CLASSIFICATIONS`.
    """
    source_set = set(sources)
    result = _simulate(graph, source_set, rumor, seed, fault_plan, max_rounds)
    informed = result.nodes_with("informed", True)
    uninformed = sorted(set(range(graph.num_nodes)) - set(informed))
    return TrialOutcome(
        algorithm="flooding",
        kind="broadcast",
        num_nodes=graph.num_nodes,
        winners=sorted(source_set),
        classification=classify_broadcast(uninformed, result.crashed_nodes),
        metrics=result.metrics,
        crashed_nodes=list(result.crashed_nodes),
        extras={"informed": len(informed), "rumor": rumor},
    )


def run_flooding_broadcast(
    graph: Graph,
    sources: Set[int],
    rumor: int = 1,
    seed: Optional[int] = None,
    max_rounds: int = 1_000_000,
    fault_plan: Optional[FaultPlan] = None,
) -> FloodingOutcome:
    """Flood ``rumor`` from ``sources`` and report coverage plus message cost."""
    result = _simulate(graph, set(sources), rumor, seed, fault_plan, max_rounds)
    informed = len(result.nodes_with("informed", True))
    return FloodingOutcome(num_nodes=graph.num_nodes, informed=informed, metrics=result.metrics)
