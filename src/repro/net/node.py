"""The live election node process: one protocol instance behind a socket.

``python -m repro.net.node --connect uds:/tmp/x.sock --index 3`` runs one
node of a live deployment.  The process connects back to the coordinator,
identifies itself, builds its protocol instance from the config the
coordinator ships (see :mod:`repro.net.protocols`), and then executes the
lock-step frame protocol:

* ``hello`` (node -> coordinator): version handshake plus the node index;
* ``init`` (coordinator -> node): degree, resolved ``known_n``, the network
  seed the node derives its private randomness from, and the algorithm
  config;
* ``ready`` (node -> coordinator): acknowledges construction and carries the
  protocol's initial result snapshot (a node crash-stopped at round 0 is
  represented by exactly this snapshot, matching the simulator, which never
  calls ``on_start`` on such a node);
* ``start`` / ``round`` (coordinator -> node): one activation --
  ``on_start`` at round 0, ``on_round`` with a decoded inbox afterwards;
* ``acted`` (node -> coordinator): the activation's sends (in call order),
  requested wake-up rounds, the halted flag and a fresh result snapshot;
* ``stop`` (coordinator -> node): clean shutdown.

The node never sees the topology: like the paper's model, it knows its
degree, its ports and (when granted) ``n`` -- routing is the coordinator's
job.  All randomness comes from ``node_rng(network_seed, index)``, the exact
stream the simulator hands the same node, which is what makes the live run
bit-comparable to the simulated one.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional, Tuple

from ..sim.message import Message
from ..sim.node import NodeContext
from ..sim.rng import node_rng
from .protocols import build_protocol
from .transport import (
    NET_WIRE_VERSION,
    FrameStream,
    inbox_from_wire,
    message_to_wire,
)

__all__ = ["run_node", "main"]


class _ProtocolShim:
    """Collects one activation's context callbacks for the reply frame."""

    def __init__(self) -> None:
        self.sends: List[Tuple[int, Message]] = []
        self.wakeups: List[int] = []

    def on_send(self, sender: int, port: int, message: Message) -> None:
        self.sends.append((port, message))

    def on_wake(self, node: int, round_number: int) -> None:
        self.wakeups.append(round_number)

    def drain(self) -> Tuple[List[Tuple[int, Message]], List[int]]:
        sends, wakeups = self.sends, self.wakeups
        self.sends, self.wakeups = [], []
        return sends, wakeups


async def run_node(address: str, index: int) -> None:
    """Run one live node to completion against the coordinator at ``address``."""
    stream = await FrameStream.connect(address)
    try:
        await stream.send(
            {"op": "hello", "version": NET_WIRE_VERSION, "node": index}
        )
        init = await stream.receive()
        if init is None:
            raise EOFError("coordinator closed the connection before init")
        if init.get("op") != "init":
            raise ValueError("expected init frame, got %r" % init.get("op"))
        if init.get("version") != NET_WIRE_VERSION:
            raise ValueError(
                "coordinator speaks net wire version %r; this node speaks %d"
                % (init.get("version"), NET_WIRE_VERSION)
            )

        shim = _ProtocolShim()
        ctx = NodeContext(
            node_index=index,
            degree=init["degree"],
            rng=node_rng(init["network_seed"], index),
            known_n=init["known_n"],
            send_callback=shim.on_send,
            wake_callback=shim.on_wake,
        )
        protocol = build_protocol(init["config"], ctx)
        await stream.send(
            {
                "op": "ready",
                "version": NET_WIRE_VERSION,
                "node": index,
                "result": protocol.result(),
            }
        )

        while True:
            frame = await stream.receive()
            if frame is None:
                # The coordinator SIGKILLs crash-planned nodes, so an abrupt
                # close is a normal way for this process's run to end.
                return
            op = frame.get("op")
            if op == "stop":
                return
            if op == "start":
                ctx._set_round(0)
                protocol.on_start()
            elif op == "round":
                ctx._set_round(frame["round"])
                protocol.on_round(inbox_from_wire(frame["inbox"]))
            else:
                raise ValueError("unexpected frame op %r" % op)
            sends, wakeups = shim.drain()
            await stream.send(
                {
                    "op": "acted",
                    "node": index,
                    "sends": [
                        [port, message_to_wire(message)] for port, message in sends
                    ],
                    "wakeups": wakeups,
                    "halted": ctx.halted,
                    "result": protocol.result(),
                }
            )
    finally:
        await stream.close()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point of ``python -m repro.net.node``."""
    parser = argparse.ArgumentParser(
        prog="repro.net.node",
        description="one live election node; spawned by repro.net.coordinator",
    )
    parser.add_argument(
        "--connect",
        required=True,
        help="coordinator address (uds:<path> or tcp:<host>:<port>)",
    )
    parser.add_argument(
        "--index", required=True, type=int, help="this node's index in the topology"
    )
    options = parser.parse_args(argv)
    try:
        asyncio.run(run_node(options.connect, options.index))
    except (EOFError, ConnectionError, BrokenPipeError) as exc:
        print("repro.net.node %d: %s" % (options.index, exc), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    sys.exit(main())
