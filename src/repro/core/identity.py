"""Identifier generation and contender self-nomination (Algorithm 1).

Nodes are anonymous; each draws a random identifier from ``[1, n**4]`` which
is unique with high probability, and nominates itself as a *contender* with
probability ``c1 log n / n`` so that the expected number of contenders is
``c1 log n`` (Lemma 1).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Tuple

from .params import ElectionParameters

__all__ = [
    "draw_identifier",
    "decide_contender",
    "initialise_node",
    "NodeIdentity",
    "expected_contenders",
    "contender_range_whp",
]


def draw_identifier(rng: random.Random, n: int, params: ElectionParameters) -> int:
    """Draw a uniform identifier from ``[1, n**id_space_exponent]``."""
    return rng.randint(1, params.id_space(n))


def decide_contender(rng: random.Random, n: int, params: ElectionParameters) -> bool:
    """Decide whether this node nominates itself (probability ``c1 log n / n``)."""
    return rng.random() < params.contender_probability(n)


@dataclass(frozen=True)
class NodeIdentity:
    """The outcome of Algorithm 1 for a single node."""

    identifier: int
    is_contender: bool


def initialise_node(rng: random.Random, n: int, params: ElectionParameters) -> NodeIdentity:
    """Run Algorithm 1 lines 1-2 for one node."""
    identifier = draw_identifier(rng, n, params)
    is_contender = decide_contender(rng, n, params)
    return NodeIdentity(identifier=identifier, is_contender=is_contender)


def expected_contenders(n: int, params: ElectionParameters) -> float:
    """Expected number of contenders, ``c1 log n`` (clipped by probability 1)."""
    return n * params.contender_probability(n)


def contender_range_whp(n: int, params: ElectionParameters) -> Tuple[float, float]:
    """The Lemma 1 concentration interval ``[3/4 c1 log n, 5/4 c1 log n]``."""
    mean = params.c1 * math.log(max(n, 2))
    return 0.75 * mean, 1.25 * mean
