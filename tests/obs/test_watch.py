"""Tests for the campaign watch dashboard: tailing, rendering, exit codes."""

import io
import json

import pytest

from repro.obs.tracer import TRACE_SCHEMA_VERSION
from repro.obs.watch import TraceTail, campaign_snapshot, main, render_snapshot, watch


def _header(version=TRACE_SCHEMA_VERSION):
    return json.dumps({"kind": "header", "schema": "repro.obs/trace", "version": version})


def _event(name, ts=0.0, **attrs):
    return json.dumps({"kind": "event", "name": name, "ts": ts, "attrs": attrs})


def _manifest(tmp_path, **overrides):
    trials = [
        {"sweep": "clique", "status": "executed", "error": ""},
        {"sweep": "clique", "status": "cached", "error": ""},
        {"sweep": "ring", "status": "failed", "error": "ValueError: cycle too small"},
        {"sweep": "ring", "status": "other_shard", "error": ""},
    ]
    document = {
        "campaign": "demo",
        "shard": "shard 0/2",
        "counts": {"cached": 1, "executed": 1, "failed": 1, "other_shard": 1},
        "trials": trials,
    }
    document.update(overrides)
    (tmp_path / "manifest.json").write_text(json.dumps(document))
    return document


class TestTraceTail:
    def test_poll_is_incremental(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tail = TraceTail()
        path.write_text(_header() + "\n" + _event("trial.finished") + "\n")
        assert tail.poll([str(path)]) == 1
        assert tail.poll([str(path)]) == 0, "no new bytes, no new records"
        with open(path, "a") as handle:
            handle.write(_event("trial.finished") + "\n")
        assert tail.poll([str(path)]) == 1
        assert tail.aggregator.count("trial.finished") == 2

    def test_partial_trailing_line_waits_for_completion(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tail = TraceTail()
        full = _event("trial.finished")
        path.write_text(_header() + "\n" + full[:10])
        assert tail.poll([str(path)]) == 0
        with open(path, "a") as handle:
            handle.write(full[10:] + "\n")
        assert tail.poll([str(path)]) == 1

    def test_truncated_file_starts_over(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tail = TraceTail()
        path.write_text(_header() + "\n" + _event("a") + "\n" + _event("b") + "\n")
        assert tail.poll([str(path)]) == 2
        path.write_text(_header() + "\n" + _event("c") + "\n")
        assert tail.poll([str(path)]) == 1
        assert tail.aggregator.count("c") == 1

    def test_mismatched_schema_version_skips_file_without_raising(self, tmp_path):
        old = tmp_path / "old.jsonl"
        new = tmp_path / "new.jsonl"
        old.write_text(_header(version=999) + "\n" + _event("ignored") + "\n")
        new.write_text(_header() + "\n" + _event("seen") + "\n")
        tail = TraceTail()
        assert tail.poll([str(old), str(new)]) == 1
        assert tail.aggregator.count("ignored") == 0
        assert tail.aggregator.count("seen") == 1
        assert tail.skipped_versions == [999]

    def test_missing_files_and_garbage_lines_are_tolerated(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(_header() + "\n{broken\n[1]\n" + _event("ok") + "\n")
        tail = TraceTail()
        assert tail.poll([str(path), str(tmp_path / "absent.jsonl")]) == 1

    def test_tracks_latest_progress_and_failures(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = [
            _header(),
            _event("trial.finished", done=1, total=3, failed=False),
            _event(
                "trial.finished",
                done=2,
                total=3,
                failed=True,
                label="ring n=1",
                error="ValueError: cycle too small",
            ),
        ]
        path.write_text("\n".join(lines) + "\n")
        tail = TraceTail()
        tail.poll([str(path)])
        assert tail.latest_progress["done"] == 2
        assert tail.latest_progress["total"] == 3
        assert tail.recent_failures == [("ring n=1", "ValueError: cycle too small")]


class TestRenderSnapshot:
    def test_manifest_frame_shows_progress_and_sweeps(self, tmp_path):
        _manifest(tmp_path)
        frame = render_snapshot(campaign_snapshot(str(tmp_path), TraceTail()))
        assert "campaign 'demo' shard 0/2" in frame
        assert "3/3 assigned (100.0%)" in frame
        assert "1 cached, 1 executed, 1 failed, 1 on other shards" in frame
        assert "per-sweep:" in frame
        assert "clique" in frame and "ring" in frame
        assert "failure hotspots:" in frame
        assert "ValueError: cycle too small" in frame

    def test_empty_directory_renders_waiting_frame(self, tmp_path):
        frame = render_snapshot(campaign_snapshot(str(tmp_path), TraceTail()))
        assert "waiting for manifest.json" in frame

    def test_zero_trial_startup_manifest_renders_without_dividing(self, tmp_path):
        """A manifest written before any trial resolved (the startup window)
        renders as 0% instead of raising on the empty denominator."""
        _manifest(
            tmp_path,
            counts={"cached": 0, "executed": 0, "failed": 0, "other_shard": 0},
            trials=[],
        )
        frame = render_snapshot(campaign_snapshot(str(tmp_path), TraceTail()))
        assert "0/0 assigned (0.0%)" in frame

    def test_all_other_shard_manifest_renders_as_zero_assigned(self, tmp_path):
        """Every trial on another shard: assigned is clamped to zero, not
        rendered as a negative count."""
        _manifest(
            tmp_path,
            counts={"cached": 0, "executed": 0, "failed": 0, "other_shard": 2},
            trials=[
                {"sweep": "s", "status": "other_shard", "error": ""},
                {"sweep": "s", "status": "other_shard", "error": ""},
            ],
        )
        frame = render_snapshot(campaign_snapshot(str(tmp_path), TraceTail()))
        assert "0/0 assigned (0.0%)" in frame
        assert "2 on other shards" in frame

    def test_malformed_counts_and_trials_are_tolerated(self, tmp_path):
        _manifest(tmp_path, counts="not-a-dict", trials="not-a-list")
        frame = render_snapshot(campaign_snapshot(str(tmp_path), TraceTail()))
        assert "0/0 assigned (0.0%)" in frame

    def test_trace_tail_contributes_rate_and_worker_health(self, tmp_path):
        lines = [
            _header(),
            _event("worker.spawned", ts=10.0),
            _event("worker.heartbeat", ts=10.5),
            _event("trial.finished", ts=11.0, done=1, total=2),
            _event("trial.finished", ts=12.0, done=2, total=2),
        ]
        (tmp_path / "trace.jsonl").write_text("\n".join(lines) + "\n")
        frame = render_snapshot(campaign_snapshot(str(tmp_path), TraceTail()))
        assert "trace: 2 trial(s) seen" in frame
        assert "1.00 trials/sec" in frame
        assert "latest batch 2/2" in frame
        assert "workers: 1 spawned, 0 deaths, 0 hangs, 1 heartbeats" in frame


def _fleet_document(**overrides):
    document = {
        "schema": "repro.fleet/status",
        "version": 1,
        "campaign": "demo",
        "trials": {"done": 3, "total": 8, "cached": 1, "failed": 0},
        "hosts": [
            {
                "name": "host-0",
                "status": "running",
                "pid": 1234,
                "shard": "0/4",
                "shards_done": 1,
                "trials_done": 3,
                "heartbeats": 7,
                "last_frame_age_s": 0.4,
            },
            {
                "name": "host-1",
                "status": "dead",
                "pid": 1235,
                "shard": None,
                "shards_done": 0,
                "trials_done": 0,
                "heartbeats": 2,
                "last_frame_age_s": None,
            },
        ],
    }
    document.update(overrides)
    return document


class TestFleetPanel:
    def test_fleet_json_renders_the_per_host_panel(self, tmp_path):
        _manifest(tmp_path)
        (tmp_path / "fleet.json").write_text(json.dumps(_fleet_document()))
        frame = render_snapshot(campaign_snapshot(str(tmp_path), TraceTail()))
        assert "fleet: 2 host(s), 1 dead -- 3/8 trial(s) done (1 cached, 0 failed)" in frame
        assert "host-0" in frame and "running" in frame
        assert "host-1" in frame and "dead" in frame
        assert "0.4s ago" in frame
        assert "never" in frame, "a host that never framed renders 'never'"

    def test_unrelated_fleet_json_is_ignored(self, tmp_path):
        """Only documents carrying the fleet schema tag are surfaced."""
        _manifest(tmp_path)
        (tmp_path / "fleet.json").write_text(json.dumps({"hosts": [{"name": "x"}]}))
        frame = render_snapshot(campaign_snapshot(str(tmp_path), TraceTail()))
        assert "fleet:" not in frame

    def test_garbage_fleet_json_is_tolerated(self, tmp_path):
        _manifest(tmp_path)
        (tmp_path / "fleet.json").write_text("{broken")
        frame = render_snapshot(campaign_snapshot(str(tmp_path), TraceTail()))
        assert "fleet:" not in frame
        assert "campaign 'demo'" in frame

    def test_fleet_document_with_no_hosts_renders_nothing(self, tmp_path):
        _manifest(tmp_path)
        (tmp_path / "fleet.json").write_text(
            json.dumps(_fleet_document(hosts=[], trials=None))
        )
        frame = render_snapshot(campaign_snapshot(str(tmp_path), TraceTail()))
        assert "fleet:" not in frame


class TestWatchEntryPoint:
    def test_once_renders_single_frame_and_exits_zero(self, tmp_path):
        _manifest(tmp_path)
        stream = io.StringIO()
        assert watch(str(tmp_path), once=True, stream=stream) == 0
        frame = stream.getvalue()
        assert "campaign 'demo'" in frame
        assert "\x1b[2J" not in frame, "--once never clears the screen"

    def test_missing_directory_exits_two(self, tmp_path, capsys):
        assert watch(str(tmp_path / "nope"), once=True) == 2
        assert "no such directory" in capsys.readouterr().err

    def test_max_frames_bounds_live_mode(self, tmp_path):
        stream = io.StringIO()
        assert watch(str(tmp_path), interval=0.01, stream=stream, max_frames=2) == 0
        assert stream.getvalue().count("waiting for manifest.json") == 2

    def test_main_once(self, tmp_path, capsys):
        _manifest(tmp_path)
        assert main([str(tmp_path), "--once"]) == 0
        assert "campaign 'demo'" in capsys.readouterr().out

    def test_main_rejects_non_positive_interval(self, tmp_path):
        with pytest.raises(SystemExit):
            main([str(tmp_path), "--interval", "0"])
