#!/usr/bin/env python3
"""Live deployment vs simulator: the cross-validation contract, visibly.

Runs the paper's leader election twice from one :class:`TrialSpec` -- once as
a **live deployment** (one OS process per node, JSON frames over a
Unix-domain socket, the ``repro.net`` coordinator turning the lock-step
barrier) and once in the **simulator** -- then prints the side-by-side
agreement table.  Same seed, same graph, same fault plan (two crash-stops,
delivered as real ``SIGKILL`` s to the live node processes), and every
model-level number must match exactly; only the live run's transport costs
(``net[...]``) differ from the simulator's zero.

Run with::

    python examples/live_election.py [n] [seed] [--transport uds|tcp]
"""

from __future__ import annotations

import argparse

from repro.core import ElectionParameters
from repro.exec import GraphSpec, TrialSpec
from repro.faults import CrashFaults, FaultPlan, MessageFaults
from repro.net import cross_validate


def main(n: int = 8, seed: int = 42, transport: str = "uds") -> int:
    spec = TrialSpec(
        graph=GraphSpec("expander", (n,), {"degree": 4}, seed=5),
        algorithm="election",
        seed=seed,
        params=ElectionParameters(c1=3.0, c2=0.5),
        fault_plan=FaultPlan(
            messages=MessageFaults(drop_probability=0.05),
            crashes=CrashFaults(count=2, at_round=20),
        ),
        label="live-vs-sim demo",
    )
    print("spec     : %s" % spec.describe())
    print("faults   : drop 5% of messages, SIGKILL 2 nodes at round 20")
    print("running  : live deployment (%s) + simulator ..." % transport)
    print()

    agreement = cross_validate(spec, transport=transport)
    print(agreement.table())
    print()
    if agreement.agrees:
        print("agreement: EXACT -- the live deployment and the simulator ran")
        print("           the same experiment; only the transport differed.")
        print("live cost : %s" % agreement.live.metrics.summary())
        return 0
    print("agreement: DIVERGED")
    for mismatch in agreement.mismatches:
        print("  - %s" % mismatch)
    return 1


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("n", nargs="?", type=int, default=8)
    parser.add_argument("seed", nargs="?", type=int, default=42)
    parser.add_argument("--transport", choices=("uds", "tcp"), default="uds")
    args = parser.parse_args()
    raise SystemExit(main(args.n, args.seed, args.transport))
