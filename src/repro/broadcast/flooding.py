"""Flooding broadcast: the baseline that uses Theta(m) messages.

Used by the Corollary 26 experiment (broadcast lower bound on the Section 4.1
graphs) and as the dissemination step of the flood-max election baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from ..graphs.ports import PortNumberedGraph
from ..graphs.topology import Graph
from ..sim.message import Message, id_bits
from ..sim.metrics import RunMetrics
from ..sim.network import Network
from ..sim.node import Inbox, NodeContext, Protocol
from ..sim.rng import derive_seed

__all__ = ["FloodingNode", "flooding_factory", "FloodingOutcome", "run_flooding_broadcast"]

FLOOD = "flood"


class FloodingNode(Protocol):
    """Forward the rumor over every port the first time it is seen."""

    def __init__(self, ctx: NodeContext, sources: Set[int], rumor: int) -> None:
        super().__init__(ctx)
        n = ctx.known_n if ctx.known_n is not None else 2
        self.rumor: Optional[int] = rumor if ctx.node_index in sources else None
        self.forwarded = False
        self._rumor_bits = id_bits(max(2, n))

    def on_start(self) -> None:
        if self.rumor is not None:
            self._forward()

    def on_round(self, inbox: Inbox) -> None:
        for batch in inbox.values():
            for message in batch:
                if message.kind == FLOOD and self.rumor is None:
                    self.rumor = message.payload["rumor"]
        if self.rumor is not None and not self.forwarded:
            self._forward()

    def result(self) -> Dict[str, object]:
        return {"informed": self.rumor is not None, "rumor": self.rumor}

    def _forward(self) -> None:
        self.forwarded = True
        message = Message(kind=FLOOD, payload={"rumor": self.rumor}, size_bits=self._rumor_bits)
        for port in self.ctx.ports:
            self.ctx.send(port, message)


def flooding_factory(sources: Set[int], rumor: int):
    """Protocol factory for :class:`repro.sim.Network`."""

    def factory(ctx: NodeContext) -> FloodingNode:
        return FloodingNode(ctx, sources=sources, rumor=rumor)

    return factory


@dataclass
class FloodingOutcome:
    """Result of a flooding broadcast run."""

    num_nodes: int
    informed: int
    metrics: RunMetrics

    @property
    def all_informed(self) -> bool:
        return self.informed == self.num_nodes

    @property
    def messages(self) -> int:
        return self.metrics.messages

    @property
    def rounds(self) -> int:
        return self.metrics.rounds


def run_flooding_broadcast(
    graph: Graph,
    sources: Set[int],
    rumor: int = 1,
    seed: Optional[int] = None,
    max_rounds: int = 1_000_000,
) -> FloodingOutcome:
    """Flood ``rumor`` from ``sources`` and report coverage plus message cost."""
    if not sources:
        raise ValueError("at least one source node is required")
    port_graph = PortNumberedGraph(graph, seed=None if seed is None else derive_seed(seed, 0x11))
    network = Network(
        port_graph,
        flooding_factory(sources, rumor),
        seed=None if seed is None else derive_seed(seed, 0x12),
    )
    result = network.run(max_rounds=max_rounds)
    informed = len(result.nodes_with("informed", True))
    return FloodingOutcome(num_nodes=graph.num_nodes, informed=informed, metrics=result.metrics)
