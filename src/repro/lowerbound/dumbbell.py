"""Dumbbell graphs and the "knowledge of n is critical" experiment (Theorem 28).

Section 5 shows that without knowledge of the network size any algorithm needs
``Omega(m)`` messages: take two copies of a 2-connected graph ``G0``, open one
edge in each copy, and join the copies by two *bridge* edges.  An algorithm
that does not know ``n`` cannot distinguish running on ``G0`` from running on
one side of the dumbbell until a message crosses a bridge, so it either spends
``Omega(m)`` messages or elects a leader on each side.

This module builds the dumbbell, provides a bridge-crossing observer, and a
runner that executes the paper's own algorithm on the dumbbell while every
node is (wrongly) told that the network has ``|G0|`` nodes -- reproducing the
failure mode the theorem predicts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..core.params import DEFAULT_PARAMETERS, ElectionParameters
from ..core.result import ElectionOutcome
from ..core.runner import run_leader_election
from ..graphs.topology import Graph
from ..sim.message import Message

__all__ = [
    "DumbbellGraph",
    "is_two_connected",
    "build_dumbbell_graph",
    "BridgeCrossingObserver",
    "UnknownSizeExperimentResult",
    "run_unknown_n_experiment",
]


def is_two_connected(graph: Graph) -> bool:
    """Check 2-(vertex-)connectedness by removing each vertex in turn."""
    if graph.num_nodes < 3:
        return False
    if not graph.is_connected():
        return False
    for removed in graph.nodes():
        remaining = [v for v in graph.nodes() if v != removed]
        seen = {remaining[0]}
        frontier = [remaining[0]]
        while frontier:
            nxt = []
            for u in frontier:
                for v in graph.neighbors(u):
                    if v != removed and v not in seen:
                        seen.add(v)
                        nxt.append(v)
            frontier = nxt
        if len(seen) != graph.num_nodes - 1:
            return False
    return True


@dataclass
class DumbbellGraph:
    """Two opened copies of a base graph joined by two bridge edges."""

    graph: Graph
    base_num_nodes: int
    left_nodes: List[int]
    right_nodes: List[int]
    bridges: List[Tuple[int, int]]
    removed_edges: List[Tuple[int, int]]

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    def side_of(self, node: int) -> str:
        """``"left"`` or ``"right"`` half of the dumbbell."""
        return "left" if node < self.base_num_nodes else "right"


def build_dumbbell_graph(base: Graph, seed: Optional[int] = None) -> DumbbellGraph:
    """Build ``Dumbbell(G0[e'], G0[e''])`` from a 2-connected base graph ``G0``.

    One edge is removed from each copy (chosen at random) and the four freed
    endpoints are joined crosswise by the two bridge edges, exactly as in the
    Section 5 construction.  2-connectedness of the base guarantees each
    opened copy stays connected.
    """
    if not is_two_connected(base):
        raise ValueError("the dumbbell construction requires a 2-connected base graph")
    rng = random.Random(seed)
    n = base.num_nodes
    edges = list(base.edges())
    left_removed = edges[rng.randrange(len(edges))]
    right_removed = edges[rng.randrange(len(edges))]

    graph = Graph(2 * n)
    for u, v in base.edges():
        if (u, v) != left_removed:
            graph.add_edge(u, v)
        if (u, v) != right_removed:
            graph.add_edge(u + n, v + n)
    v_left, w_left = left_removed
    v_right, w_right = right_removed
    bridges = [(v_left, v_right + n), (w_left, w_right + n)]
    for a, b in bridges:
        graph.add_edge(a, b)
    return DumbbellGraph(
        graph=graph,
        base_num_nodes=n,
        left_nodes=list(range(n)),
        right_nodes=list(range(n, 2 * n)),
        bridges=bridges,
        removed_edges=[left_removed, (v_right + n, w_right + n)],
    )


class BridgeCrossingObserver:
    """Counts messages that cross the dumbbell's bridge edges (the BC problem)."""

    def __init__(self, bridges: List[Tuple[int, int]]) -> None:
        self._bridge_pairs: Set[frozenset] = {frozenset(edge) for edge in bridges}
        self.crossings = 0
        self.first_crossing_round: Optional[int] = None

    def __call__(self, round_number: int, sender: int, receiver: int, message: Message) -> None:
        if frozenset((sender, receiver)) in self._bridge_pairs:
            self.crossings += 1
            if self.first_crossing_round is None:
                self.first_crossing_round = round_number

    @property
    def bridge_crossed(self) -> bool:
        """Whether the bridge-crossing problem was ever solved during the run."""
        return self.crossings > 0


@dataclass
class UnknownSizeExperimentResult:
    """Outcome of running the algorithm with the wrong network size on a dumbbell."""

    outcome: ElectionOutcome
    dumbbell: DumbbellGraph
    leaders_left: int
    leaders_right: int
    bridge_crossings: int

    @property
    def num_leaders(self) -> int:
        return self.outcome.num_leaders

    @property
    def elected_on_both_sides(self) -> bool:
        """The Theorem 28 failure mode: each half elects its own leader."""
        return self.leaders_left >= 1 and self.leaders_right >= 1

    @property
    def messages(self) -> int:
        return self.outcome.messages


def run_unknown_n_experiment(
    base: Graph,
    params: ElectionParameters = DEFAULT_PARAMETERS,
    seed: Optional[int] = None,
    max_rounds: int = 10_000_000,
) -> UnknownSizeExperimentResult:
    """Run the election on a dumbbell while nodes believe ``n = |base|``.

    Every node of the ``2n``-node dumbbell is told the network has ``n``
    nodes, which is precisely the indistinguishability setting of Theorem 28:
    with the message budget the algorithm uses for an ``n``-node graph the two
    halves typically never communicate and each elects a leader.
    """
    dumbbell = build_dumbbell_graph(base, seed=seed)
    observer = BridgeCrossingObserver(dumbbell.bridges)
    outcome = run_leader_election(
        dumbbell.graph,
        params=params,
        seed=seed,
        known_n=base.num_nodes,
        observers=(observer,),
        max_rounds=max_rounds,
    )
    leaders_left = sum(1 for leader in outcome.leaders if dumbbell.side_of(leader) == "left")
    leaders_right = sum(1 for leader in outcome.leaders if dumbbell.side_of(leader) == "right")
    return UnknownSizeExperimentResult(
        outcome=outcome,
        dumbbell=dumbbell,
        leaders_left=leaders_left,
        leaders_right=leaders_right,
        bridge_crossings=observer.crossings,
    )
