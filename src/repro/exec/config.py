"""One execution-configuration object for runners, campaigns and fleets.

Four selection mechanisms accreted across the execution stack, each with its
own spelling and its own override chain:

* the **execution backend** -- ``backend=`` on the runners, ``--backend`` on
  the campaign CLIs, the ``REPRO_EXEC_BACKEND`` environment override;
* the **cache backend** -- ``backend=`` on :class:`ResultCache`,
  ``--cache-backend`` on the CLIs, the ``REPRO_CACHE_BACKEND`` override and
  the ``cache.sqlite`` marker-file auto-detection;
* the **simulator engine** -- ``TrialSpec.simulator`` per trial, with no
  run-wide way to say "use the vectorized engine wherever it applies";
* **tracing** -- a hand-rolled ``--trace`` flag per example, wrapping the
  run in :func:`~repro.obs.report.campaign_telemetry`.

:class:`ExecutionProfile` unifies them under **one precedence rule**, applied
independently per dimension::

    explicit  >  CLI  >  environment  >  default

"Explicit" is a non-``None`` field on the profile (constructor argument, or a
non-empty CLI flag folded in by :meth:`ExecutionProfile.from_arguments` --
the CLI tier *is* an explicit field once parsed).  The environment tier is
consulted only when the field was left unset, and the default tier is
whatever the subsystem historically did: workers-derived backend selection,
``cache.sqlite``-marker auto-detection then ``json``, the per-spec
``reference`` simulator, tracing off.  ``TrialSpec.simulator`` set to a
non-default engine on a spec always wins over the profile -- a spec is the
most explicit statement there is.

:func:`add_execution_arguments` is the one CLI helper every campaign example
(and the fleet CLI) attaches instead of hand-rolling the five flags, and
``BatchRunner(profile=...)`` / ``CampaignRunner(profile=...)`` /
``FleetDispatcher(profile=...)`` all accept the resulting object.  The old
``backend=`` keyword on the runners keeps working as a
``DeprecationWarning`` shim that folds into the profile.

>>> profile = ExecutionProfile(backend="serial", trace=True)
>>> profile.effective_backend()
'serial'
>>> profile.effective_trace()
True
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

from ..core.runner import KNOWN_SIMULATORS
from .algorithms import get_algorithm
from .backends import BACKEND_ENV_VAR, add_backend_argument
from .cache import CACHE_BACKEND_ENV_VAR, ResultCache, add_cache_backend_argument
from .execute import default_worker_count
from .spec import TrialSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .backends import ExecutionBackend
    from .cache import CacheBackend

__all__ = [
    "ExecutionProfile",
    "add_execution_arguments",
    "SIMULATOR_ENV_VAR",
    "TRACE_ENV_VAR",
]

#: Environment tier of the simulator dimension: a run-wide engine applied to
#: every trial whose algorithm declares it (specs naming a non-default
#: engine explicitly always win).
SIMULATOR_ENV_VAR = "REPRO_EXEC_SIMULATOR"

#: Environment tier of the trace dimension: a truthy value ("1", "true",
#: "yes", "on") turns campaign telemetry on for runs that did not decide.
TRACE_ENV_VAR = "REPRO_TRACE"

_TRUTHY = ("1", "true", "yes", "on")


@dataclass(frozen=True)
class ExecutionProfile:
    """Every execution-selection knob in one immutable value.

    A ``None`` field means "no explicit choice": resolution falls through to
    the environment tier and then the historical default, per dimension (see
    the module docstring for the precedence rule).  Profiles are plain
    frozen dataclasses -- derive variants with :func:`dataclasses.replace`.
    """

    #: Execution backend: a registry name, a live backend instance (the
    #: caller owns its lifecycle), or ``None`` (environment, then the
    #: workers-derived default).
    backend: Union[None, str, "ExecutionBackend"] = None
    #: Cache backend: a registry name, a live :class:`CacheBackend`
    #: instance, or ``None`` (``cache.sqlite`` marker auto-detection, then
    #: environment, then ``json``).
    cache_backend: Union[None, str, "CacheBackend"] = None
    #: Run-wide simulator engine, applied by :meth:`apply_to_spec` to every
    #: trial whose algorithm declares the engine; ``None`` leaves specs
    #: untouched (environment tier still applies).
    simulator: Optional[str] = None
    #: Whether runs with a directory record campaign telemetry
    #: (``trace.jsonl`` + ``telemetry.md``/``telemetry.json``); ``None``
    #: defers to the environment, then off.
    trace: Optional[bool] = None
    #: Worker budget runners fall back to when not given one explicitly;
    #: ``None`` keeps each runner's historical default.
    workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be at least 1, got %d" % self.workers)
        if isinstance(self.trace, str):
            raise TypeError(
                "trace must be a bool or None (strings are only interpreted "
                "in the %s environment tier)" % TRACE_ENV_VAR
            )
        if self.simulator is not None and self.simulator not in KNOWN_SIMULATORS:
            raise ValueError(
                "unknown simulator %r; known engines: %s"
                % (self.simulator, ", ".join(KNOWN_SIMULATORS))
            )

    # ------------------------------------------------------------ resolution
    def effective_backend(self) -> Union[None, str, "ExecutionBackend"]:
        """Explicit backend choice, else the environment name, else ``None``.

        ``None`` means "let the runner apply its workers-derived default"
        (serial for one worker or a single pending trial, a process pool
        otherwise) -- the default tier of the precedence rule.
        """
        if self.backend is not None:
            return self.backend
        return os.environ.get(BACKEND_ENV_VAR) or None

    def effective_cache_backend(self) -> Union[None, str, "CacheBackend"]:
        """Explicit cache-backend choice, or ``None`` for auto-detection.

        The environment tier of this dimension lives inside
        :class:`ResultCache` itself (after the ``cache.sqlite`` marker
        check: an already-migrated directory stays SQLite whatever the
        environment says), so ``None`` is simply passed through.
        """
        return self.cache_backend

    def effective_simulator(self) -> Optional[str]:
        """Explicit run-wide engine, else the environment one, else ``None``."""
        if self.simulator is not None:
            return self.simulator
        return os.environ.get(SIMULATOR_ENV_VAR) or None

    def effective_trace(self) -> bool:
        """Whether this run records campaign telemetry."""
        if self.trace is not None:
            return bool(self.trace)
        return (os.environ.get(TRACE_ENV_VAR) or "").strip().lower() in _TRUTHY

    def effective_workers(self, default: Optional[int] = None) -> int:
        """The worker budget, falling back to ``default`` (or the CPU count)."""
        if self.workers is not None:
            return self.workers
        if default is not None:
            return default
        return default_worker_count()

    # ------------------------------------------------------------ application
    def apply_to_spec(self, spec: TrialSpec) -> TrialSpec:
        """Apply the run-wide simulator to one trial spec, idempotently.

        A spec that already names a non-default engine keeps it (explicit
        beats the profile), and an algorithm that does not declare the
        profile's engine keeps the ``reference`` oracle rather than failing
        validation -- the profile asks for the engine *wherever it applies*.
        """
        simulator = self.effective_simulator()
        if simulator is None or spec.simulator != "reference":
            return spec
        if simulator == spec.simulator:
            return spec
        if simulator not in get_algorithm(spec.algorithm).simulators:
            return spec
        return dataclasses.replace(spec, simulator=simulator)

    def open_cache(self, root: Union[str, os.PathLike]) -> ResultCache:
        """Open ``root`` as a :class:`ResultCache` under this profile's rule."""
        return ResultCache(root, backend=self.effective_cache_backend())

    # ----------------------------------------------------------------- wire
    def to_document(self) -> dict:
        """JSON-able form (names only) for crossing a process boundary.

        Backend *instances* are process-local (they hold subprocesses and
        database handles) and cannot travel; profiles carrying one are
        rejected so a fleet host never silently drops its caller's choice.
        """
        for field_name in ("backend", "cache_backend"):
            value = getattr(self, field_name)
            if value is not None and not isinstance(value, str):
                raise TypeError(
                    "ExecutionProfile.%s holds a live instance (%r), which "
                    "cannot cross a process boundary; pass a registry name "
                    "instead" % (field_name, type(value).__name__)
                )
        return {
            "backend": self.backend,
            "cache_backend": self.cache_backend,
            "simulator": self.simulator,
            "trace": self.trace,
            "workers": self.workers,
        }

    @classmethod
    def from_document(cls, document: dict) -> "ExecutionProfile":
        """Rebuild a profile from its :meth:`to_document` form."""
        return cls(
            backend=document.get("backend") or None,
            cache_backend=document.get("cache_backend") or None,
            simulator=document.get("simulator") or None,
            trace=document.get("trace"),
            workers=document.get("workers"),
        )

    # ------------------------------------------------------------------- cli
    @classmethod
    def from_arguments(cls, arguments) -> "ExecutionProfile":
        """Fold a parsed :func:`add_execution_arguments` namespace in.

        Empty-string flag values (the "no explicit choice" CLI default)
        become ``None`` fields, so the environment and default tiers still
        apply; everything the user typed becomes an explicit field.  The
        ``--trace`` flag only ever *enables* tracing (``False`` stays the
        undecided ``None``, so ``REPRO_TRACE=1`` keeps working without the
        flag).
        """
        return cls(
            backend=getattr(arguments, "backend", "") or None,
            cache_backend=getattr(arguments, "cache_backend", "") or None,
            simulator=getattr(arguments, "simulator", "") or None,
            trace=True if getattr(arguments, "trace", False) else None,
            workers=getattr(arguments, "workers", None),
        )

    def describe(self) -> str:
        """One-line human summary of the explicit choices ("defaults" if none)."""
        parts = []
        for name in ("backend", "cache_backend", "simulator", "trace", "workers"):
            value = getattr(self, name)
            if value is not None:
                value = value if isinstance(value, (str, int, bool)) else type(value).__name__
                parts.append("%s=%s" % (name, value))
        return "profile(%s)" % ", ".join(parts) if parts else "profile(defaults)"


def add_execution_arguments(parser, workers_default: Optional[int] = None) -> None:
    """Attach the shared execution flags to an argparse parser.

    One helper for every campaign CLI: ``--workers``, ``--backend``,
    ``--cache-backend``, ``--simulator`` and ``--trace``, wired so that
    ``ExecutionProfile.from_arguments(parser.parse_args())`` yields the
    profile the flags describe.  ``workers_default`` overrides the
    ``--workers`` default (the CPU count otherwise).
    """
    parser.add_argument(
        "--workers",
        type=int,
        default=workers_default if workers_default is not None else default_worker_count(),
        help="worker processes for the batch runner (default: CPU count)",
    )
    add_backend_argument(parser)
    add_cache_backend_argument(parser)
    parser.add_argument(
        "--simulator",
        default="",
        choices=("",) + tuple(KNOWN_SIMULATORS),
        help="run-wide simulator engine, applied wherever an algorithm "
        "declares it (default: each spec's own choice; REPRO_EXEC_SIMULATOR "
        "overrides runs that did not decide)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="write trace.jsonl + telemetry.md/json into the campaign "
        "directory (watch live with `python -m repro.obs.watch DIR`; "
        "REPRO_TRACE=1 enables this without the flag)",
    )


def _fold_deprecated_backend(
    profile: Optional[ExecutionProfile],
    backend,
    owner: str,
) -> ExecutionProfile:
    """Shared shim: fold a legacy ``backend=`` keyword into the profile.

    Emits the :class:`DeprecationWarning` once per call site and rejects
    contradictory double selection -- silently preferring one of the two
    would make the migration ambiguous.
    """
    import warnings

    resolved = profile if profile is not None else ExecutionProfile()
    if backend is None:
        return resolved
    warnings.warn(
        "%s(backend=...) is deprecated; pass "
        "profile=ExecutionProfile(backend=...) instead (see "
        "repro.exec.config)" % owner,
        DeprecationWarning,
        stacklevel=3,
    )
    if resolved.backend is not None:
        raise ValueError(
            "%s received both profile.backend and the deprecated backend= "
            "keyword; pick one" % owner
        )
    return dataclasses.replace(resolved, backend=backend)
