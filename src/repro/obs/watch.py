"""Live terminal dashboard for a running (or finished) campaign directory.

``python -m repro.obs.watch <campaign_dir>`` tails the artefacts a campaign
drops into its directory -- the ``manifest.json`` ledger, any ``*.jsonl``
trace files (``--trace`` on the campaign examples, or
:func:`repro.obs.report.campaign_telemetry`) and, for fleet runs, the
``fleet.json`` health snapshot :class:`~repro.fleet.dispatcher.FleetDispatcher`
keeps current -- and re-renders a one-screen summary every ``--interval``
seconds: completion percentage, trials per second, per-sweep outcome
tallies, failure hotspots, worker health and a per-host fleet panel.
``--once`` renders a single frame and exits, which is what the CI smoke run
asserts against; it renders cleanly on a freshly created (still empty)
campaign directory -- every artefact is optional and every tally guards the
zero-trial/zero-elapsed startup window.

Everything here is read-only and stdlib-only: the result cache is only ever
*peeked at* (a read-only row count when the campaign's ``cache/`` directory
holds a SQLite store -- never opened for writing, never scanned when it is
a JSON file tree), and a half-written line in a live trace file is simply
picked up on the next poll (:class:`TraceTail` keeps per-file offsets, so
each poll parses only the newly appended bytes).
"""

from __future__ import annotations

import argparse
import json
import os
import sqlite3
import sys
import time
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from .sinks import MetricsAggregator
from .tracer import TRACE_SCHEMA_VERSION

__all__ = ["TraceTail", "campaign_snapshot", "render_snapshot", "watch", "main"]

#: How wide the progress bar renders.
_BAR_WIDTH = 30


class TraceTail:
    """Incrementally folds growing JSONL trace files into live state.

    Each :meth:`poll` reads only the bytes appended since the previous poll
    (per-file offsets; a truncated/rewritten file starts over), feeds every
    complete record into a :class:`MetricsAggregator`, and keeps the pieces
    the dashboard renders directly: the latest batch progress event and the
    most recent failure labels.
    """

    def __init__(self, max_recent_failures: int = 50) -> None:
        self.aggregator = MetricsAggregator()
        self.latest_progress: Optional[Dict[str, object]] = None
        self.recent_failures: List[Tuple[str, str]] = []
        self.skipped_versions: List[object] = []
        self._max_recent = max_recent_failures
        self._offsets: Dict[str, int] = {}
        self._buffers: Dict[str, bytes] = {}
        self._skip: Dict[str, bool] = {}

    def poll(self, paths: Sequence[str]) -> int:
        """Consume newly appended records from ``paths``; returns how many."""
        consumed = 0
        for path in paths:
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            offset = self._offsets.get(path, 0)
            if size < offset:  # truncated or rewritten: start over
                offset = 0
                self._buffers[path] = b""
                self._skip.pop(path, None)
            if size == offset:
                continue
            try:
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    data = handle.read()
            except OSError:
                continue
            self._offsets[path] = offset + len(data)
            buffer = self._buffers.get(path, b"") + data
            lines = buffer.split(b"\n")
            self._buffers[path] = lines.pop()  # partial trailing line
            for line in lines:
                if self._consume_line(path, line):
                    consumed += 1
        return consumed

    def _consume_line(self, path: str, line: bytes) -> bool:
        line = line.strip()
        if not line:
            return False
        try:
            record = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return False
        if not isinstance(record, dict):
            return False
        if record.get("kind") == "header":
            version = record.get("version")
            if version != TRACE_SCHEMA_VERSION:
                # Unlike the offline reader this must not raise: a live
                # directory may mix traces from several code versions.
                self._skip[path] = True
                self.skipped_versions.append(version)
            else:
                self._skip[path] = False
            return False
        if self._skip.get(path):
            return False
        self._record(record)
        return True

    def _record(self, record: Dict[str, object]) -> None:
        self.aggregator.emit(record)
        name = record.get("name")
        attrs = record.get("attrs")
        if not isinstance(attrs, dict):
            attrs = {}
        if name == "trial.finished":
            if isinstance(attrs.get("done"), int) and isinstance(attrs.get("total"), int):
                self.latest_progress = {
                    "done": attrs["done"],
                    "total": attrs["total"],
                    "ts": record.get("ts"),
                }
            if attrs.get("failed"):
                self.recent_failures.append(
                    (str(attrs.get("label", "?")), str(attrs.get("error", "?")))
                )
                del self.recent_failures[: -self._max_recent]


def _load_json(path: str) -> Optional[Dict[str, object]]:
    """One JSON document, or ``None`` while it is absent or mid-write."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        return None
    return document if isinstance(document, dict) else None


def _trace_paths(directory: str) -> List[str]:
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return []
    return [
        os.path.join(directory, name) for name in names if name.endswith(".jsonl")
    ]


def _cache_summary(directory: str) -> Optional[Dict[str, object]]:
    """Which cache backend the campaign's ``cache/`` directory holds, if any.

    SQLite stores answer a read-only ``COUNT(*)`` (cheap: one B-tree walk);
    JSON trees are only *recognised* -- counting would stat every entry file
    of a potentially huge campaign on every refresh, so the dashboard
    reports the backend without a count.  Never raises: a mid-migration or
    locked store simply reports no entry count this frame.
    """
    cache_dir = os.path.join(directory, "cache")
    database = os.path.join(cache_dir, "cache.sqlite")
    if os.path.exists(database):
        entries: Optional[int] = None
        try:
            connection = sqlite3.connect("file:%s?mode=ro" % database, uri=True)
            try:
                entries = int(
                    connection.execute("SELECT COUNT(*) FROM entries").fetchone()[0]
                )
            finally:
                connection.close()
        except (sqlite3.Error, OSError, TypeError):
            entries = None
        return {"backend": "sqlite", "entries": entries}
    try:
        names = os.listdir(cache_dir)
    except OSError:
        return None
    if any(os.path.isdir(os.path.join(cache_dir, name)) for name in names):
        return {"backend": "json", "entries": None}
    return None


def _fleet_status(directory: str) -> Optional[Dict[str, object]]:
    """The ``fleet.json`` health snapshot, when this is a fleet campaign.

    Only documents carrying the fleet schema tag are surfaced -- an
    unrelated ``fleet.json`` someone dropped into the directory is ignored
    rather than misrendered.
    """
    document = _load_json(os.path.join(directory, "fleet.json"))
    if document is None or document.get("schema") != "repro.fleet/status":
        return None
    return document


def campaign_snapshot(directory: str, tail: Optional[TraceTail] = None) -> Dict[str, object]:
    """Read one render-ready snapshot of a campaign directory.

    Combines the manifest ledger (authoritative per-trial statuses once a
    run has written it) with whatever the trace tail has seen (live batch
    progress, rates, worker health) and the fleet health snapshot when one
    exists.  Every part is optional: an empty directory snapshots to a
    "waiting for artefacts" frame.
    """
    if tail is not None:
        tail.poll(_trace_paths(directory))
    manifest = _load_json(os.path.join(directory, "manifest.json"))
    snapshot: Dict[str, object] = {
        "directory": directory,
        "manifest": manifest,
        "telemetry": _load_json(os.path.join(directory, "telemetry.json")),
        "cache": _cache_summary(directory),
        "fleet": _fleet_status(directory),
        "tail": tail,
    }
    return snapshot


def _int(value: object, default: int = 0) -> int:
    """Best-effort integer for tallies read from on-disk JSON documents.

    A live directory may briefly expose documents written by other tools or
    older code; a malformed count renders as 0 instead of crashing the
    dashboard mid-campaign.
    """
    try:
        return int(value)
    except (TypeError, ValueError):
        return default


def _bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "[%s%s]" % ("#" * filled, "." * (width - filled))


def _fmt_rate(rate: Optional[float]) -> str:
    return "%.2f trials/sec" % rate if rate is not None else "n/a"


def _sweep_table(trials: List[Dict[str, object]]) -> List[str]:
    per_sweep: Dict[str, Counter] = {}
    for trial in trials:
        if not isinstance(trial, dict):
            continue
        tally = per_sweep.setdefault(str(trial.get("sweep", "?")), Counter())
        tally[str(trial.get("status", "?"))] += 1
    if not per_sweep:
        return []
    width = max(len(name) for name in per_sweep)
    width = max(width, len("sweep"))
    header = "  %-*s %7s %7s %9s %7s %12s" % (
        width, "sweep", "total", "cached", "executed", "failed", "other_shard",
    )
    lines = [header]
    for name in sorted(per_sweep):
        tally = per_sweep[name]
        lines.append(
            "  %-*s %7d %7d %9d %7d %12d"
            % (
                width,
                name,
                sum(tally.values()),
                tally.get("cached", 0),
                tally.get("executed", 0),
                tally.get("failed", 0),
                tally.get("other_shard", 0),
            )
        )
    return lines


def _failure_hotspots(
    manifest: Optional[Dict[str, object]], tail: Optional[TraceTail], limit: int = 5
) -> List[str]:
    errors: Counter = Counter()
    if manifest:
        for trial in manifest.get("trials", []):
            if isinstance(trial, dict) and trial.get("status") == "failed":
                errors[str(trial.get("error", "?"))] += 1
    if tail is not None:
        for _label, error in tail.recent_failures:
            errors[error] += 1
    if not errors:
        return []
    lines = ["failure hotspots:"]
    for error, count in errors.most_common(limit):
        if len(error) > 90:
            error = error[:87] + "..."
        lines.append("  %3dx %s" % (count, error))
    return lines


def _fleet_panel(fleet: Dict[str, object]) -> List[str]:
    """Per-host health lines from a ``fleet.json`` snapshot.

    Frame ages are *stored* by the dispatcher at write time, so the panel
    never does clock math of its own -- a snapshot from another machine (or
    a stale one) renders exactly what the dispatcher last knew.
    """
    hosts = fleet.get("hosts")
    if not isinstance(hosts, list) or not hosts:
        return []
    trials = fleet.get("trials")
    lines = []
    summary = "fleet: %d host(s)" % len(hosts)
    dead = sum(1 for host in hosts if isinstance(host, dict) and host.get("status") == "dead")
    if dead:
        summary += ", %d dead" % dead
    if isinstance(trials, dict):
        summary += " -- %d/%d trial(s) done (%d cached, %d failed)" % (
            _int(trials.get("done")),
            _int(trials.get("total")),
            _int(trials.get("cached")),
            _int(trials.get("failed")),
        )
    lines.append(summary)
    width = max(
        [len("host")]
        + [len(str(host.get("name", "?"))) for host in hosts if isinstance(host, dict)]
    )
    lines.append(
        "  %-*s %-8s %-7s %7s %7s %11s %10s"
        % (width, "host", "status", "shard", "shards", "trials", "heartbeats", "last frame")
    )
    for host in hosts:
        if not isinstance(host, dict):
            continue
        age = host.get("last_frame_age_s")
        lines.append(
            "  %-*s %-8s %-7s %7d %7d %11d %10s"
            % (
                width,
                str(host.get("name", "?")),
                str(host.get("status", "?")),
                str(host.get("shard") or "-"),
                _int(host.get("shards_done")),
                _int(host.get("trials_done")),
                _int(host.get("heartbeats")),
                "%.1fs ago" % age if isinstance(age, (int, float)) else "never",
            )
        )
    return lines


def render_snapshot(snapshot: Dict[str, object]) -> str:
    """Render one snapshot as the plain-text dashboard frame."""
    directory = snapshot.get("directory", "?")
    manifest = snapshot.get("manifest")
    tail = snapshot.get("tail")
    lines: List[str] = []

    stamp = time.strftime("%H:%M:%S")
    if isinstance(manifest, dict):
        name = manifest.get("campaign", "?")
        # Shard.describe() already reads "shard K/M"; use it verbatim.
        shard = manifest.get("shard")
        where = " %s" % shard if shard else ""
        lines.append("campaign %r%s -- %s (refreshed %s)" % (name, where, directory, stamp))
        counts = manifest.get("counts", {}) or {}
        if not isinstance(counts, dict):
            counts = {}
        other = _int(counts.get("other_shard", 0))
        trials = manifest.get("trials", []) or []
        if not isinstance(trials, list):
            trials = []
        # Guard the zero-trial startup window: a manifest written before any
        # trial resolved (or one recording only other-shard trials) renders
        # as 0% instead of dividing by zero or by a negative count.
        assigned = max(0, len(trials) - other)
        done = _int(counts.get("cached", 0)) + _int(counts.get("executed", 0))
        resolved = done + _int(counts.get("failed", 0))
        fraction = resolved / assigned if assigned > 0 else 0.0
        lines.append(
            "progress %s %d/%d assigned (%.1f%%) -- %d cached, %d executed, "
            "%d failed, %d on other shards"
            % (
                _bar(fraction),
                resolved,
                assigned,
                100.0 * fraction,
                _int(counts.get("cached", 0)),
                _int(counts.get("executed", 0)),
                _int(counts.get("failed", 0)),
                other,
            )
        )
        sweep_lines = _sweep_table(trials)
        if sweep_lines:
            lines.append("per-sweep:")
            lines.extend(sweep_lines)
    else:
        lines.append("campaign %s (refreshed %s)" % (directory, stamp))
        lines.append("waiting for manifest.json (campaign still in its first run?)")

    cache = snapshot.get("cache")
    if isinstance(cache, dict):
        entries = cache.get("entries")
        lines.append(
            "cache: %s backend%s"
            % (
                cache.get("backend", "?"),
                ", %d entr%s" % (entries, "y" if entries == 1 else "ies")
                if isinstance(entries, int)
                else "",
            )
        )

    fleet = snapshot.get("fleet")
    if isinstance(fleet, dict):
        lines.extend(_fleet_panel(fleet))

    if isinstance(tail, TraceTail):
        aggregator = tail.aggregator
        finished = aggregator.count("trial.finished")
        if finished:
            parts = [
                "trace: %d trial(s) seen" % finished,
                _fmt_rate(aggregator.rate("trial.finished")),
            ]
            progress = tail.latest_progress
            if progress:
                parts.append("latest batch %s/%s" % (progress["done"], progress["total"]))
            lines.append(" | ".join(parts))
        health = [
            ("spawned", aggregator.count("worker.spawned")),
            ("deaths", aggregator.count("worker.death")),
            ("hangs", aggregator.count("worker.hung")),
            ("heartbeats", aggregator.count("worker.heartbeat")),
        ]
        if any(value for _key, value in health):
            lines.append(
                "workers: " + ", ".join("%d %s" % (value, key) for key, value in health)
            )
        if tail.skipped_versions:
            lines.append(
                "note: skipped trace file(s) of schema version(s) %s"
                % sorted(set(map(str, tail.skipped_versions)))
            )

    lines.extend(_failure_hotspots(manifest, tail if isinstance(tail, TraceTail) else None))
    return "\n".join(lines)


def watch(
    directory: str,
    interval: float = 2.0,
    once: bool = False,
    stream=None,
    max_frames: Optional[int] = None,
) -> int:
    """Render the dashboard until interrupted (or once); returns exit status."""
    stream = stream if stream is not None else sys.stdout
    if not os.path.isdir(directory):
        print("repro.obs.watch: no such directory: %s" % directory, file=sys.stderr)
        return 2
    tail = TraceTail()
    frames = 0
    try:
        while True:
            frame = render_snapshot(campaign_snapshot(directory, tail))
            if not once:
                stream.write("\x1b[2J\x1b[H")  # clear screen, home cursor
            stream.write(frame + "\n")
            stream.flush()
            frames += 1
            if once or (max_frames is not None and frames >= max_frames):
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro.obs.watch``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.watch",
        description="live terminal dashboard over a campaign directory "
        "(manifest.json + *.jsonl trace files)",
    )
    parser.add_argument("directory", help="campaign directory to watch")
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between re-renders (default: 2)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (no screen clearing)",
    )
    arguments = parser.parse_args(argv)
    if arguments.interval <= 0:
        parser.error("--interval must be positive")
    return watch(arguments.directory, interval=arguments.interval, once=arguments.once)


if __name__ == "__main__":
    sys.exit(main())
