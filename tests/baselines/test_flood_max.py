"""Tests for the flood-max baseline (unified trial API)."""

from repro.baselines import flood_max_trial
from repro.graphs import complete_graph, cycle_graph, expander_graph, path_graph


class TestFloodMax:
    def test_unique_leader_on_expander(self):
        outcome = flood_max_trial(expander_graph(48, seed=1), seed=2)
        assert outcome.success
        assert outcome.num_winners == 1
        assert outcome.kind == "election"

    def test_unique_leader_on_path(self):
        outcome = flood_max_trial(path_graph(20), seed=3)
        assert outcome.success

    def test_rounds_track_eccentricity_of_winner(self):
        graph = path_graph(24)
        outcome = flood_max_trial(graph, seed=4)
        # The winning id must travel at least the winner's eccentricity, which
        # is at least half the diameter on a path.
        assert outcome.rounds >= graph.diameter() // 2 - 1

    def test_message_cost_is_at_least_m(self):
        graph = complete_graph(24)
        outcome = flood_max_trial(graph, seed=5)
        assert outcome.messages >= graph.total_volume() / 2

    def test_every_node_participates(self):
        outcome = flood_max_trial(cycle_graph(12), seed=6)
        assert outcome.num_contenders == 12

    def test_deterministic_given_seed(self):
        graph = expander_graph(32, seed=7)
        a = flood_max_trial(graph, seed=8)
        b = flood_max_trial(graph, seed=8)
        assert a.winners == b.winners
        assert a.messages == b.messages

    def test_record_shape(self):
        record = flood_max_trial(cycle_graph(10), seed=9).as_record()
        assert record["success"] is True
        assert record["messages"] > 0
        assert record["num_nodes"] == 10
        assert record["classification"] == "elected"
