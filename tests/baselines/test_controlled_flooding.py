"""Tests for the controlled-flooding (candidate flooding) baseline."""

from repro.baselines import controlled_flooding_trial
from repro.graphs import complete_graph, expander_graph


class TestControlledFlooding:
    def test_at_most_one_leader(self):
        outcome = controlled_flooding_trial(expander_graph(48, seed=1), seed=2)
        assert outcome.num_winners <= 1

    def test_usually_elects_with_default_rate(self):
        successes = 0
        for seed in range(5):
            outcome = controlled_flooding_trial(complete_graph(48), seed=seed)
            successes += outcome.success
        assert successes >= 4

    def test_candidate_count_smaller_than_n(self):
        outcome = controlled_flooding_trial(complete_graph(64), c1=2.0, seed=3)
        assert 0 < outcome.num_contenders < 64

    def test_zero_candidate_probability_regime(self):
        # With c1 tiny the candidate set can be empty -> "no_leader".
        outcome = controlled_flooding_trial(complete_graph(32), c1=0.01, seed=4)
        assert outcome.num_winners <= 1

    def test_fewer_messages_than_flood_max_on_dense_graph(self):
        from repro.baselines import flood_max_trial

        graph = complete_graph(48)
        controlled = controlled_flooding_trial(graph, seed=5)
        flood = flood_max_trial(graph, seed=5)
        assert controlled.messages <= flood.messages

    def test_leader_is_a_candidate(self):
        outcome = controlled_flooding_trial(complete_graph(40), seed=6)
        if outcome.num_winners == 1:
            assert outcome.leader is not None
            assert outcome.num_contenders >= 1
