"""The live election coordinator: spawn nodes, route frames, mirror the model.

``python -m repro.net.coordinator`` turns one :class:`~repro.exec.spec.TrialSpec`
into a *live* distributed run: one OS process per node (see
:mod:`repro.net.node`), real sockets between them, and this module as the
synchronous-round message router.

The coordinator is a faithful re-implementation of the event loop of
:class:`repro.sim.network.Network` with the protocol calls replaced by frame
exchanges:

* per event round, every active non-halted node receives one ``round`` frame
  (its inbox) and answers one ``acted`` frame (its sends, wake-ups, halted
  flag and a result snapshot);
* frame exchanges run concurrently -- node state is process-private, so
  parallelism cannot race -- but replies are *absorbed in ascending node
  order*, which reproduces the simulator's global outbox order and therefore
  the exact per-send fault-stream consumption;
* the same :class:`~repro.faults.injector.FaultInjector` (wrapped in
  :class:`~repro.net.faults.LiveFaultEngine`) decides drops, duplicates and
  delays on the relayed messages, and crash-stop faults become real
  ``SIGKILL``\\ s delivered before the first event round at or past the
  planned crash round.

Because topology, seed streams, activation order and fault decisions all
match the simulator, a live run's :class:`~repro.core.result.TrialOutcome`
equals the simulated outcome of the same spec -- winners, classification,
crashed nodes, and every model-level metric.  The only difference is the
extra ``metrics.net_events`` dict recording transport costs (barriers,
frames, wall-clock, kills).  :func:`cross_validate` checks that contract in
one call; the CLI exposes it as ``--verify``.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from contextlib import ExitStack
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..core.params import DEFAULT_PARAMETERS
from ..core.result import TrialOutcome
from ..exec.backends.workerpool import worker_environment
from ..exec.serialize import outcome_to_dict
from ..exec.spec import GraphSpec, TrialSpec
from ..graphs.generators import gilbert_connectivity_radius
from ..graphs.ports import PortNumberedGraph
from ..graphs.topology import Graph
from ..obs.tracer import current_tracer
from ..sim.message import Message, word_bits_for
from ..sim.metrics import MetricsCollector
from ..sim.network import SimulationResult
from ..sim.node import Inbox
from ..sim.rng import derive_seed
from .faults import LiveFaultEngine, plan_from_options
from .protocols import LIVE_ALGORITHMS, get_profile
from .status import StatusBoard, StatusServer, write_snapshot
from .transport import (
    NET_WIRE_VERSION,
    FrameStream,
    inbox_to_wire,
    message_from_wire,
)

__all__ = [
    "LiveElection",
    "Agreement",
    "run_live_trial",
    "cross_validate",
    "compare_outcomes",
    "main",
]

#: Per-frame-exchange timeout (seconds): generous, because one barrier only
#: covers protocol work plus a socket round-trip, never a whole run.
DEFAULT_NODE_TIMEOUT = 120.0


class LiveElection:
    """One live deployment of a trial spec; :meth:`run` drives it end-to-end."""

    def __init__(
        self,
        spec: TrialSpec,
        transport: str = "uds",
        node_timeout: float = DEFAULT_NODE_TIMEOUT,
        status: Optional[StatusBoard] = None,
        graph: Optional[Graph] = None,
        python: Optional[str] = None,
    ) -> None:
        if spec.seed is None:
            raise ValueError("a live run needs an explicit seed to be replayable")
        if spec.simulator != "reference":
            raise ValueError(
                "live deployments replicate the reference simulator; got %r"
                % spec.simulator
            )
        if transport not in ("uds", "tcp"):
            raise ValueError("transport must be 'uds' or 'tcp', got %r" % transport)
        self.spec = spec
        self.transport = transport
        self.node_timeout = node_timeout
        self.status = status if status is not None else StatusBoard()
        self.graph = graph if graph is not None else spec.build_graph()
        self.python = python or sys.executable
        self.profile = get_profile(spec.algorithm)
        self.config = self.profile.resolve(spec, self.graph)

        # Run state (reset per run; an instance serves exactly one run).
        self._ran = False
        self._streams: Dict[int, FrameStream] = {}
        self._procs: Dict[int, subprocess.Popen] = {}
        self._killed: Set[int] = set()
        self._frames = 0
        self._tmpdir: Optional[str] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connected: Optional[asyncio.Future] = None

    # ----------------------------------------------------------- entry points
    def run(self) -> TrialOutcome:
        """Run the live election synchronously and return its outcome."""
        return asyncio.run(self.run_async())

    async def run_async(self) -> TrialOutcome:
        if self._ran:
            raise RuntimeError("a LiveElection instance serves exactly one run")
        self._ran = True
        try:
            return await self._run()
        finally:
            await self._cleanup()

    def node_returncode(self, node: int) -> Optional[int]:
        """Exit status of one node process (``None`` if running or unknown).

        After a run with a crash plan, a planned victim reports the negated
        kill signal (``-9`` on POSIX) -- the chaos tests pin exactly that.
        """
        proc = self._procs.get(node)
        return None if proc is None else proc.poll()

    # ------------------------------------------------------------ the mirror
    async def _run(self) -> TrialOutcome:
        spec, graph, profile, config = self.spec, self.graph, self.profile, self.config
        n = graph.num_nodes
        tracer = current_tracer()
        started = time.monotonic()

        port_graph = PortNumberedGraph(
            graph, seed=derive_seed(spec.seed, profile.port_stream)
        )
        network_seed = derive_seed(spec.seed, profile.network_stream)
        engine = LiveFaultEngine(
            spec.effective_fault_plan, spec.seed, profile.phase_start_of(config)
        )
        engine.attach(port_graph)

        word_bits = word_bits_for(n)
        metrics = MetricsCollector(word_bits)
        messages_by_node = [0] * n
        self.status.update(
            state="spawning",
            algorithm=spec.algorithm,
            n=n,
            transport=self.transport,
            seed=spec.seed,
            faulty=engine.active,
            round=0,
            messages=0,
            killed=0,
        )
        tracer.event(
            "net.run_started",
            n=n,
            algorithm=spec.algorithm,
            transport=self.transport,
            faulty=engine.active,
        )

        address = await self._start_server(n)
        self._spawn_nodes(address, n)
        await asyncio.wait_for(self._connected, timeout=self.node_timeout)

        # init / ready handshake; the ready snapshot doubles as the final
        # result of any node crash-stopped at round 0 (the simulator never
        # calls on_start on those either).
        snapshots: List[Dict[str, object]] = [{} for _ in range(n)]
        self.status.update(state="handshake")
        init_replies = await asyncio.gather(
            *[
                self._exchange(
                    node,
                    {
                        "op": "init",
                        "version": NET_WIRE_VERSION,
                        "node": node,
                        "degree": port_graph.degree(node),
                        "known_n": config["known_n"],
                        "network_seed": network_seed,
                        "config": config,
                    },
                    expect="ready",
                )
                for node in range(n)
            ]
        )
        for node, reply in enumerate(init_replies):
            snapshots[node] = reply["result"]

        # --- the Network.run mirror -------------------------------------
        halted = [False] * n
        outbox: List[Tuple[int, int, Message]] = []
        future_inboxes: Dict[int, Dict[int, Inbox]] = {}
        wakeup_rounds: Dict[int, Set[int]] = {}
        current_round = 0
        last_activity_round = 0
        barriers = 0
        max_rounds = config["max_rounds"]

        def absorb(node: int, reply: Dict[str, object]) -> None:
            for port, document in reply["sends"]:
                outbox.append((node, port, message_from_wire(document)))
            for round_number in reply["wakeups"]:
                wakeup_rounds.setdefault(round_number, set()).add(node)
            halted[node] = bool(reply["halted"])
            snapshots[node] = reply["result"]

        def flush(delivery_round: int) -> None:
            for sender, port, message in outbox:
                receiver = port_graph.port_to_neighbor(sender, port)
                arrival_port = port_graph.neighbor_to_port(receiver, sender)
                # Accounting happens per physical send, whether or not the
                # adversary lets the message through: the sender paid.
                metrics.record_send(message.kind, message.size_bits)
                messages_by_node[sender] += 1
                for arrival_round in engine.deliveries(
                    current_round, sender, receiver, delivery_round
                ):
                    future_inboxes.setdefault(arrival_round, {}).setdefault(
                        receiver, {}
                    ).setdefault(arrival_port, []).append(message)
            outbox.clear()

        self._kill_due(engine, 0, tracer)
        starters = [node for node in range(n) if not engine.is_crashed(node, 0)]
        self.status.update(state="running", live=n - len(self._killed))
        for node, reply in await self._round_trip(
            starters, lambda node: {"op": "start"}
        ):
            absorb(node, reply)
        barriers += 1
        flush(delivery_round=1)

        completed = True
        while True:
            candidates = []
            if future_inboxes:
                candidates.append(min(future_inboxes))
            if wakeup_rounds:
                candidates.append(min(wakeup_rounds))
            if not candidates:
                break
            next_round = min(candidates)
            if next_round > max_rounds:
                completed = False
                break
            self._kill_due(engine, next_round, tracer)
            current_round = next_round
            inboxes = future_inboxes.pop(next_round, {})
            woken = wakeup_rounds.pop(next_round, set())
            active = set(inboxes) | woken
            active = {
                node for node in active if not engine.is_crashed(node, next_round)
            }
            dispatch = [node for node in sorted(active) if not halted[node]]
            for node, reply in await self._round_trip(
                dispatch,
                lambda node: {
                    "op": "round",
                    "round": next_round,
                    "inbox": inbox_to_wire(inboxes.get(node, {})),
                },
            ):
                absorb(node, reply)
            if active:
                last_activity_round = next_round
            barriers += 1
            tracer.event(
                "net.round",
                round=next_round,
                active=len(active),
                messages=metrics.messages,
            )
            self.status.update(
                round=next_round,
                messages=metrics.messages,
                live=n - len(self._killed),
                killed=len(self._killed),
            )
            flush(delivery_round=next_round + 1)

        # --- finalisation, exactly as the simulator --------------------
        crashed_nodes = engine.crashed_as_of(current_round)
        fault_events = engine.fault_events()
        if fault_events is not None:
            fault_events["crashed_nodes"] = len(crashed_nodes)
        net_events = {
            "barriers": barriers,
            "frames": self._frames,
            "killed": len(self._killed),
            "wall_ms": int((time.monotonic() - started) * 1000),
        }
        run_metrics = metrics.finalize(
            rounds=last_activity_round,
            completed=completed,
            fault_events=fault_events,
            net_events=net_events,
        )
        result = SimulationResult(
            metrics=run_metrics,
            node_results=snapshots,
            messages_by_node=messages_by_node,
            protocols=[],
            crashed_nodes=crashed_nodes,
            port_graph=port_graph,
        )
        outcome = profile.finish(config, result)
        self.status.update(
            state="finished",
            round=run_metrics.rounds,
            messages=run_metrics.messages,
            killed=len(self._killed),
            classification=outcome.classification,
            winners=list(outcome.winners),
            completed=completed,
            wall_ms=net_events["wall_ms"],
        )
        tracer.event(
            "net.run_finished",
            classification=outcome.classification,
            rounds=run_metrics.rounds,
            messages=run_metrics.messages,
            barriers=barriers,
            killed=len(self._killed),
        )
        return outcome

    # ------------------------------------------------------------- transport
    async def _start_server(self, n: int) -> str:
        loop = asyncio.get_running_loop()
        self._connected = loop.create_future()

        async def on_connection(reader, writer) -> None:
            stream = FrameStream(reader, writer)
            try:
                hello = await stream.receive()
                self._frames += 1
                if hello is None or hello.get("op") != "hello":
                    raise ValueError("expected hello frame, got %r" % (hello,))
                if hello.get("version") != NET_WIRE_VERSION:
                    raise ValueError(
                        "node speaks net wire version %r, coordinator %d"
                        % (hello.get("version"), NET_WIRE_VERSION)
                    )
                node = hello["node"]
                if not 0 <= node < n or node in self._streams:
                    raise ValueError("unexpected or duplicate node index %r" % node)
                self._streams[node] = stream
                if len(self._streams) == n and not self._connected.done():
                    self._connected.set_result(None)
            except Exception as exc:  # surface handshake failures to run()
                if not self._connected.done():
                    self._connected.set_exception(exc)

        if self.transport == "uds":
            self._tmpdir = tempfile.mkdtemp(prefix="repro-net-")
            path = os.path.join(self._tmpdir, "coordinator.sock")
            self._server = await asyncio.start_unix_server(on_connection, path=path)
            return "uds:%s" % path
        self._server = await asyncio.start_server(
            on_connection, host="127.0.0.1", port=0
        )
        port = self._server.sockets[0].getsockname()[1]
        return "tcp:127.0.0.1:%d" % port

    def _spawn_nodes(self, address: str, n: int) -> None:
        env = worker_environment()
        for node in range(n):
            self._procs[node] = subprocess.Popen(
                [
                    self.python,
                    "-m",
                    "repro.net.node",
                    "--connect",
                    address,
                    "--index",
                    str(node),
                ],
                env=env,
                stdout=subprocess.DEVNULL,
            )

    async def _exchange(
        self, node: int, frame: Dict[str, object], expect: str = "acted"
    ) -> Dict[str, object]:
        stream = self._streams[node]
        await stream.send(frame)
        reply = await asyncio.wait_for(stream.receive(), timeout=self.node_timeout)
        self._frames += 2
        if reply is None:
            raise RuntimeError(
                "node %d closed its connection mid-run (crash outside the "
                "fault plan?)" % node
            )
        if reply.get("op") != expect:
            raise RuntimeError(
                "node %d answered op %r where %r was expected"
                % (node, reply.get("op"), expect)
            )
        return reply

    async def _round_trip(
        self, nodes: List[int], make_frame: Callable[[int], Dict[str, object]]
    ) -> List[Tuple[int, Dict[str, object]]]:
        """Exchange one frame with each node concurrently; replies in node order."""
        replies = await asyncio.gather(
            *[self._exchange(node, make_frame(node)) for node in nodes]
        )
        return list(zip(nodes, replies))

    def _kill_due(self, engine: LiveFaultEngine, round_number: int, tracer) -> None:
        for node in engine.due_kills(round_number):
            proc = self._procs.get(node)
            if proc is not None and proc.poll() is None:
                proc.kill()
            self._killed.add(node)
            stream = self._streams.pop(node, None)
            if stream is not None:
                # The process is already dead; only the coordinator's socket
                # endpoint needs releasing.
                stream.abort()
            tracer.event("net.node_killed", node=node, round=round_number)
            self.status.update(killed=len(self._killed))

    async def _cleanup(self) -> None:
        for stream in self._streams.values():
            try:
                await stream.send({"op": "stop"})
                self._frames += 1
            except (ConnectionError, BrokenPipeError, OSError):
                pass
        for stream in self._streams.values():
            await stream.close()
        self._streams.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for proc in self._procs.values():
            if proc.poll() is None:
                try:
                    await asyncio.to_thread(proc.wait, 5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    await asyncio.to_thread(proc.wait)
        if self._tmpdir is not None:
            shutil.rmtree(self._tmpdir, ignore_errors=True)
            self._tmpdir = None


def run_live_trial(
    spec: TrialSpec,
    transport: str = "uds",
    node_timeout: float = DEFAULT_NODE_TIMEOUT,
    status: Optional[StatusBoard] = None,
    graph: Optional[Graph] = None,
) -> TrialOutcome:
    """Deploy ``spec`` as live node processes and return its outcome."""
    return LiveElection(
        spec,
        transport=transport,
        node_timeout=node_timeout,
        status=status,
        graph=graph,
    ).run()


# ------------------------------------------------------------ cross-validation
def compare_outcomes(live: TrialOutcome, sim: TrialOutcome) -> List[str]:
    """Mismatch descriptions between a live and a simulated outcome.

    The contract: the serialised outcomes are *equal* except for the live
    run's ``metrics.net_events`` transport counters.  An empty list means
    full agreement.
    """
    live_doc = outcome_to_dict(live)
    sim_doc = outcome_to_dict(sim)
    live_doc["metrics"] = dict(live_doc["metrics"])
    sim_doc["metrics"] = dict(sim_doc["metrics"])
    live_doc["metrics"].pop("net_events", None)
    sim_doc["metrics"].pop("net_events", None)
    mismatches = []
    for key in sorted(set(live_doc) | set(sim_doc)):
        if live_doc.get(key) != sim_doc.get(key):
            mismatches.append(
                "%s: live=%r sim=%r" % (key, live_doc.get(key), sim_doc.get(key))
            )
    return mismatches


@dataclasses.dataclass
class Agreement:
    """Result of one live-vs-simulator cross-validation."""

    live: TrialOutcome
    sim: TrialOutcome
    mismatches: List[str]

    @property
    def agrees(self) -> bool:
        """Whether live and simulated outcomes matched exactly."""
        return not self.mismatches

    def table(self) -> str:
        """Human-readable side-by-side summary."""
        rows = [
            ("winners", self.live.winners, self.sim.winners),
            ("classification", self.live.classification, self.sim.classification),
            ("crashed_nodes", self.live.crashed_nodes, self.sim.crashed_nodes),
            ("rounds", self.live.rounds, self.sim.rounds),
            ("messages", self.live.messages, self.sim.messages),
            ("message_units", self.live.message_units, self.sim.message_units),
        ]
        lines = ["%-16s %-24s %-24s %s" % ("field", "live", "simulator", "match")]
        for name, live_value, sim_value in rows:
            lines.append(
                "%-16s %-24s %-24s %s"
                % (
                    name,
                    live_value,
                    sim_value,
                    "yes" if live_value == sim_value else "NO",
                )
            )
        return "\n".join(lines)


def cross_validate(
    spec: TrialSpec,
    transport: str = "uds",
    node_timeout: float = DEFAULT_NODE_TIMEOUT,
    status: Optional[StatusBoard] = None,
) -> Agreement:
    """Run ``spec`` live *and* simulated, and compare the outcomes.

    Both runs share one graph instance, so randomised graph families cannot
    diverge between the two executions.
    """
    from ..exec.algorithms import get_algorithm

    graph = spec.build_graph()
    live = run_live_trial(
        spec,
        transport=transport,
        node_timeout=node_timeout,
        status=status,
        graph=graph,
    )
    sim = get_algorithm(spec.algorithm).run(graph, spec)
    return Agreement(live=live, sim=sim, mismatches=compare_outcomes(live, sim))


# ------------------------------------------------------------------------ CLI
def graph_spec_from_options(
    family: str, n: int, degree: int, graph_seed: int
) -> GraphSpec:
    """The CLI's graph description -> a buildable :class:`GraphSpec`."""
    if family == "hypercube":
        dimension = n.bit_length() - 1
        if 2**dimension != n:
            raise ValueError("the hypercube family needs n to be a power of two")
        return GraphSpec("hypercube", (dimension,))
    if family == "gilbert":
        return GraphSpec(
            "gilbert", (n, gilbert_connectivity_radius(n)), seed=graph_seed
        )
    if family == "expander":
        return GraphSpec("expander", (n,), {"degree": degree}, seed=graph_seed)
    return GraphSpec(family, (n,), seed=graph_seed)


def spec_from_options(options: argparse.Namespace) -> TrialSpec:
    """Assemble the :class:`TrialSpec` the CLI options describe."""
    params = DEFAULT_PARAMETERS
    overrides = {}
    if options.c1 is not None:
        overrides["c1"] = options.c1
    if options.c2 is not None:
        overrides["c2"] = options.c2
    if overrides:
        params = params.with_overrides(**overrides)
    algo_kwargs: Dict[str, object] = {}
    if options.max_rounds is not None:
        algo_kwargs["max_rounds"] = options.max_rounds
    if options.algorithm == "known_tmix":
        if options.mixing_time is not None:
            algo_kwargs["mixing_time"] = options.mixing_time
        if options.safety_factor is not None:
            algo_kwargs["safety_factor"] = options.safety_factor
    return TrialSpec(
        graph=graph_spec_from_options(
            options.family, options.n, options.degree, options.graph_seed
        ),
        algorithm=options.algorithm,
        seed=options.seed,
        params=params,
        algo_kwargs=algo_kwargs,
        fault_plan=plan_from_options(
            drop=options.drop,
            duplicate=options.duplicate,
            crash=options.crash,
            delay=options.delay,
        ),
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.net.coordinator",
        description="run one election as live node processes over real sockets",
    )
    parser.add_argument("--family", default="expander", help="graph family name")
    parser.add_argument("--n", type=int, default=16, help="number of nodes")
    parser.add_argument(
        "--degree", type=int, default=4, help="expander degree (expander family only)"
    )
    parser.add_argument("--graph-seed", type=int, default=7, help="graph build seed")
    parser.add_argument(
        "--algorithm",
        default="election",
        choices=LIVE_ALGORITHMS,
        help="which registered algorithm to deploy",
    )
    parser.add_argument("--seed", type=int, default=42, help="master trial seed")
    parser.add_argument("--c1", type=float, default=None, help="params.c1 override")
    parser.add_argument("--c2", type=float, default=None, help="params.c2 override")
    parser.add_argument(
        "--max-rounds", type=int, default=None, help="defensive round cap"
    )
    parser.add_argument(
        "--mixing-time", type=int, default=None, help="known_tmix oracle override"
    )
    parser.add_argument(
        "--safety-factor", type=float, default=None, help="known_tmix walk stretch"
    )
    parser.add_argument(
        "--drop", type=float, default=0.0, help="per-message drop probability"
    )
    parser.add_argument(
        "--duplicate", type=float, default=0.0, help="per-message duplication probability"
    )
    parser.add_argument(
        "--crash", default=None, help="crash-stop plan K@R: kill K nodes at round R"
    )
    parser.add_argument(
        "--delay", type=int, default=0, help="uniform per-message delay in rounds"
    )
    parser.add_argument(
        "--transport", default="uds", choices=("uds", "tcp"), help="node transport"
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=DEFAULT_NODE_TIMEOUT,
        help="per-frame-exchange timeout in seconds",
    )
    parser.add_argument(
        "--status-port",
        type=int,
        default=None,
        help="serve GET /status and /healthz on this port (0 = ephemeral)",
    )
    parser.add_argument(
        "--status-snapshot",
        default=None,
        help="write the final status snapshot to this JSON file",
    )
    parser.add_argument(
        "--trace",
        default=None,
        help="directory for trace.jsonl + telemetry report (repro.obs format)",
    )
    parser.add_argument(
        "--output", default=None, help="write the outcome document to this JSON file"
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="also run the simulator and fail on any live-vs-sim mismatch",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point of ``python -m repro.net.coordinator``."""
    options = _build_parser().parse_args(argv)
    spec = spec_from_options(options)
    board = StatusBoard()
    server = None
    if options.status_port is not None:
        server = StatusServer(board, port=options.status_port)
        print("status endpoint: %s/status" % server.url)

    exit_code = 0
    try:
        with ExitStack() as stack:
            if options.trace:
                from ..obs.report import campaign_telemetry

                stack.enter_context(campaign_telemetry(options.trace))
            if options.verify:
                agreement = cross_validate(
                    spec,
                    transport=options.transport,
                    node_timeout=options.timeout,
                    status=board,
                )
                outcome = agreement.live
                print(agreement.table())
                if agreement.agrees:
                    print("live run matches the simulator bit for bit")
                else:
                    print("LIVE RUN DIVERGED FROM THE SIMULATOR:")
                    for line in agreement.mismatches:
                        print("  " + line)
                    exit_code = 1
            else:
                outcome = run_live_trial(
                    spec,
                    transport=options.transport,
                    node_timeout=options.timeout,
                    status=board,
                )
            print(
                "%s on %s: %s, winners=%s"
                % (
                    spec.algorithm,
                    spec.graph.describe(),
                    outcome.classification,
                    outcome.winners,
                )
            )
            print("  " + outcome.metrics.summary())
            if options.output:
                with open(options.output, "w", encoding="utf-8") as handle:
                    json.dump(outcome_to_dict(outcome), handle, indent=2, sort_keys=True)
                    handle.write("\n")
                print("outcome written to %s" % options.output)
            if options.status_snapshot:
                write_snapshot(options.status_snapshot, board)
                print("status snapshot written to %s" % options.status_snapshot)
    finally:
        if server is not None:
            server.close()
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    sys.exit(main())
