"""Property-based tests for the walk-token bookkeeping and samplers."""

import random

from hypothesis import given, settings, strategies as st

from repro.core import WalkTreeState, binomial, lazy_step_counts, split_over_ports

import pytest

pytestmark = pytest.mark.slow


class TestSamplerProperties:
    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_binomial_within_range(self, trials, seed):
        value = binomial(random.Random(seed), trials, 0.5)
        assert 0 <= value <= trials

    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_lazy_step_partition(self, count, seed):
        staying, moving = lazy_step_counts(random.Random(seed), count)
        assert staying >= 0 and moving >= 0
        assert staying + moving == count

    @given(
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_port_split_partition(self, movers, degree, seed):
        counts = split_over_ports(random.Random(seed), movers, degree)
        assert sum(counts.values()) == movers
        assert all(0 <= port < degree for port in counts)
        assert all(count > 0 for count in counts.values())


class TestWalkTreeProperties:
    @given(
        st.integers(min_value=1, max_value=12),    # walk length
        st.integers(min_value=1, max_value=300),   # token count
        st.integers(min_value=1, max_value=8),     # degree
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_token_conservation_over_a_full_phase(self, walk_length, count, degree, seed):
        rng = random.Random(seed)
        state = WalkTreeState(origin=1, phase=0, walk_length=walk_length)
        state.add_resident(0, count)
        departed = 0
        for _ in range(walk_length):
            outgoing = state.advance_one_round(rng, degree)
            departed += sum(outgoing.values())
            for (_port, steps), batch in outgoing.items():
                assert 1 <= steps <= walk_length
                assert batch > 0
        assert not state.has_unfinished_tokens()
        assert state.proxy_count + departed == count

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=100),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_first_arrival_is_immutable(self, walk_length, offset, seed):
        state = WalkTreeState(origin=2, phase=0, walk_length=walk_length)
        state.record_arrival(offset, in_port=0)
        state.record_arrival(offset + 5, in_port=3)
        assert state.first_arrival_offset == offset
        assert state.parent_port == 0

    @given(st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_merge_report_distinct_counts_are_additive(self, distinct_values):
        state = WalkTreeState(origin=3, phase=0, walk_length=2)
        for value in distinct_values:
            state.merge_report(set(), distinct=value, proxies=value)
        _ids, distinct, proxies = state.report_payload()
        assert distinct == sum(distinct_values)
        assert proxies == sum(distinct_values)
