"""Network-level behaviour of the fault-injection hook."""

from repro.faults import FaultInjector, FaultPlan
from repro.faults.plan import DelayFaults
from repro.graphs import PortNumberedGraph, complete_graph, path_graph
from repro.sim import Message, Network, Protocol


class Pinger(Protocol):
    """Node 0 sends one ping per port in round 0; everyone logs arrivals."""

    def __init__(self, ctx):
        super().__init__(ctx)
        self.arrivals = []

    def on_start(self):
        if self.ctx.node_index == 0:
            for port in self.ctx.ports:
                self.ctx.send(port, Message(kind="ping", size_bits=8))

    def on_round(self, inbox):
        for _port, batch in inbox.items():
            for _message in batch:
                self.arrivals.append(self.ctx.round)

    def result(self):
        return {"arrivals": self.arrivals}


class Chatterbox(Protocol):
    """Every node sends one message per port every round for five rounds."""

    def on_start(self):
        self._send_all()
        self.ctx.wake_next_round()

    def on_round(self, inbox):
        if self.ctx.round < 5:
            self._send_all()
            self.ctx.wake_next_round()

    def _send_all(self):
        for port in self.ctx.ports:
            self.ctx.send(port, Message(kind="chat", size_bits=8))


def run_network(graph, protocol_cls, plan=None, seed=2):
    ports = PortNumberedGraph(graph, seed=1)
    injector = None
    if plan is not None:
        injector = FaultInjector(plan, master_seed=77)
    network = Network(
        ports, lambda ctx: protocol_cls(ctx), seed=seed, fault_injector=injector
    )
    return network.run()


class TestDropAndDuplicate:
    def test_drop_everything_still_counts_sends(self):
        result = run_network(complete_graph(4), Pinger, FaultPlan.dropping(1.0))
        assert result.metrics.messages == 3  # the sender paid for all sends
        assert all(res["arrivals"] == [] for res in result.node_results[1:])
        assert result.metrics.fault_events["dropped"] == 3

    def test_duplicate_everything_doubles_arrivals(self):
        result = run_network(complete_graph(4), Pinger, FaultPlan.duplicating(1.0))
        assert all(res["arrivals"] == [1, 1] for res in result.node_results[1:])
        assert result.metrics.messages == 3  # duplicates are free for the sender
        assert result.metrics.fault_events["duplicated"] == 3

    def test_observers_see_lost_sends(self):
        seen = []
        ports = PortNumberedGraph(complete_graph(4), seed=1)
        network = Network(
            ports,
            lambda ctx: Pinger(ctx),
            seed=2,
            observers=(lambda r, s, d, m: seen.append((s, d)),),
            fault_injector=FaultInjector(FaultPlan.dropping(1.0), master_seed=77),
        )
        network.run()
        assert len(seen) == 3


class TestDelays:
    def test_uniform_delay_shifts_arrival_round(self):
        plan = FaultPlan(delays=DelayFaults(max_delay=2, min_delay=2))
        result = run_network(complete_graph(4), Pinger, plan)
        assert all(res["arrivals"] == [3] for res in result.node_results[1:])
        assert result.metrics.fault_events["delay_rounds"] == 6

    def test_delay_extends_round_count(self):
        baseline = run_network(complete_graph(4), Pinger)
        delayed = run_network(
            complete_graph(4), Pinger, FaultPlan(delays=DelayFaults(4, 4))
        )
        assert delayed.rounds == baseline.rounds + 4


class TestCrashes:
    def test_crashed_node_is_never_activated(self):
        plan = FaultPlan.crashing(targets=(1,), at_round=0)
        result = run_network(complete_graph(4), Pinger, plan)
        assert result.crashed_nodes == [1]
        assert result.node_results[1]["arrivals"] == []
        assert result.metrics.fault_events["crashed_nodes"] == 1
        assert result.metrics.fault_events["lost_to_crash"] == 1

    def test_crash_at_round_zero_suppresses_on_start(self):
        plan = FaultPlan.crashing(targets=(0,), at_round=0)
        result = run_network(complete_graph(4), Pinger, plan)
        assert result.metrics.messages == 0

    def test_late_crash_round_is_not_reported(self):
        # The network quiesces long before round 1000, so the crash never fires.
        plan = FaultPlan.crashing(targets=(2,), at_round=1000)
        result = run_network(complete_graph(4), Pinger, plan)
        assert result.crashed_nodes == []
        assert result.metrics.fault_events["crashed_nodes"] == 0

    def test_mid_run_crash_stops_participation(self):
        plan = FaultPlan.crashing(targets=(1,), at_round=3)
        result = run_network(complete_graph(3), Chatterbox, plan)
        # Node 1 sends in rounds 0, 1 and 2 only; live nodes in rounds 0-4.
        assert result.messages_by_node[1] == 6
        assert result.messages_by_node[0] == 10


class TestEdgeRemoval:
    def test_removed_edges_cut_both_directions(self):
        result = run_network(path_graph(2), Pinger, FaultPlan.removing_edges(1.0))
        assert result.node_results[1]["arrivals"] == []
        assert result.metrics.fault_events["edge_dropped"] == 1


class TestEmptyPlanEquivalence:
    def test_injector_with_empty_plan_changes_nothing(self):
        baseline = run_network(complete_graph(5), Pinger)
        faulty = run_network(complete_graph(5), Pinger, FaultPlan())
        assert faulty.metrics.messages == baseline.metrics.messages
        assert faulty.metrics.rounds == baseline.metrics.rounds
        assert [res["arrivals"] for res in faulty.node_results] == [
            res["arrivals"] for res in baseline.node_results
        ]
        # The only visible difference: fault counters exist (all zero).
        assert set(faulty.metrics.fault_events.values()) <= {0}
        assert baseline.metrics.fault_events == {}
