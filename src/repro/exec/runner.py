"""The batch executor: run many independent trials, serially or in parallel.

``BatchRunner`` executes :class:`~repro.exec.spec.TrialSpec` lists.  With
``workers=1`` everything runs in-process (no pool, no pickling); with
``workers>1`` trials are dispatched to a ``ProcessPoolExecutor``.  Both paths
call the same module-level :func:`execute_trial` on the same specs, and every
bit of randomness a trial consumes is derived from fields of its spec -- never
from worker identity, dispatch order or shared state -- so the two modes are
bit-identical by construction and results always come back in submission
order.

An optional :class:`~repro.exec.cache.ResultCache` is consulted before
dispatch and filled from the parent process after execution (a single writer,
though entry writes are atomic anyway), making re-runs of large campaigns
free.

Two extensions serve multi-machine campaigns (see :mod:`repro.campaign`):
``run(specs, shard=Shard(k, m))`` executes only the trials whose fingerprint
assigns them to shard ``k`` of ``m``, and ``on_error="capture"`` turns a
failing trial into a :class:`TrialResult` with ``error`` set instead of
aborting the whole batch -- the campaign runner's bounded-retry loop is built
on it.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..core.params import DEFAULT_PARAMETERS
from ..core.result import TrialOutcome
from ..graphs.generators import get_family
from .algorithms import fault_aware_algorithms, get_algorithm
from .cache import ResultCache
from .fingerprint import trial_fingerprint
from .report import BatchSummary, NullReporter, ProgressReporter
from .shard import Shard
from .spec import GraphSpec, SweepSpec, TrialSpec

__all__ = ["BatchRunner", "TrialResult", "execute_trial", "default_worker_count"]


def default_worker_count() -> int:
    """A sensible worker count for the current machine (>= 1)."""
    return max(1, os.cpu_count() or 1)


def _check_capabilities(spec: TrialSpec) -> None:
    """Reject specs whose inputs the named algorithm declares it would ignore.

    Both rejections guard the cache: a silently ignored fault plan or
    parameter set still participates in the trial fingerprint, so running the
    trial would store mislabelled results under keys that look meaningfully
    distinct.
    """
    algorithm = get_algorithm(spec.algorithm)
    if spec.effective_fault_plan is not None and not algorithm.fault_aware:
        raise ValueError(
            "algorithm %r is not fault-aware; fault plans are supported by: %s"
            % (spec.algorithm, ", ".join(sorted(fault_aware_algorithms())))
        )
    if not algorithm.needs_params and spec.params != DEFAULT_PARAMETERS:
        raise ValueError(
            "algorithm %r ignores election parameters, but the spec sets "
            "non-default params; drop them (they would fingerprint identical "
            "results under distinct cache keys)" % spec.algorithm
        )


def execute_trial(spec: TrialSpec) -> TrialOutcome:
    """Run one trial exactly as described (graph build + algorithm run).

    Module-level so it can be pickled to worker processes; deterministic in
    ``spec`` alone.  Every registered algorithm must return the unified
    :class:`~repro.core.result.TrialOutcome`; anything else is a registration
    bug surfaced here rather than at cache-serialisation time.
    """
    _check_capabilities(spec)
    graph = spec.build_graph()
    algorithm = get_algorithm(spec.algorithm)
    outcome = algorithm.run(graph, spec)
    if not isinstance(outcome, TrialOutcome):
        raise TypeError(
            "algorithm %r returned %s instead of a TrialOutcome; registry "
            "runners must produce the unified envelope"
            % (spec.algorithm, type(outcome).__name__)
        )
    return outcome


def _execute_timed(spec: TrialSpec) -> Tuple[TrialOutcome, float]:
    start = time.perf_counter()
    outcome = execute_trial(spec)
    return outcome, time.perf_counter() - start


def _execute_guarded(spec: TrialSpec) -> Tuple[Optional[TrialOutcome], Optional[str], float]:
    """Like :func:`_execute_timed` but failures come back as data.

    Module-level so the capture path works across process boundaries; the
    error is flattened to a string because tracebacks do not pickle.
    """
    start = time.perf_counter()
    try:
        outcome = execute_trial(spec)
    except Exception as exc:  # noqa: BLE001 -- captured by design
        detail = traceback.format_exception_only(type(exc), exc)[-1].strip()
        return None, detail, time.perf_counter() - start
    return outcome, None, time.perf_counter() - start


@dataclass
class TrialResult:
    """One executed (or cache-served, or failed-and-captured) trial.

    ``fingerprint`` is only computed when the runner has a cache configured
    or the batch is sharded (the inline-graph digest is O(m)); it is the
    empty string otherwise.  ``error`` is ``None`` for successful trials; a
    runner in ``on_error="capture"`` mode sets it to the failure's
    one-line description and leaves ``outcome`` as ``None``.
    """

    spec: TrialSpec
    fingerprint: str
    outcome: Optional[TrialOutcome]
    elapsed_seconds: float
    from_cache: bool
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        """Whether this trial raised instead of producing an outcome."""
        return self.error is not None


class BatchRunner:
    """Process-parallel executor for independent simulation trials."""

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        reporter: Optional[ProgressReporter] = None,
        on_error: str = "raise",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1, got %d" % workers)
        if on_error not in ("raise", "capture"):
            raise ValueError("on_error must be 'raise' or 'capture', got %r" % on_error)
        self.workers = workers
        self.cache = cache
        self.reporter = reporter if reporter is not None else NullReporter()
        self.on_error = on_error
        self.last_summary: Optional[BatchSummary] = None

    # ------------------------------------------------------------ validation
    def _validate_spec(self, spec: TrialSpec) -> None:
        """Fail fast on specs that would execute wrongly or non-reproducibly."""
        get_algorithm(spec.algorithm)  # unknown algorithm name
        _check_capabilities(spec)
        if isinstance(spec.graph, GraphSpec):
            family = get_family(spec.graph.family)  # unknown family name
            if family.supports_seed and spec.graph.seed is None:
                raise ValueError(
                    "randomised graph family %r needs an explicit seed: an unseeded "
                    "build differs per execution, which would break the runner's "
                    "determinism and poison the cache (SweepSpec.expand derives "
                    "graph seeds automatically)" % spec.graph.family
                )
        if self.cache is not None and spec.algo_kwargs.get("keep_simulation"):
            raise ValueError(
                "keep_simulation cannot be combined with a result cache: the raw "
                "simulation transcript is not cached, so hits would silently "
                "return outcomes without it"
            )

    # ------------------------------------------------------------------- api
    def run(
        self,
        specs: Iterable[TrialSpec],
        shard: Optional[Shard] = None,
        fingerprints: Optional[List[str]] = None,
    ) -> List[TrialResult]:
        """Execute every spec and return results in submission order.

        With ``shard=Shard(k, m)`` only the trials whose fingerprint assigns
        them to shard ``k`` of ``m`` are executed; the returned list covers
        just those trials (still in submission order).  Because assignment is
        by fingerprint, the union of the ``m`` shard runs equals the
        unsharded run trial for trial, and all shards fill compatible cache
        entries.

        ``fingerprints`` may carry the specs' precomputed trial fingerprints
        (one per spec, in order) to spare recomputation -- the inline-graph
        digest is O(m), and campaign runners already hold them.
        """
        spec_list = list(specs)
        for spec in spec_list:
            self._validate_spec(spec)

        if fingerprints is not None and len(fingerprints) != len(spec_list):
            raise ValueError(
                "expected %d fingerprints, got %d" % (len(spec_list), len(fingerprints))
            )
        if fingerprints is None:
            # The fingerprint is only worth computing when something keys off
            # it: a cache to consult or a shard assignment to decide.
            need_fingerprint = self.cache is not None or shard is not None
            fingerprints = [
                trial_fingerprint(spec) if need_fingerprint else "" for spec in spec_list
            ]
        if shard is not None:
            keep = [i for i, fp in enumerate(fingerprints) if shard.owns(fp)]
            spec_list = [spec_list[i] for i in keep]
            fingerprints = [fingerprints[i] for i in keep]

        total = len(spec_list)
        self.reporter.batch_started(total, self.workers)
        start = time.perf_counter()

        results: List[Optional[TrialResult]] = [None] * total
        done = 0
        cache_hits = 0
        failures = 0
        compute_seconds = 0.0

        # Serve cache hits first, collect the misses for execution.
        pending: List[Tuple[int, str, TrialSpec]] = []
        for index, (spec, fingerprint) in enumerate(zip(spec_list, fingerprints)):
            cached = self.cache.get(fingerprint) if self.cache is not None else None
            if cached is not None:
                results[index] = TrialResult(
                    spec=spec,
                    fingerprint=fingerprint,
                    outcome=cached.outcome,
                    elapsed_seconds=0.0,
                    from_cache=True,
                )
                done += 1
                cache_hits += 1
                self.reporter.trial_finished(results[index], done, total)
            else:
                pending.append((index, fingerprint, spec))

        if pending:
            for index, result in self._execute_pending(pending):
                results[index] = result
                compute_seconds += result.elapsed_seconds
                if result.failed:
                    failures += 1
                elif self.cache is not None:
                    self.cache.put(
                        result.fingerprint, result.spec, result.outcome, result.elapsed_seconds
                    )
                done += 1
                self.reporter.trial_finished(result, done, total)

        summary = BatchSummary(
            trials=total,
            executed=len(pending) - failures,
            cache_hits=cache_hits,
            workers=self.workers,
            wall_seconds=time.perf_counter() - start,
            compute_seconds=compute_seconds,
            failures=failures,
        )
        self.last_summary = summary
        self.reporter.batch_finished(summary)
        return [result for result in results if result is not None]

    def run_sweep(
        self, sweep: SweepSpec, shard: Optional[Shard] = None
    ) -> List[TrialResult]:
        """Expand a sweep and run it (flat, ``expand``-ordered results)."""
        return self.run(sweep.expand(), shard=shard)

    # ------------------------------------------------------------- execution
    def _execute_pending(
        self, pending: List[Tuple[int, str, TrialSpec]]
    ) -> Iterable[Tuple[int, TrialResult]]:
        worker = _execute_guarded if self.on_error == "capture" else _execute_timed
        if self.workers == 1 or len(pending) == 1:
            for index, fingerprint, spec in pending:
                yield index, self._to_result(spec, fingerprint, worker(spec))
            return

        max_workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            future_info = {
                pool.submit(worker, spec): (index, fingerprint, spec)
                for index, fingerprint, spec in pending
            }
            not_done = set(future_info)
            while not_done:
                finished, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in finished:
                    index, fingerprint, spec = future_info[future]
                    try:
                        payload = future.result()
                    except Exception as exc:
                        # The future itself failed -- typically
                        # BrokenProcessPool after the OS killed a worker.
                        # _execute_guarded cannot catch that (the worker is
                        # gone), so capture mode must absorb it here; this is
                        # precisely the transient infrastructure failure the
                        # campaign retry policy exists for.
                        if self.on_error != "capture":
                            raise
                        detail = traceback.format_exception_only(type(exc), exc)[
                            -1
                        ].strip()
                        yield index, TrialResult(
                            spec, fingerprint, None, 0.0, False, error=detail
                        )
                        continue
                    yield index, self._to_result(spec, fingerprint, payload)

    def _to_result(self, spec: TrialSpec, fingerprint: str, payload) -> TrialResult:
        """Wrap a worker payload (timed or guarded form) into a TrialResult."""
        if self.on_error == "capture":
            outcome, error, elapsed = payload
            return TrialResult(spec, fingerprint, outcome, elapsed, False, error=error)
        outcome, elapsed = payload
        return TrialResult(spec, fingerprint, outcome, elapsed, False)
