"""Distributed spanning-tree construction (the Corollary 27 substrate).

Corollary 27 lower-bounds the message complexity of spanning-tree construction
on the Section 4.1 graphs by `Omega(n / sqrt(phi))`.  To exercise that claim we
need an actual spanning-tree algorithm: this module implements the standard
flooding/BFS construction -- the root floods an "adopt me" token, every other
node adopts the first port the token arrived on as its parent -- which uses
`Theta(m)` messages and `O(D)` rounds and is therefore message-optimal up to
constants on the lower-bound graphs (where `m = Theta(n / sqrt(phi))`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.result import TrialOutcome, classify_spanning_tree
from ..faults.plan import FaultPlan
from ..graphs.topology import Graph
from ..sim.harness import run_protocol
from ..sim.message import Message, counter_bits
from ..sim.metrics import RunMetrics
from ..sim.network import SimulationResult
from ..sim.node import Inbox, NodeContext, Protocol

__all__ = [
    "SpanningTreeNode",
    "spanning_tree_factory",
    "SpanningTreeOutcome",
    "spanning_tree_trial",
    "run_spanning_tree_construction",
]

ADOPT = "adopt"


class SpanningTreeNode(Protocol):
    """BFS-style spanning tree: adopt the first port the token arrives on."""

    def __init__(self, ctx: NodeContext, root: int) -> None:
        super().__init__(ctx)
        self.is_root = ctx.node_index == root
        self.parent_port: Optional[int] = None
        self.depth: Optional[int] = 0 if self.is_root else None
        self.joined = self.is_root

    def on_start(self) -> None:
        if self.is_root:
            self._invite(depth=0)

    def on_round(self, inbox: Inbox) -> None:
        for port, batch in inbox.items():
            for message in batch:
                if message.kind != ADOPT or self.joined:
                    continue
                self.joined = True
                self.parent_port = port
                self.depth = message.payload["depth"] + 1
                self._invite(depth=self.depth)

    def result(self) -> Dict[str, object]:
        return {
            "joined": self.joined,
            "is_root": self.is_root,
            "parent_port": self.parent_port,
            "depth": self.depth,
        }

    def _invite(self, depth: int) -> None:
        message = Message(kind=ADOPT, payload={"depth": depth}, size_bits=counter_bits(depth + 1))
        for port in self.ctx.ports:
            self.ctx.send(port, message)


def spanning_tree_factory(root: int):
    """Protocol factory for :class:`repro.sim.Network`."""

    def factory(ctx: NodeContext) -> SpanningTreeNode:
        return SpanningTreeNode(ctx, root=root)

    return factory


@dataclass
class SpanningTreeOutcome:
    """Result of one spanning-tree construction."""

    num_nodes: int
    root: int
    joined: int
    parent_edges: List[Tuple[int, int]]
    depths: List[Optional[int]]
    metrics: RunMetrics

    @property
    def is_spanning(self) -> bool:
        """Every node joined and exactly ``n - 1`` parent edges exist."""
        return self.joined == self.num_nodes and len(self.parent_edges) == self.num_nodes - 1

    @property
    def tree_depth(self) -> int:
        """Maximum depth of any node in the constructed tree."""
        return max(depth for depth in self.depths if depth is not None)

    @property
    def messages(self) -> int:
        return self.metrics.messages

    @property
    def rounds(self) -> int:
        return self.metrics.rounds


def _simulate(
    graph: Graph,
    root: int,
    seed: Optional[int],
    fault_plan: Optional[FaultPlan],
    max_rounds: int,
) -> SimulationResult:
    """One spanning-tree run on the shared harness (historical seed streams)."""
    if not 0 <= root < graph.num_nodes:
        raise ValueError("root %d is not a node of the graph" % root)
    return run_protocol(
        graph,
        spanning_tree_factory(root),
        seed=seed,
        port_stream=0x71,
        network_stream=0x72,
        fault_plan=fault_plan,
        max_rounds=max_rounds,
    )


def spanning_tree_trial(
    graph: Graph,
    root: int = 0,
    *,
    seed: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    max_rounds: int = 1_000_000,
) -> TrialOutcome:
    """Build a spanning tree and return the unified trial outcome.

    ``winners`` is the root; ``extras`` records how many nodes joined and the
    constructed depth.  Dropped adopt tokens are never retransmitted, so
    message faults genuinely shrink coverage -- the classification separates
    "spanned everyone", "spanned every live node" and "partial" (see
    :data:`~repro.core.result.SPANNING_TREE_CLASSIFICATIONS`).
    """
    result = _simulate(graph, root, seed, fault_plan, max_rounds)
    joined = result.nodes_with("joined", True)
    unjoined = sorted(set(range(graph.num_nodes)) - set(joined))
    depths = [res["depth"] for res in result.node_results]
    tree_depth = max((depth for depth in depths if depth is not None), default=0)
    return TrialOutcome(
        algorithm="spanning_tree",
        kind="spanning_tree",
        num_nodes=graph.num_nodes,
        winners=[root],
        classification=classify_spanning_tree(unjoined, result.crashed_nodes),
        metrics=result.metrics,
        crashed_nodes=list(result.crashed_nodes),
        extras={"joined": len(joined), "tree_depth": tree_depth},
    )


def run_spanning_tree_construction(
    graph: Graph,
    root: int = 0,
    seed: Optional[int] = None,
    max_rounds: int = 1_000_000,
    fault_plan: Optional[FaultPlan] = None,
) -> SpanningTreeOutcome:
    """Build a spanning tree rooted at ``root`` and report its cost and shape."""
    result = _simulate(graph, root, seed, fault_plan, max_rounds)
    port_graph = result.port_graph
    parent_edges: List[Tuple[int, int]] = []
    depths: List[Optional[int]] = []
    joined = 0
    for node, res in enumerate(result.node_results):
        depths.append(res["depth"])
        if res["joined"]:
            joined += 1
        if res["parent_port"] is not None:
            parent = port_graph.port_to_neighbor(node, res["parent_port"])
            parent_edges.append((node, parent))
    return SpanningTreeOutcome(
        num_nodes=graph.num_nodes,
        root=root,
        joined=joined,
        parent_edges=parent_edges,
        depths=depths,
        metrics=result.metrics,
    )
