"""Unit tests for the random-walk token bookkeeping."""

import random

import pytest

from repro.core import WalkTreeState, binomial, lazy_step_counts, split_over_ports


class TestSamplers:
    def test_binomial_bounds(self):
        rng = random.Random(1)
        for trials in (0, 1, 5, 50):
            value = binomial(rng, trials, 0.5)
            assert 0 <= value <= trials

    def test_binomial_rejects_negative(self):
        with pytest.raises(ValueError):
            binomial(random.Random(1), -1)

    def test_binomial_mean(self):
        rng = random.Random(2)
        total = sum(binomial(rng, 100, 0.5) for _ in range(500))
        assert total / 500 == pytest.approx(50, rel=0.05)

    def test_binomial_rejects_out_of_range_probability(self):
        for probability in (-0.1, 1.1):
            with pytest.raises(ValueError):
                binomial(random.Random(1), 10, probability)

    def test_binomial_skewed_probability_mean(self):
        rng = random.Random(5)
        total = sum(binomial(rng, 100, 0.1) for _ in range(500))
        assert total / 500 == pytest.approx(10, rel=0.15)

    def test_binomial_uses_binomialvariate_for_any_probability(self):
        """On Python >= 3.12 the O(1) sampler must serve every probability."""

        class Recorder(random.Random):
            def __init__(self):
                super().__init__(7)
                self.calls = []

            def binomialvariate(self, n=1, p=0.5):
                self.calls.append((n, p))
                return super().binomialvariate(n, p=p) if hasattr(
                    random.Random, "binomialvariate"
                ) else 0

        rng = Recorder()
        value = binomial(rng, 20, 0.3)
        assert rng.calls == [(20, 0.3)]
        assert 0 <= value <= 20

    def test_lazy_step_conserves_count(self):
        rng = random.Random(3)
        staying, moving = lazy_step_counts(rng, 37)
        assert staying + moving == 37

    def test_split_over_ports_conserves_and_targets_valid_ports(self):
        rng = random.Random(4)
        counts = split_over_ports(rng, 100, degree=5)
        assert sum(counts.values()) == 100
        assert all(0 <= port < 5 for port in counts)

    def test_split_requires_positive_degree(self):
        with pytest.raises(ValueError):
            split_over_ports(random.Random(1), 3, degree=0)


class TestWalkTreeState:
    def make_state(self, walk_length=4):
        return WalkTreeState(origin=101, phase=2, walk_length=walk_length)

    def test_record_arrival_sets_parent_once(self):
        state = self.make_state()
        state.record_arrival(3, in_port=7)
        state.record_arrival(5, in_port=9)
        assert state.first_arrival_offset == 3
        assert state.parent_port == 7

    def test_add_resident_below_length(self):
        state = self.make_state(walk_length=4)
        state.add_resident(steps_taken=2, count=10)
        assert state.resident == {2: 10}
        assert state.proxy_count == 0
        assert state.has_unfinished_tokens()

    def test_add_resident_at_length_becomes_proxy(self):
        state = self.make_state(walk_length=4)
        state.add_resident(steps_taken=4, count=3)
        assert state.proxy_count == 3
        assert not state.has_unfinished_tokens()

    def test_add_resident_ignores_non_positive(self):
        state = self.make_state()
        state.add_resident(1, 0)
        state.add_resident(1, -5)
        assert state.resident == {}

    def test_advance_conserves_tokens(self):
        rng = random.Random(5)
        state = self.make_state(walk_length=10)
        state.add_resident(0, 200)
        outgoing = state.advance_one_round(rng, degree=4)
        moved = sum(outgoing.values())
        stayed = sum(state.resident.values())
        assert moved + stayed == 200

    def test_advance_increments_steps(self):
        rng = random.Random(6)
        state = self.make_state(walk_length=10)
        state.add_resident(3, 50)
        outgoing = state.advance_one_round(rng, degree=3)
        assert all(steps == 4 for (_port, steps) in outgoing)
        assert set(state.resident) <= {4}

    def test_walks_finish_after_exactly_walk_length_steps(self):
        rng = random.Random(7)
        state = self.make_state(walk_length=3)
        state.add_resident(0, 64)
        departed = 0
        for _ in range(3):
            outgoing = state.advance_one_round(rng, degree=2)
            for (_port, steps), count in outgoing.items():
                assert steps <= 3
                departed += count
        # After walk_length rounds nothing is left unfinished here: every walk
        # either became a proxy at this node or moved to another node.
        assert not state.has_unfinished_tokens()
        assert state.proxy_count + departed == 64

    def test_forward_ports_recorded(self):
        rng = random.Random(8)
        state = self.make_state(walk_length=5)
        state.add_resident(0, 100)
        state.advance_one_round(rng, degree=2)
        assert state.forward_ports <= {0, 1}
        assert state.forward_ports  # with 100 walks some surely moved

    def test_distinct_proxy_flag(self):
        state = self.make_state(walk_length=1)
        state.add_resident(1, 1)
        assert state.is_proxy
        assert state.is_distinct_proxy
        state.add_resident(1, 1)
        assert not state.is_distinct_proxy

    def test_local_report_contribution_counts_distinct(self):
        state = self.make_state(walk_length=1)
        state.add_resident(1, 1)
        state.local_report_contribution({55, 101, 77})
        ids, distinct, proxies = state.report_payload()
        assert ids == {55, 77}  # the origin itself (101) is excluded
        assert distinct == 1
        assert proxies == 1

    def test_local_report_contribution_for_non_proxy_is_noop(self):
        state = self.make_state()
        state.local_report_contribution({55})
        assert state.report_payload() == (set(), 0, 0)

    def test_merge_report_accumulates(self):
        state = self.make_state()
        state.merge_report({1, 2}, distinct=3, proxies=5)
        state.merge_report({2, 4}, distinct=1, proxies=2)
        ids, distinct, proxies = state.report_payload()
        assert ids == {1, 2, 4}
        assert distinct == 4
        assert proxies == 7

    def test_merge_collect_unions(self):
        state = self.make_state()
        state.merge_collect({9})
        state.merge_collect({9, 10})
        assert state.collect_payload() == {9, 10}
