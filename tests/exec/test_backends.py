"""The execution-backend layer: protocol, factory, env override, dispatch."""

import json
import sys

import pytest

from repro.core import ElectionParameters
from repro.exec import (
    BatchRunner,
    CommandBackend,
    ExecutionBackend,
    GraphSpec,
    ProcessPoolBackend,
    SerialBackend,
    SweepSpec,
    TrialExecutionError,
    TrialSpec,
    WorkerPoolBackend,
    backend_names,
    make_backend,
    outcome_to_dict,
)

FAST = ElectionParameters(c1=3.0, c2=0.5)


def _sweep(trials=2):
    configs = (
        TrialSpec(graph=GraphSpec("clique", (12,)), params=FAST, label="n=12"),
        TrialSpec(graph=GraphSpec("clique", (16,)), params=FAST, label="n=16"),
    )
    return SweepSpec(name="backends", configs=configs, trials=trials, base_seed=42)


def _signature(results):
    return [
        (result.spec.label, json.dumps(outcome_to_dict(result.outcome), sort_keys=True))
        for result in results
    ]


class TestRegistry:
    def test_four_backends_are_registered(self):
        assert backend_names() == ("command", "process", "serial", "workerpool")

    def test_factory_builds_each(self):
        for name in backend_names():
            backend = make_backend(name, workers=2)
            assert isinstance(backend, ExecutionBackend)
            assert backend.name == name
            backend.close()

    def test_unknown_name_lists_known_ones(self):
        with pytest.raises(KeyError, match="workerpool"):
            make_backend("nope")

    def test_declared_death_survival(self):
        assert WorkerPoolBackend(workers=1).survives_worker_death
        assert CommandBackend().survives_worker_death
        assert not SerialBackend().survives_worker_death
        assert not ProcessPoolBackend(workers=1).survives_worker_death

    def test_runner_rejects_a_non_backend(self):
        with pytest.raises(TypeError, match="backend"):
            BatchRunner(backend=42)

    def test_add_backend_argument_tracks_the_registry(self):
        """The shared CLI helper (one definition for every campaign example)
        accepts exactly the registered names plus the empty default."""
        import argparse

        from repro.exec import add_backend_argument

        parser = argparse.ArgumentParser()
        add_backend_argument(parser)
        assert parser.parse_args([]).backend == ""
        for name in backend_names():
            assert parser.parse_args(["--backend", name]).backend == name
        with pytest.raises(SystemExit):
            parser.parse_args(["--backend", "bogus"])


class TestEnvOverride:
    def test_env_override_selects_the_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "serial")
        runner = BatchRunner(workers=4)
        runner.run_sweep(_sweep(trials=1))
        assert runner.last_backend_name == "serial"

    def test_invalid_env_value_fails_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "bogus")
        with pytest.raises(KeyError, match="bogus"):
            BatchRunner(workers=1).run_sweep(_sweep(trials=1))

    def test_explicit_backend_beats_the_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "bogus")
        runner = BatchRunner(workers=1, backend="serial")
        runner.run_sweep(_sweep(trials=1))
        assert runner.last_backend_name == "serial"

    def test_default_selection_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_BACKEND", raising=False)
        serial = BatchRunner(workers=1)
        serial.run_sweep(_sweep(trials=1))
        assert serial.last_backend_name == "serial"
        parallel = BatchRunner(workers=2)
        parallel.run_sweep(_sweep(trials=2))
        assert parallel.last_backend_name == "process"


class TestCallerOwnedLifecycle:
    def test_backend_instance_serves_multiple_batches(self):
        """A caller-owned pool is not closed by the runner between runs."""
        with WorkerPoolBackend(workers=2) as backend:
            runner = BatchRunner(workers=2, backend=backend)
            first = runner.run_sweep(_sweep())
            pids = set(backend.worker_pids())
            second = runner.run_sweep(_sweep())
            assert set(backend.worker_pids()) == pids, "workers were recycled"
        assert _signature(first) == _signature(second)
        assert backend.worker_pids() == []

    def test_process_pool_grows_for_later_larger_batches(self):
        """A caller-owned pool that first served a tiny batch must not stay
        pinned at that size for the rest of its life."""
        single = _sweep(trials=1).expand()[:1]
        with ProcessPoolBackend(workers=2) as backend:
            runner = BatchRunner(workers=2, backend=backend)
            runner.run(single)  # a 1-trial batch only needs 1 process
            assert backend._pool_size == 1
            runner.run_sweep(_sweep(trials=2))
            assert backend._pool_size == 2

    def test_submit_returns_future_like(self):
        spec = _sweep(trials=1).expand()[0]
        for backend in (SerialBackend(), CommandBackend()):
            payload = backend.submit(spec).result()
            assert payload.error is None
            assert payload.outcome.num_nodes == 12
            backend.close()


class TestCommandBackend:
    def test_round_trip_matches_serial(self):
        """The local worker entrypoint behind the command template produces
        the exact serial outcomes (the satellite's round-trip pin)."""
        sweep = _sweep()
        reference = BatchRunner(backend="serial").run_sweep(sweep)
        dispatched = BatchRunner(workers=2, backend=CommandBackend(jobs=2)).run_sweep(sweep)
        assert _signature(dispatched) == _signature(reference)

    def test_string_template_is_shell_split(self):
        backend = CommandBackend(template="%s -m repro.exec.worker" % sys.executable)
        assert backend.argv[1:] == ["-m", "repro.exec.worker"]

    def test_failing_command_captures_the_whole_chunk(self):
        backend = CommandBackend(
            template=[sys.executable, "-c", "import sys; sys.exit(3)"]
        )
        results = BatchRunner(on_error="capture", backend=backend).run_sweep(_sweep())
        assert all(result.failed for result in results)
        assert all("exit status 3" in result.error for result in results)

    def test_garbage_output_captures_the_whole_chunk(self):
        backend = CommandBackend(template=[sys.executable, "-c", "print('not json')"])
        results = BatchRunner(on_error="capture", backend=backend).run_sweep(
            _sweep(trials=1)
        )
        assert all("unusable response" in result.error for result in results)

    def test_failing_command_raises_in_raise_mode(self):
        backend = CommandBackend(
            template=[sys.executable, "-c", "import sys; sys.exit(3)"]
        )
        with pytest.raises(TrialExecutionError, match="exit status 3"):
            BatchRunner(backend=backend).run_sweep(_sweep(trials=1))

    def test_chunking_covers_every_trial_exactly_once(self):
        backend = CommandBackend(chunk_size=3, jobs=2)
        results = BatchRunner(workers=2, backend=backend).run_sweep(_sweep(trials=4))
        assert [result.spec.label for result in results] == ["n=12"] * 4 + ["n=16"] * 4

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            CommandBackend(jobs=0)
        with pytest.raises(ValueError):
            CommandBackend(chunk_size=0)
        with pytest.raises(ValueError):
            CommandBackend(template=[])


class TestInlineFallback:
    def test_unwire_safe_trials_run_in_process(self):
        """A locally registered algorithm cannot reach wire workers; the
        runner executes it in-process and the batch still completes."""
        from repro.exec.algorithms import ALGORITHMS, register_algorithm

        if "_inline_fallback_test_only" not in ALGORITHMS:

            @register_algorithm("_inline_fallback_test_only")
            def _run_inline(graph, spec):
                from repro.baselines.flood_max import flood_max_trial

                return flood_max_trial(graph, seed=spec.seed)

        specs = [
            TrialSpec(graph=GraphSpec("clique", (10,)), algorithm="flood_max", seed=1),
            TrialSpec(
                graph=GraphSpec("clique", (10,)),
                algorithm="_inline_fallback_test_only",
                seed=1,
            ),
        ]
        with WorkerPoolBackend(workers=1) as backend:
            results = BatchRunner(backend=backend).run(specs)
        assert [result.failed for result in results] == [False, False]
        # Identical trials, identical outcomes -- wherever each one ran.
        assert outcome_to_dict(results[0].outcome) == outcome_to_dict(results[1].outcome)
