"""The docs tree stays in sync with the code it documents.

These are the reference checks CI's docs job runs: every experiment driver
is catalogued in docs/experiments.md, every package layer appears in
docs/architecture.md, and README/docs cross-link each other -- so adding an
experiment or a subsystem without documenting it fails the build.
"""

import os
import re

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _read(*parts):
    with open(os.path.join(REPO_ROOT, *parts), "r", encoding="utf-8") as handle:
        return handle.read()


def test_docs_tree_exists():
    for name in ("architecture.md", "experiments.md"):
        assert os.path.exists(os.path.join(REPO_ROOT, "docs", name)), name


def test_every_benchmark_file_is_catalogued():
    experiments = _read("docs", "experiments.md")
    bench_dir = os.path.join(REPO_ROOT, "benchmarks")
    bench_files = [
        name
        for name in os.listdir(bench_dir)
        if name.startswith("test_bench_") and name.endswith(".py")
    ]
    assert bench_files, "no benchmark drivers found"
    missing = [name for name in bench_files if name not in experiments]
    assert not missing, "benchmark files not mentioned in docs/experiments.md: %s" % missing


def test_every_package_layer_is_in_architecture():
    architecture = _read("docs", "architecture.md")
    src = os.path.join(REPO_ROOT, "src", "repro")
    packages = [
        name
        for name in os.listdir(src)
        if os.path.isdir(os.path.join(src, name)) and not name.startswith("__")
    ]
    assert packages
    missing = [name for name in packages if "repro.%s" % name not in architecture]
    assert not missing, "packages not mapped in docs/architecture.md: %s" % missing


def test_readme_links_to_docs():
    readme = _read("README.md")
    assert "docs/architecture.md" in readme
    assert "docs/experiments.md" in readme


def test_docs_cross_link_each_other():
    assert "experiments.md" in _read("docs", "architecture.md")
    assert "architecture.md" in _read("docs", "experiments.md")


def test_catalog_numbers_every_experiment():
    """E1 through E13 each appear as a table row in the catalog."""
    experiments = _read("docs", "experiments.md")
    table_rows = re.findall(r"^\| (E\d+) \|", experiments, flags=re.MULTILINE)
    assert table_rows == ["E%d" % i for i in range(1, 14)]


def test_every_algorithm_is_catalogued():
    """Registry consistency: each public algorithm name appears in the
    docs/architecture.md algorithm catalog (CI runs this as its own step)."""
    from repro.exec import algorithm_names

    architecture = _read("docs", "architecture.md")
    missing = [
        name
        for name in algorithm_names()
        if "`%s`" % name not in architecture
    ]
    assert not missing, (
        "registered algorithms missing from docs/architecture.md: %s" % missing
    )


def test_simulator_capability_column_matches_registry():
    """Registry consistency for the catalog's Simulators column: each public
    algorithm's table row declares exactly the simulators its registry entry
    does, and the "Simulators" section documents the engines (CI's
    registry-consistency step runs this next to the name check)."""
    from repro.exec import algorithm_names, get_algorithm

    architecture = _read("docs", "architecture.md")
    assert "## Simulators" in architecture
    for engine in ("reference", "vectorized"):
        assert "`%s`" % engine in architecture
    mismatched = []
    for name in algorithm_names():
        declared = set(get_algorithm(name).simulators)
        row = re.search(
            r"^\| `%s` \| [^|]+ \| [^|]+ \| ([^|]+) \|" % re.escape(name),
            architecture,
            flags=re.MULTILINE,
        )
        if row is None:
            mismatched.append("%s: no catalog row with a Simulators column" % name)
            continue
        documented = {cell.strip() for cell in row.group(1).split(",")}
        if documented != declared:
            mismatched.append(
                "%s: docs say %s, registry declares %s"
                % (name, sorted(documented), sorted(declared))
            )
    assert not mismatched, (
        "docs/architecture.md Simulators column out of sync: %s" % mismatched
    )


def test_perf_baseline_is_documented():
    """The committed BENCH_simcore.json ships with a reading guide in
    docs/experiments.md and exists at the repository root."""
    experiments = _read("docs", "experiments.md")
    assert "BENCH_simcore.json" in experiments
    assert "perf_driver.py" in experiments
    assert os.path.exists(os.path.join(REPO_ROOT, "BENCH_simcore.json"))


def test_every_execution_backend_is_catalogued():
    """Backend-registry consistency: each backend name appears in the
    docs/architecture.md "Execution backends" section, and the section
    itself exists (the new-subsystem analogue of the algorithm catalog)."""
    from repro.exec import backend_names

    architecture = _read("docs", "architecture.md")
    assert "## Execution backends" in architecture
    missing = [
        name for name in backend_names() if "`%s`" % name not in architecture
    ]
    assert not missing, (
        "registered execution backends missing from docs/architecture.md: %s"
        % missing
    )


def test_every_cache_backend_is_catalogued():
    """Cache-backend registry consistency: each backend name appears in the
    docs/architecture.md "The result cache" section, along with the
    selection/migration surface a campaign operator needs."""
    from repro.exec import cache_backend_names

    architecture = _read("docs", "architecture.md")
    assert "## The result cache" in architecture
    missing = [
        name for name in cache_backend_names() if "`%s`" % name not in architecture
    ]
    assert not missing, (
        "registered cache backends missing from docs/architecture.md: %s" % missing
    )
    for reference in (
        "REPRO_CACHE_BACKEND",
        "--cache-backend",
        "CACHE_SCHEMA_VERSION",
        "cache.sqlite",
        "path_for",
    ):
        assert reference in architecture, reference


def test_cache_perf_baseline_is_documented():
    """The committed BENCH_cache.json ships with a reading guide in
    docs/experiments.md and exists at the repository root."""
    experiments = _read("docs", "experiments.md")
    assert "BENCH_cache.json" in experiments
    assert "perf_cache.py" in experiments
    assert os.path.exists(os.path.join(REPO_ROOT, "BENCH_cache.json"))


def test_observability_layer_is_documented():
    """The telemetry subsystem is documented end to end: the architecture
    section exists and covers the tracer/sink/watch surface, the experiment
    catalog explains --trace, and the README cross-links the section."""
    architecture = _read("docs", "architecture.md")
    assert "## Observability" in architecture
    for reference in (
        "repro.obs",
        "TRACE_SCHEMA_VERSION",
        "`NullSink`",
        "`JsonlTraceSink`",
        "`MetricsAggregator`",
        "repro.obs.watch",
        "heartbeat",
    ):
        assert reference in architecture, reference
    experiments = _read("docs", "experiments.md")
    assert "--trace" in experiments
    assert "telemetry" in experiments.lower()
    readme = _read("README.md")
    assert "repro.obs" in readme
    assert "docs/architecture.md#observability" in readme


def test_networked_deployment_is_documented():
    """The live-deployment subsystem is documented end to end: the
    architecture section exists and covers the coordinator surface, the
    experiment catalog explains the committed BENCH_net.json baseline, and
    the README quick-starts the coordinator CLI."""
    architecture = _read("docs", "architecture.md")
    assert "## Networked deployment" in architecture
    for reference in (
        "repro.net",
        "repro.net.coordinator",
        "repro.net.node",
        "cross_validate",
        "net_events",
        "SIGKILL",
        "--verify",
        "--status-port",
    ):
        assert reference in architecture, reference
    experiments = _read("docs", "experiments.md")
    assert "BENCH_net.json" in experiments
    assert "perf_net.py" in experiments
    assert os.path.exists(os.path.join(REPO_ROOT, "BENCH_net.json"))
    readme = _read("README.md")
    assert "repro.net.coordinator" in readme
    assert "docs/architecture.md#networked-deployment" in readme


def test_backend_subsystem_modules_are_mapped():
    """The wire-worker subsystem is documented where the layer map lives:
    the backends package, the worker entrypoint and the environment
    override all appear in docs/architecture.md and the README."""
    architecture = _read("docs", "architecture.md")
    for reference in ("repro.exec.backends", "repro.exec.worker", "REPRO_EXEC_BACKEND"):
        assert reference in architecture, reference
    readme = _read("README.md")
    assert "REPRO_EXEC_BACKEND" in readme
    assert "docs/architecture.md#execution-backends" in readme


def test_fleet_dispatch_is_documented():
    """The fleet subsystem is documented end to end: the architecture
    section exists and covers the inventory/supervision surface, the
    experiment catalog walks through a distributed run and names CI's
    fleet-smoke job, and the README quick-starts the dispatcher."""
    architecture = _read("docs", "architecture.md")
    assert "## Fleet dispatch" in architecture
    for reference in (
        "repro.fleet",
        "FleetDispatcher",
        "HostSpec",
        "local_inventory",
        "load_inventory",
        "repro.fleet.host --serve",
        "{python}",
        "fleet.json",
        "work stealing",
        "SIGKILL",
        "merge_from",
    ):
        assert reference in architecture, reference
    experiments = _read("docs", "experiments.md")
    assert "fleet_campaign.py" in experiments
    assert "fleet-smoke" in experiments
    readme = _read("README.md")
    assert "repro.fleet" in readme
    assert "docs/architecture.md#fleet-dispatch" in readme
    assert "fleet-smoke" in readme


def test_execution_profile_is_documented():
    """The unified execution-config surface is documented: the precedence
    rule, every environment tier, the shared CLI helper, and a migration
    table for each deprecated knob."""
    architecture = _read("docs", "architecture.md")
    assert "## The execution profile" in architecture
    assert "explicit  >  CLI  >  environment  >  default" in architecture
    for reference in (
        "ExecutionProfile",
        "add_execution_arguments",
        "REPRO_EXEC_BACKEND",
        "REPRO_CACHE_BACKEND",
        "REPRO_EXEC_SIMULATOR",
        "REPRO_TRACE",
        "DeprecationWarning",
        "| Deprecated spelling | Replacement |",
        "tests/exec/test_execution_profile.py",
    ):
        assert reference in architecture, reference
    readme = _read("README.md")
    assert "ExecutionProfile" in readme
    assert "docs/architecture.md#the-execution-profile" in readme


def test_sqlite_merge_watermarks_are_documented():
    """The incremental-merge contract ships with its docs: store_uid,
    the per-source watermark, and the reset escape hatch."""
    architecture = _read("docs", "architecture.md")
    for reference in ("store_uid", "merge_seen_rowid", "reset_merge_watermarks"):
        assert reference in architecture, reference
