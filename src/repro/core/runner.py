"""Convenience entry point: run the election on a graph and summarise the outcome.

This is the main user-facing API of the library::

    from repro import expander_graph, run_leader_election

    graph = expander_graph(256, seed=1)
    outcome = run_leader_election(graph, seed=42)
    assert outcome.success
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..graphs.ports import PortNumberedGraph
from ..graphs.topology import Graph
from ..sim.harness import FAULT_SEED_STREAM
from ..sim.network import MessageObserver, Network
from ..sim.rng import derive_seed
from .leader_election import leader_election_factory
from .params import DEFAULT_PARAMETERS, ElectionParameters
from .result import ElectionOutcome, outcome_from_simulation
from .schedule import PhaseSchedule

__all__ = [
    "run_leader_election",
    "build_election_network",
    "FAULT_SEED_STREAM",
    "KNOWN_SIMULATORS",
]

#: Simulator engines ``run_leader_election`` accepts (see docs/architecture.md).
KNOWN_SIMULATORS = ("reference", "vectorized")


def build_election_network(
    graph: Graph,
    params: ElectionParameters = DEFAULT_PARAMETERS,
    seed: Optional[int] = None,
    known_n: Optional[int] = -1,
    assumed_n: Optional[int] = None,
    observers: Sequence[MessageObserver] = (),
    edge_capacity_words: Optional[int] = None,
    congest_mode: str = "count",
    fault_plan: Optional[FaultPlan] = None,
) -> Network:
    """Wire the election protocol into a simulator without running it.

    ``known_n=-1`` gives every node the true ``n``; any other integer injects
    that value instead (the Theorem 28 experiments pass the *base* graph size
    while running on a dumbbell of twice that size); ``None`` withholds ``n``
    entirely, in which case ``assumed_n`` must be provided.

    A non-empty ``fault_plan`` runs the election against that adversary: the
    injector's randomness is derived from ``(seed, plan fingerprint)``, so the
    same pair replays bit-for-bit; an empty or absent plan leaves the run
    exactly as before.  Crash models using ``at_phase`` resolve the phase
    boundary against this run's :class:`~repro.core.schedule.PhaseSchedule`.
    """
    port_seed = None if seed is None else derive_seed(seed, 0xB0B)
    network_seed = None if seed is None else derive_seed(seed, 0xA11CE)
    port_graph = PortNumberedGraph(graph, seed=port_seed)
    injector = None
    if fault_plan is not None and not fault_plan.is_empty:
        schedule = PhaseSchedule(params)
        injector = FaultInjector(
            fault_plan,
            master_seed=None if seed is None else derive_seed(seed, FAULT_SEED_STREAM),
            phase_start_of=lambda index: schedule.window(index).start,
        )
    return Network(
        port_graph,
        leader_election_factory(params=params, assumed_n=assumed_n),
        seed=network_seed,
        known_n=known_n,
        observers=observers,
        edge_capacity_words=edge_capacity_words,
        congest_mode=congest_mode,
        fault_injector=injector,
    )


def run_leader_election(
    graph: Graph,
    params: ElectionParameters = DEFAULT_PARAMETERS,
    seed: Optional[int] = None,
    known_n: Optional[int] = -1,
    assumed_n: Optional[int] = None,
    max_rounds: int = 10_000_000,
    observers: Sequence[MessageObserver] = (),
    edge_capacity_words: Optional[int] = None,
    congest_mode: str = "count",
    keep_simulation: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    simulator: str = "reference",
) -> ElectionOutcome:
    """Run implicit leader election (Theorem 13) on ``graph`` and return the outcome.

    Parameters mirror :func:`build_election_network`; ``max_rounds`` caps the
    simulation defensively (the algorithm terminates on its own), and
    ``keep_simulation`` retains the raw :class:`SimulationResult` for
    fine-grained inspection.  With a non-empty ``fault_plan`` the outcome
    additionally carries ``crashed_nodes``, a degraded-outcome
    ``classification`` and per-fault counters in ``metrics.fault_events``.

    ``simulator`` selects the engine: ``"reference"`` (the per-message object
    simulator, the bit-exactness oracle) or ``"vectorized"`` (the numpy
    walk-phase engine of :mod:`repro.sim.vectorized`, with its own
    walk-randomness seed stream).  A vectorized request the engine cannot
    honour falls back to the reference simulator; the outcome's ``simulator``
    field then reads ``"reference-fallback:<reason>"``.
    """
    if simulator not in KNOWN_SIMULATORS:
        raise ValueError(
            "unknown simulator %r; expected one of %s"
            % (simulator, ", ".join(KNOWN_SIMULATORS))
        )
    if simulator == "vectorized":
        from ..sim.vectorized import (
            VectorizedUnsupported,
            run_vectorized_election,
            vectorized_unsupported_reason,
        )

        reason = vectorized_unsupported_reason(
            fault_plan=fault_plan,
            observers=tuple(observers),
            keep_simulation=keep_simulation,
            congest_mode=congest_mode,
        )
        if reason is None:
            try:
                return run_vectorized_election(
                    graph,
                    params=params,
                    seed=seed,
                    known_n=known_n,
                    assumed_n=assumed_n,
                    max_rounds=max_rounds,
                    edge_capacity_words=edge_capacity_words,
                    fault_plan=fault_plan,
                )
            except VectorizedUnsupported as exc:
                reason = str(exc)
        outcome = run_leader_election(
            graph,
            params=params,
            seed=seed,
            known_n=known_n,
            assumed_n=assumed_n,
            max_rounds=max_rounds,
            observers=observers,
            edge_capacity_words=edge_capacity_words,
            congest_mode=congest_mode,
            keep_simulation=keep_simulation,
            fault_plan=fault_plan,
            simulator="reference",
        )
        outcome.simulator = "reference-fallback:%s" % reason
        return outcome
    network = build_election_network(
        graph,
        params=params,
        seed=seed,
        known_n=known_n,
        assumed_n=assumed_n,
        observers=observers,
        edge_capacity_words=edge_capacity_words,
        congest_mode=congest_mode,
        fault_plan=fault_plan,
    )
    result = network.run(max_rounds=max_rounds)
    return outcome_from_simulation(result, keep_simulation=keep_simulation)
