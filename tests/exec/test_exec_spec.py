"""Tests for trial/sweep descriptions and fingerprint stability."""

import pytest

from repro.core import ElectionParameters
from repro.exec import (
    GraphSpec,
    SweepSpec,
    TrialSpec,
    build_graph,
    canonical_trial_document,
    code_version_tag,
    trial_fingerprint,
)
from repro.graphs import complete_graph, cycle_graph

FAST = ElectionParameters(c1=3.0, c2=0.5)


class TestGraphSpec:
    def test_builds_deterministic_family(self):
        graph = build_graph(GraphSpec("clique", (12,)))
        assert graph.num_nodes == 12
        assert graph.num_edges == 12 * 11 // 2

    def test_builds_seeded_family_reproducibly(self):
        spec = GraphSpec("expander", (16,), {"degree": 4}, seed=9)
        assert build_graph(spec) == build_graph(spec)

    def test_seed_is_ignored_by_deterministic_families(self):
        assert build_graph(GraphSpec("hypercube", (4,), seed=123)) == build_graph(
            GraphSpec("hypercube", (4,))
        )

    def test_inline_graph_passes_through(self):
        graph = complete_graph(6)
        assert build_graph(graph) is graph

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            build_graph(GraphSpec("no_such_family", (8,)))


class TestFingerprint:
    def test_equal_specs_share_a_fingerprint(self):
        a = TrialSpec(graph=GraphSpec("clique", (16,)), seed=5, params=FAST)
        b = TrialSpec(graph=GraphSpec("clique", (16,)), seed=5, params=FAST)
        assert a is not b
        assert trial_fingerprint(a) == trial_fingerprint(b)

    def test_kwarg_insertion_order_does_not_matter(self):
        a = TrialSpec(
            graph=GraphSpec("clique", (16,)), algo_kwargs={"known_n": -1, "assumed_n": None}
        )
        b = TrialSpec(
            graph=GraphSpec("clique", (16,)), algo_kwargs={"assumed_n": None, "known_n": -1}
        )
        assert trial_fingerprint(a) == trial_fingerprint(b)

    def test_label_does_not_affect_fingerprint(self):
        a = TrialSpec(graph=GraphSpec("clique", (16,)), label="one")
        b = TrialSpec(graph=GraphSpec("clique", (16,)), label="two")
        assert trial_fingerprint(a) == trial_fingerprint(b)

    @pytest.mark.parametrize(
        "variant",
        [
            TrialSpec(graph=GraphSpec("clique", (17,)), seed=5, params=FAST),
            TrialSpec(graph=GraphSpec("clique", (16,)), seed=6, params=FAST),
            TrialSpec(graph=GraphSpec("clique", (16,)), seed=5),
            TrialSpec(graph=GraphSpec("clique", (16,)), seed=5, params=FAST, algorithm="flood_max"),
            TrialSpec(
                graph=GraphSpec("clique", (16,)), seed=5, params=FAST, algo_kwargs={"known_n": 8}
            ),
            TrialSpec(
                graph=GraphSpec("expander", (16,), {"degree": 4}, seed=1), seed=5, params=FAST
            ),
        ],
    )
    def test_any_outcome_relevant_change_changes_the_fingerprint(self, variant):
        base = TrialSpec(graph=GraphSpec("clique", (16,)), seed=5, params=FAST)
        assert trial_fingerprint(variant) != trial_fingerprint(base)

    def test_inline_graphs_fingerprint_structurally(self):
        a = TrialSpec(graph=complete_graph(10), seed=1)
        b = TrialSpec(graph=complete_graph(10), seed=1)
        c = TrialSpec(graph=cycle_graph(10), seed=1)
        assert trial_fingerprint(a) == trial_fingerprint(b)
        assert trial_fingerprint(a) != trial_fingerprint(c)

    def test_document_embeds_code_version(self):
        document = canonical_trial_document(TrialSpec(graph=GraphSpec("clique", (8,))))
        assert document["code_version"] == code_version_tag()
        assert "repro-" in document["code_version"]


class TestSweepSpec:
    def _sweep(self, trials=3):
        configs = (
            TrialSpec(graph=GraphSpec("clique", (12,)), params=FAST, label="clique"),
            TrialSpec(graph=GraphSpec("expander", (16,), {"degree": 4}), params=FAST, label="exp"),
        )
        return SweepSpec(name="demo", configs=configs, trials=trials, base_seed=42)

    def test_expand_is_deterministic_and_complete(self):
        sweep = self._sweep()
        first, second = sweep.expand(), sweep.expand()
        assert first == second
        assert len(first) == sweep.num_trials == 6

    def test_expand_assigns_distinct_trial_seeds(self):
        seeds = [spec.seed for spec in self._sweep().expand()]
        assert len(set(seeds)) == len(seeds)

    def test_expand_fills_graph_seeds_for_random_families(self):
        expanded = self._sweep().expand()
        exp_trials = [spec for spec in expanded if spec.label == "exp"]
        assert all(spec.graph.seed is not None for spec in exp_trials)
        assert len({spec.graph.seed for spec in exp_trials}) == 1

    def test_explicit_graph_seed_is_kept(self):
        config = TrialSpec(graph=GraphSpec("expander", (16,), {"degree": 4}, seed=777))
        sweep = SweepSpec(name="pinned", configs=(config,), trials=2, base_seed=1)
        assert all(spec.graph.seed == 777 for spec in sweep.expand())

    def test_group_restores_config_major_chunks(self):
        sweep = self._sweep(trials=2)
        grouped = sweep.group(list(range(4)))
        assert grouped == [[0, 1], [2, 3]]
        with pytest.raises(ValueError):
            sweep.group([1, 2, 3])

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepSpec(name="bad", configs=(), trials=1)
        with pytest.raises(ValueError):
            SweepSpec(
                name="bad", configs=(TrialSpec(graph=GraphSpec("clique", (8,))),), trials=0
            )
