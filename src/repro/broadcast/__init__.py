"""Broadcast substrates: push-pull gossip, flooding, spanning-tree construction.

Each substrate exposes a ``*_trial`` function returning the unified
:class:`~repro.core.result.TrialOutcome` (fault-aware via the shared
``fault_plan`` hook) and is registered with the :mod:`repro.exec` algorithm
registry; the ``run_*`` entry points keep their substrate-specific outcome
shapes and gained the same ``fault_plan`` parameter.
"""

from .flooding import (
    FloodingNode,
    FloodingOutcome,
    flooding_factory,
    flooding_trial,
    run_flooding_broadcast,
)
from .push_pull import (
    BroadcastOutcome,
    PushPullNode,
    push_pull_factory,
    push_pull_trial,
    run_push_pull_broadcast,
)
from .spanning_tree import (
    SpanningTreeNode,
    SpanningTreeOutcome,
    run_spanning_tree_construction,
    spanning_tree_factory,
    spanning_tree_trial,
)

__all__ = [
    "PushPullNode",
    "push_pull_factory",
    "BroadcastOutcome",
    "push_pull_trial",
    "run_push_pull_broadcast",
    "FloodingNode",
    "flooding_factory",
    "FloodingOutcome",
    "flooding_trial",
    "run_flooding_broadcast",
    "SpanningTreeNode",
    "spanning_tree_factory",
    "SpanningTreeOutcome",
    "spanning_tree_trial",
    "run_spanning_tree_construction",
]
