"""Outcomes of simulation trials: the paper's election and the unified envelope.

Runs executed under a :mod:`repro.faults` plan additionally carry the set of
crash-stopped nodes and a degraded-outcome ``classification``: ``"elected"``
(exactly one live leader), ``"leader_crashed"`` (the unique leader was
crash-stopped), ``"multiple_leaders"`` or ``"no_leader"``.  Fault-free runs
classify as ``"elected"`` or the same failure labels, so the field is safe to
aggregate across mixed campaigns.

Two outcome shapes live here:

* :class:`ElectionOutcome` -- the rich, election-specific result of
  :func:`repro.core.runner.run_leader_election` (the paper's user-facing API);
* :class:`TrialOutcome` -- the **unified envelope** every algorithm registered
  with :mod:`repro.exec.algorithms` returns: winners, a per-kind
  ``classification``, the full :class:`~repro.sim.metrics.RunMetrics`,
  ``crashed_nodes`` and a JSON-pure ``extras`` dict for algorithm-specific
  fields.  The batch runner, result cache, campaign reports and
  ``analysis.sweep_summary`` all aggregate trial outcomes through this one
  shape, whatever algorithm produced them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..sim.metrics import RunMetrics
from ..sim.network import SimulationResult

__all__ = [
    "ElectionOutcome",
    "TrialOutcome",
    "outcome_from_simulation",
    "election_trial_outcome",
    "classify_election",
    "classify_broadcast",
    "classify_spanning_tree",
    "CLASSIFICATIONS",
    "BROADCAST_CLASSIFICATIONS",
    "SPANNING_TREE_CLASSIFICATIONS",
    "KIND_CLASSIFICATIONS",
    "SUCCESS_CLASSIFICATIONS",
    "TRIAL_KINDS",
]

#: Every value ``ElectionOutcome.classification`` can take.
CLASSIFICATIONS = ("elected", "leader_crashed", "multiple_leaders", "no_leader")

#: Labels of broadcast-kind trials: every node informed, every *live* node
#: informed (the uninformed remainder was crash-stopped), or neither.
BROADCAST_CLASSIFICATIONS = ("informed_all", "informed_live", "partial")

#: Labels of spanning-tree-kind trials, by the same live-node convention.
SPANNING_TREE_CLASSIFICATIONS = ("spanning", "spanning_live", "partial")

#: Outcome kinds an :class:`repro.exec.algorithms.Algorithm` may declare,
#: mapped to the full label set its classifications draw from.
KIND_CLASSIFICATIONS: Dict[str, tuple] = {
    "election": CLASSIFICATIONS,
    "broadcast": BROADCAST_CLASSIFICATIONS,
    "spanning_tree": SPANNING_TREE_CLASSIFICATIONS,
}

TRIAL_KINDS = tuple(KIND_CLASSIFICATIONS)

#: Classifications that count as a successful trial when aggregating mixed
#: sweeps ("informed_live"/"spanning_live" succeed: crash-stopped nodes are
#: unreachable by definition, so covering every live node is the best any
#: algorithm can do).
SUCCESS_CLASSIFICATIONS = frozenset(
    {"elected", "informed_all", "informed_live", "spanning", "spanning_live"}
)


def classify_election(leaders: List[int], crashed_nodes: Iterable[int]) -> str:
    """Degraded-outcome label of an election (one of :data:`CLASSIFICATIONS`).

    >>> classify_election([3], [])
    'elected'
    >>> classify_election([3], [3])
    'leader_crashed'
    >>> classify_election([], [1])
    'no_leader'
    """
    if len(leaders) == 0:
        return "no_leader"
    if len(leaders) > 1:
        return "multiple_leaders"
    if leaders[0] in set(crashed_nodes):
        return "leader_crashed"
    return "elected"


def classify_broadcast(uninformed: Iterable[int], crashed_nodes: Iterable[int]) -> str:
    """Broadcast label: which nodes never learned the rumor, and were they dead?

    >>> classify_broadcast([], [])
    'informed_all'
    >>> classify_broadcast([4], [4, 7])
    'informed_live'
    >>> classify_broadcast([4, 5], [4])
    'partial'
    """
    uninformed = set(uninformed)
    if not uninformed:
        return "informed_all"
    if uninformed <= set(crashed_nodes):
        return "informed_live"
    return "partial"


def classify_spanning_tree(unjoined: Iterable[int], crashed_nodes: Iterable[int]) -> str:
    """Spanning-tree label by the same live-node convention as broadcast."""
    unjoined = set(unjoined)
    if not unjoined:
        return "spanning"
    if unjoined <= set(crashed_nodes):
        return "spanning_live"
    return "partial"


@dataclass
class ElectionOutcome:
    """What happened in one election: who won, how long it took, what it cost."""

    num_nodes: int
    leaders: List[int]
    contenders: List[int]
    metrics: RunMetrics
    forced_stop: bool
    max_phases: int
    final_walk_length: int
    simulation: Optional[SimulationResult] = None
    crashed_nodes: List[int] = field(default_factory=list)
    #: Which engine produced this outcome: ``"reference"``, ``"vectorized"``,
    #: or ``"reference-fallback:<reason>"`` when a vectorized request had to
    #: fall back (see :mod:`repro.sim.vectorized`).
    simulator: str = "reference"

    @property
    def num_leaders(self) -> int:
        """How many nodes elected themselves (the paper wants exactly one)."""
        return len(self.leaders)

    @property
    def num_contenders(self) -> int:
        """How many nodes nominated themselves in Algorithm 1."""
        return len(self.contenders)

    @property
    def success(self) -> bool:
        """Implicit leader election succeeded: exactly one leader."""
        return self.num_leaders == 1

    @property
    def leader(self) -> Optional[int]:
        """The unique leader's node index, or ``None`` if the run failed."""
        if self.success:
            return self.leaders[0]
        return None

    @property
    def num_crashed(self) -> int:
        """How many nodes were crash-stopped by the fault plan."""
        return len(self.crashed_nodes)

    @property
    def classification(self) -> str:
        """Degraded-outcome label (one of :data:`CLASSIFICATIONS`)."""
        return classify_election(self.leaders, self.crashed_nodes)

    @property
    def rounds(self) -> int:
        """Rounds until the network went quiet."""
        return self.metrics.rounds

    @property
    def messages(self) -> int:
        """Number of physical messages sent."""
        return self.metrics.messages

    @property
    def message_units(self) -> int:
        """Number of ``O(log n)``-bit message units (the paper's measure)."""
        return self.metrics.message_units

    def as_record(self) -> Dict[str, object]:
        """Flat dictionary useful for sweep tables and CSV-ish output."""
        return {
            "num_nodes": self.num_nodes,
            "num_leaders": self.num_leaders,
            "num_contenders": self.num_contenders,
            "success": self.success,
            "rounds": self.rounds,
            "messages": self.messages,
            "message_units": self.message_units,
            "forced_stop": self.forced_stop,
            "max_phases": self.max_phases,
            "final_walk_length": self.final_walk_length,
            "classification": self.classification,
            "num_crashed": self.num_crashed,
        }

    def __str__(self) -> str:
        return (
            "ElectionOutcome(n=%d, leaders=%d, contenders=%d, rounds=%d, messages=%d, success=%s)"
            % (
                self.num_nodes,
                self.num_leaders,
                self.num_contenders,
                self.rounds,
                self.messages,
                self.success,
            )
        )


@dataclass
class TrialOutcome:
    """The unified result envelope of one batch-executed trial.

    Every algorithm in the :mod:`repro.exec.algorithms` registry returns this
    one shape, so caches, campaign reports and sweep aggregation never branch
    on the algorithm.  ``kind`` declares which label family
    ``classification`` draws from (see :data:`KIND_CLASSIFICATIONS`);
    ``winners`` holds the election's leaders, the broadcast's sources or the
    tree's root; ``extras`` carries algorithm-specific fields and must stay
    JSON-pure (scalars, strings, lists, string-keyed dicts) so outcomes
    round-trip the result cache exactly.

    ``simulation`` optionally retains the raw per-node transcript
    (``keep_simulation`` runs); it is never serialised and never compared.
    """

    algorithm: str
    kind: str
    num_nodes: int
    winners: List[int]
    classification: str
    metrics: RunMetrics
    crashed_nodes: List[int] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)
    simulation: Optional[SimulationResult] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.kind not in KIND_CLASSIFICATIONS:
            raise ValueError(
                "unknown trial kind %r; expected one of %s"
                % (self.kind, ", ".join(TRIAL_KINDS))
            )

    # ---------------------------------------------------------------- winners
    @property
    def num_winners(self) -> int:
        """How many nodes ended the trial in the winning role."""
        return len(self.winners)

    @property
    def leaders(self) -> List[int]:
        """Alias for ``winners`` under election vocabulary."""
        return self.winners

    @property
    def num_leaders(self) -> int:
        """Alias for :attr:`num_winners` under election vocabulary."""
        return self.num_winners

    @property
    def leader(self) -> Optional[int]:
        """The unique winner's node index, or ``None`` without one."""
        if len(self.winners) == 1:
            return self.winners[0]
        return None

    @property
    def success(self) -> bool:
        """Whether the classification counts as a success for its kind."""
        return self.classification in SUCCESS_CLASSIFICATIONS

    # ------------------------------------------------------------------ costs
    @property
    def rounds(self) -> int:
        """Rounds until the network went quiet."""
        return self.metrics.rounds

    @property
    def messages(self) -> int:
        """Number of physical messages sent."""
        return self.metrics.messages

    @property
    def message_units(self) -> int:
        """Number of ``O(log n)``-bit message units (the paper's measure)."""
        return self.metrics.message_units

    @property
    def num_crashed(self) -> int:
        """How many nodes were crash-stopped by the fault plan."""
        return len(self.crashed_nodes)

    @property
    def num_contenders(self) -> int:
        """Contender count for election-kind trials (0 when not recorded)."""
        return int(self.extras.get("num_contenders", 0))

    # -------------------------------------------------------------- reporting
    def as_record(self) -> Dict[str, object]:
        """Flat dictionary useful for sweep tables and CSV-ish output."""
        return {
            "algorithm": self.algorithm,
            "kind": self.kind,
            "num_nodes": self.num_nodes,
            "num_winners": self.num_winners,
            "success": self.success,
            "classification": self.classification,
            "rounds": self.rounds,
            "messages": self.messages,
            "message_units": self.message_units,
            "num_crashed": self.num_crashed,
            "extras": dict(self.extras),
        }

    def __str__(self) -> str:
        return "TrialOutcome(%s on n=%d: %s, rounds=%d, messages=%d)" % (
            self.algorithm,
            self.num_nodes,
            self.classification,
            self.rounds,
            self.messages,
        )

    # ------------------------------------------------------------ converters
    @classmethod
    def from_election(cls, algorithm: str, outcome: "ElectionOutcome") -> "TrialOutcome":
        """Wrap an :class:`ElectionOutcome` into the unified envelope.

        Election-specific fields (contender count, forced stop, phase count,
        final walk length) land in ``extras``; a retained simulation
        transcript is carried along un-serialised.  Outcomes from a
        non-default simulator additionally record it in ``extras`` (plain
        reference runs stay tag-free so historical cached outcomes compare
        equal).
        """
        extras: Dict[str, object] = {
            "num_contenders": outcome.num_contenders,
            "forced_stop": outcome.forced_stop,
            "max_phases": outcome.max_phases,
            "final_walk_length": outcome.final_walk_length,
        }
        if outcome.simulator != "reference":
            extras["simulator"] = outcome.simulator
        return cls(
            algorithm=algorithm,
            kind="election",
            num_nodes=outcome.num_nodes,
            winners=list(outcome.leaders),
            classification=outcome.classification,
            metrics=outcome.metrics,
            crashed_nodes=list(outcome.crashed_nodes),
            extras=extras,
            simulation=outcome.simulation,
        )


def election_trial_outcome(
    algorithm: str,
    result: SimulationResult,
    num_contenders: Optional[int] = None,
) -> TrialOutcome:
    """Unified outcome of a flood-style election protocol's simulation.

    Winners are the nodes whose result dict set ``leader``; the contender
    count defaults to the nodes that set ``contender`` (the flooding
    baselines mark every node a contender implicitly).
    """
    leaders = result.nodes_with("leader", True)
    if num_contenders is None:
        num_contenders = len(result.nodes_with("contender", True))
    return TrialOutcome(
        algorithm=algorithm,
        kind="election",
        num_nodes=len(result.node_results),
        winners=leaders,
        classification=classify_election(leaders, result.crashed_nodes),
        metrics=result.metrics,
        crashed_nodes=list(result.crashed_nodes),
        extras={"num_contenders": num_contenders},
    )


def outcome_from_simulation(
    result: SimulationResult, keep_simulation: bool = False
) -> ElectionOutcome:
    """Aggregate a :class:`SimulationResult` of the election protocol."""
    leaders = result.nodes_with("leader", True)
    contenders = result.nodes_with("contender", True)
    forced = any(res.get("forced_stop") for res in result.node_results)
    max_phases = max((res.get("phases", 0) for res in result.node_results), default=0)
    final_walk = max((res.get("final_walk_length", 0) for res in result.node_results), default=0)
    return ElectionOutcome(
        num_nodes=len(result.node_results),
        leaders=leaders,
        contenders=contenders,
        metrics=result.metrics,
        forced_stop=forced,
        max_phases=max_phases,
        final_walk_length=final_walk,
        simulation=result if keep_simulation else None,
        crashed_nodes=list(result.crashed_nodes),
    )
