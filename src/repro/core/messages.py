"""Wire messages of the leader-election protocol, with CONGEST size accounting.

Every constructor returns a :class:`repro.sim.Message` whose ``size_bits``
reflects what the payload would occupy on the wire: identifiers cost one
``O(log n)`` word, counters cost their bit length, flags cost one bit.  The
aggregated-token optimisation of Lemma 12 (one token plus a multiplicity
instead of many identical tokens) is visible here: a walk token carries a
count rather than being replicated.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from ..sim.message import Message, counter_bits, id_bits

__all__ = [
    "WALK_TOKEN",
    "REPORT",
    "DISTRIBUTE",
    "COLLECT",
    "WINNER_UP",
    "WINNER_DOWN",
    "make_walk_token",
    "make_report",
    "make_distribute",
    "make_collect",
    "make_winner_up",
    "make_winner_down",
]

WALK_TOKEN = "walk_token"
REPORT = "report"
DISTRIBUTE = "distribute"
COLLECT = "collect"
WINNER_UP = "winner_up"
WINNER_DOWN = "winner_down"


def _ids_bits(ids: Iterable[int], n_hint: int) -> int:
    count = len(set(ids))
    return count * id_bits(n_hint)


def make_walk_token(
    origin: int,
    phase: int,
    steps_taken: int,
    count: int,
    n_hint: int,
    winner_flag: bool,
) -> Message:
    """A batch of ``count`` random-walk tokens of ``origin`` after ``steps_taken`` steps."""
    size = (
        id_bits(n_hint)
        + counter_bits(max(1, steps_taken))
        + counter_bits(count)
        + counter_bits(max(1, phase))
        + 1
    )
    return Message(
        kind=WALK_TOKEN,
        payload={
            "origin": origin,
            "phase": phase,
            "steps": steps_taken,
            "count": count,
            "winner": winner_flag,
        },
        size_bits=size,
    )


def make_report(
    origin: int,
    phase: int,
    ids: FrozenSet[int],
    distinct: int,
    proxies: int,
    n_hint: int,
    winner_flag: bool,
) -> Message:
    """Converge-cast payload of Round 1 (I1 ids, distinct-proxy count, proxy count)."""
    size = (
        id_bits(n_hint)
        + _ids_bits(ids, n_hint)
        + counter_bits(max(1, distinct))
        + counter_bits(max(1, proxies))
        + counter_bits(max(1, phase))
        + 1
    )
    return Message(
        kind=REPORT,
        payload={
            "origin": origin,
            "phase": phase,
            "ids": frozenset(ids),
            "distinct": distinct,
            "proxies": proxies,
            "winner": winner_flag,
        },
        size_bits=size,
    )


def make_distribute(
    origin: int,
    phase: int,
    ids: FrozenSet[int],
    n_hint: int,
    winner_flag: bool,
) -> Message:
    """Round 2 payload: the origin's I2 set flooded down its walk tree."""
    size = id_bits(n_hint) + _ids_bits(ids, n_hint) + counter_bits(max(1, phase)) + 1
    return Message(
        kind=DISTRIBUTE,
        payload={
            "origin": origin,
            "phase": phase,
            "ids": frozenset(ids),
            "winner": winner_flag,
        },
        size_bits=size,
    )


def make_collect(
    origin: int,
    phase: int,
    ids: FrozenSet[int],
    n_hint: int,
    winner_flag: bool,
) -> Message:
    """Round 3 payload: the I3 union converge-cast back to the origin."""
    size = id_bits(n_hint) + _ids_bits(ids, n_hint) + counter_bits(max(1, phase)) + 1
    return Message(
        kind=COLLECT,
        payload={
            "origin": origin,
            "phase": phase,
            "ids": frozenset(ids),
            "winner": winner_flag,
        },
        size_bits=size,
    )


def make_winner_up(origin: int, phase: int, leader_id: int, n_hint: int) -> Message:
    """Winner notification travelling up a walk tree towards contender ``origin``."""
    size = 2 * id_bits(n_hint) + counter_bits(max(1, phase)) + 1
    return Message(
        kind=WINNER_UP,
        payload={"origin": origin, "phase": phase, "leader": leader_id},
        size_bits=size,
    )


def make_winner_down(origin: int, phase: int, leader_id: int, n_hint: int) -> Message:
    """Winner notification flooding down contender ``origin``'s walk tree."""
    size = 2 * id_bits(n_hint) + counter_bits(max(1, phase)) + 1
    return Message(
        kind=WINNER_DOWN,
        payload={"origin": origin, "phase": phase, "leader": leader_id},
        size_bits=size,
    )
