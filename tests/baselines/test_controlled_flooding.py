"""Tests for the controlled-flooding (candidate flooding) baseline."""

from repro.baselines import run_controlled_flooding_election
from repro.graphs import complete_graph, expander_graph


class TestControlledFlooding:
    def test_at_most_one_leader(self):
        outcome = run_controlled_flooding_election(expander_graph(48, seed=1), seed=2)
        assert outcome.num_leaders <= 1

    def test_usually_elects_with_default_rate(self):
        successes = 0
        for seed in range(5):
            outcome = run_controlled_flooding_election(complete_graph(48), seed=seed)
            successes += outcome.success
        assert successes >= 4

    def test_candidate_count_smaller_than_n(self):
        outcome = run_controlled_flooding_election(complete_graph(64), c1=2.0, seed=3)
        assert 0 < outcome.contenders < 64

    def test_zero_candidate_probability_regime(self):
        # With c1 tiny the candidate set can be empty -> zero leaders, reported as failure.
        outcome = run_controlled_flooding_election(complete_graph(32), c1=0.01, seed=4)
        assert outcome.num_leaders <= 1

    def test_fewer_messages_than_flood_max_on_dense_graph(self):
        from repro.baselines import run_flood_max_election

        graph = complete_graph(48)
        controlled = run_controlled_flooding_election(graph, seed=5)
        flood = run_flood_max_election(graph, seed=5)
        assert controlled.messages <= flood.messages

    def test_leader_is_a_candidate(self):
        outcome = run_controlled_flooding_election(complete_graph(40), seed=6)
        if outcome.num_leaders == 1:
            assert outcome.leaders[0] is not None
            assert outcome.contenders >= 1
