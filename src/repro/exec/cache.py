"""On-disk JSON result cache keyed by trial fingerprint.

Layout: one file per trial under ``root/<aa>/<fingerprint>.json`` (``aa`` is
the first fingerprint byte, keeping directories small for large campaigns).
Writes go through a same-directory temporary file and ``os.replace`` so that
a cache shared by several worker processes or concurrent campaigns never
exposes a half-written entry; unreadable or corrupt entries are treated as
misses and silently overwritten by the next run.

Each entry stores the human-readable canonical trial document next to the
outcome, so a cache directory doubles as a flat results database for
post-hoc analysis (``ResultCache.entries`` iterates it).

Long robustness campaigns accumulate entries across many fault plans;
:meth:`ResultCache.stats` reports entry count, on-disk bytes and the
hit-rate since the cache was opened, and :meth:`ResultCache.prune` trims the
store to a size/age budget (oldest entries first).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Union

from ..baselines.flood_max import BaselineOutcome
from ..core.result import ElectionOutcome
from .fingerprint import canonical_trial_document
from .serialize import outcome_from_dict, outcome_to_dict
from .spec import TrialSpec

__all__ = ["ResultCache", "CachedTrial", "CacheStats"]


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of a cache directory plus this process's hit accounting."""

    entries: int
    total_bytes: int
    hits: int
    misses: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of ``get`` calls served from disk since the cache opened."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

TrialOutcome = Union[ElectionOutcome, BaselineOutcome]


class CachedTrial:
    """One deserialised cache entry (outcome plus bookkeeping)."""

    def __init__(self, outcome: TrialOutcome, elapsed_seconds: float, created: float) -> None:
        self.outcome = outcome
        self.elapsed_seconds = elapsed_seconds
        self.created = created


class ResultCache:
    """Persistent fingerprint -> outcome store for the batch executor."""

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self._hits = 0
        self._misses = 0

    # ----------------------------------------------------------------- paths
    def path_for(self, fingerprint: str) -> str:
        return os.path.join(self.root, fingerprint[:2], fingerprint + ".json")

    # ---------------------------------------------------------------- lookup
    def get(self, fingerprint: str) -> Optional[CachedTrial]:
        """Return the cached trial for ``fingerprint`` or ``None`` on a miss."""
        path = self.path_for(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            cached = CachedTrial(
                outcome=outcome_from_dict(payload["outcome"]),
                elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
                created=float(payload.get("created", 0.0)),
            )
        except FileNotFoundError:
            self._misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupt or incompatible entry: treat as a miss; the next put()
            # atomically replaces it.
            self._misses += 1
            return None
        self._hits += 1
        return cached

    # ----------------------------------------------------------------- store
    def put(
        self,
        fingerprint: str,
        spec: TrialSpec,
        outcome: TrialOutcome,
        elapsed_seconds: float,
    ) -> None:
        """Persist one trial result atomically."""
        path = self.path_for(fingerprint)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "fingerprint": fingerprint,
            "trial": canonical_trial_document(spec),
            "label": spec.label,
            "outcome": outcome_to_dict(outcome),
            "elapsed_seconds": elapsed_seconds,
            "created": time.time(),
        }
        handle = tempfile.NamedTemporaryFile(
            mode="w",
            encoding="utf-8",
            dir=os.path.dirname(path),
            prefix=".tmp-",
            suffix=".json",
            delete=False,
        )
        try:
            with handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------- inventory
    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def _entry_paths(self) -> Iterator[str]:
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json") and not name.startswith(".tmp-"):
                    yield os.path.join(shard_dir, name)

    def entries(self) -> Iterator[Dict[str, object]]:
        """Iterate the raw JSON documents of every cache entry."""
        for path in self._entry_paths():
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    yield json.load(handle)
            except (OSError, ValueError):
                continue

    # ------------------------------------------------------------ maintenance
    def stats(self) -> CacheStats:
        """Entry count, on-disk bytes and hit-rate since this cache opened.

        Hit/miss counters are per :class:`ResultCache` instance (they start
        at zero when the directory is opened); entry count and bytes reflect
        the directory's current contents, whoever wrote them.
        """
        entries = 0
        total_bytes = 0
        for path in self._entry_paths():
            try:
                total_bytes += os.stat(path).st_size
            except OSError:
                continue
            entries += 1
        return CacheStats(
            entries=entries,
            total_bytes=total_bytes,
            hits=self._hits,
            misses=self._misses,
        )

    def prune(
        self,
        max_entries: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        now: Optional[float] = None,
    ) -> int:
        """Delete entries beyond the given budgets; return how many were removed.

        ``max_age_seconds`` removes entries whose ``created`` stamp is older
        than that (relative to ``now``, defaulting to the current time);
        ``max_entries`` then keeps only the newest that many entries.  With
        no arguments the cache is cleared entirely.  Removal uses the same
        atomic filesystem operations as ``put``, so pruning a cache that a
        concurrent campaign is writing to is safe -- at worst a freshly
        written entry survives or a removed one is recomputed.
        """
        if max_entries is not None and max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        stamped = []
        for path in self._entry_paths():
            created = 0.0
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    created = float(json.load(handle).get("created", 0.0))
            except (OSError, ValueError, TypeError):
                created = 0.0  # corrupt entries prune first
            stamped.append((created, path))
        stamped.sort()  # oldest first

        doomed = []
        if max_age_seconds is not None:
            cutoff = (time.time() if now is None else now) - max_age_seconds
            while stamped and stamped[0][0] < cutoff:
                doomed.append(stamped.pop(0)[1])
        if max_entries is not None:
            keep = max_entries
        elif max_age_seconds is not None:
            keep = len(stamped)  # the age budget alone decides
        else:
            keep = 0  # no budgets at all: clear the cache
        if len(stamped) > keep:
            doomed.extend(path for _created, path in stamped[: len(stamped) - keep])

        removed = 0
        for path in doomed:
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                continue
        return removed
