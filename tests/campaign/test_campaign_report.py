"""Tests for the cache-backed report layer: coverage, tables, determinism."""

import json

from repro.analysis import sweep_summary
from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    cached_outcomes,
    campaign_report,
    render_markdown,
    write_report,
)
from repro.core import DEFAULT_PARAMETERS, ElectionParameters
from repro.exec import BatchRunner, GraphSpec, ResultCache, Shard, SweepSpec, TrialSpec
from repro.faults import FaultPlan

FAST = ElectionParameters(c1=3.0, c2=0.5)


def _campaign():
    return CampaignSpec(
        name="report-unit",
        sweeps=(
            SweepSpec(
                name="scaling",
                configs=tuple(
                    TrialSpec(graph=GraphSpec("clique", (n,)), params=FAST, label="n=%d" % n)
                    for n in (10, 12)
                ),
                trials=2,
                base_seed=5,
            ),
            SweepSpec(
                name="faults",
                configs=(
                    TrialSpec(graph=GraphSpec("clique", (10,)), params=FAST, label="clean"),
                    TrialSpec(
                        graph=GraphSpec("clique", (10,)),
                        params=FAST,
                        fault_plan=FaultPlan.dropping(0.05),
                        label="drop=0.05",
                    ),
                ),
                trials=2,
                base_seed=6,
            ),
        ),
    )


class TestCampaignReport:
    def test_empty_cache_reports_zero_coverage(self, tmp_path):
        report = campaign_report(_campaign(), ResultCache(tmp_path))
        assert report["coverage"] == 0.0
        assert report["cached"] == 0
        for sweep in report["sweeps"]:
            assert sweep["coverage"] == 0.0
            for row in sweep["rows"]:
                assert row["done"] == 0
                assert "messages" not in row

    def test_full_cache_reports_full_coverage_and_rows(self, tmp_path):
        campaign = _campaign()
        cache = ResultCache(tmp_path)
        CampaignRunner(campaign, cache).run()
        report = campaign_report(campaign, cache)
        assert report["coverage"] == 1.0
        assert report["trials"] == campaign.num_trials
        scaling = report["sweeps"][0]
        assert [row["label"] for row in scaling["rows"]] == ["n=10", "n=12"]
        for row in scaling["rows"]:
            assert row["done"] == row["trials"] == 2
            assert row["messages"] > 0
            assert set(row["classifications"]) == {
                "elected",
                "leader_crashed",
                "multiple_leaders",
                "no_leader",
            }

    def test_fault_sweep_gets_overhead_anchored_at_clean_config(self, tmp_path):
        campaign = _campaign()
        cache = ResultCache(tmp_path)
        CampaignRunner(campaign, cache).run()
        report = campaign_report(campaign, cache)
        faults = report["sweeps"][1]["rows"]
        assert faults[0]["overhead"] == 1.0
        assert all("overhead" in row for row in faults)
        scaling = report["sweeps"][0]["rows"]
        assert all("overhead" not in row for row in scaling)

    def test_partial_cache_reports_partial_coverage(self, tmp_path):
        campaign = _campaign()
        cache = ResultCache(tmp_path)
        part = CampaignRunner(campaign, cache, shard=Shard(0, 2)).run()
        report = campaign_report(campaign, cache)
        assert report["cached"] == part.assigned
        assert 0.0 < report["coverage"] < 1.0
        outcomes = cached_outcomes(campaign, cache)
        cached = sum(
            1 for per_sweep in outcomes.values() for o in per_sweep if o is not None
        )
        assert cached == part.assigned

    def test_report_never_executes_trials(self, tmp_path):
        campaign = _campaign()
        cache = ResultCache(tmp_path)
        campaign_report(campaign, cache)  # empty cache: nothing to aggregate
        assert cache.stats().entries == 0


class TestRendering:
    def test_markdown_contains_tables_and_coverage(self, tmp_path):
        campaign = _campaign()
        cache = ResultCache(tmp_path)
        CampaignRunner(campaign, cache).run()
        markdown = render_markdown(campaign_report(campaign, cache))
        assert "# Campaign report: report-unit" in markdown
        assert "## scaling" in markdown and "## faults" in markdown
        assert "| label |" in markdown
        assert "coverage 100.0%" in markdown

    def test_write_report_is_deterministic(self, tmp_path):
        campaign = _campaign()
        cache = ResultCache(tmp_path / "cache")
        CampaignRunner(campaign, cache).run()
        md1, json1 = write_report(campaign, cache, tmp_path / "a")
        md2, json2 = write_report(campaign, cache, tmp_path / "b")
        with open(json1, "rb") as a, open(json2, "rb") as b:
            assert a.read() == b.read()
        with open(md1, "rb") as a, open(md2, "rb") as b:
            assert a.read() == b.read()
        with open(json1) as handle:
            assert json.load(handle)["campaign"] == "report-unit"


class TestSweepSummary:
    def test_rejects_wrong_length(self, tmp_path):
        campaign = _campaign()
        try:
            sweep_summary(campaign.sweeps[0], [None])
        except ValueError as exc:
            assert "expected 4 results" in str(exc)
        else:
            raise AssertionError("length mismatch not rejected")

    def test_overhead_anchor_is_exactly_one_despite_display_rounding(self):
        """The overhead ratio divides unrounded means: an anchor whose mean
        message count does not survive 1-decimal rounding still reports 1.0."""

        class _Outcome:
            def __init__(self, messages):
                self.messages = messages
                self.message_units = messages
                self.rounds = 10
                self.success = True

        sweep = SweepSpec(
            name="anchored",
            configs=(
                TrialSpec(graph=GraphSpec("clique", (10,)), params=FAST, label="clean"),
                TrialSpec(
                    graph=GraphSpec("clique", (10,)),
                    params=FAST,
                    fault_plan=FaultPlan.dropping(0.1),
                    label="faulty",
                ),
            ),
            trials=4,
            base_seed=2,
        )
        # Clean mean = 8.25 (rounds to 8.2 for display); faulty mean = 16.5.
        outcomes = [_Outcome(m) for m in (8, 8, 8, 9)] + [_Outcome(m) for m in (16, 16, 17, 17)]
        rows = sweep_summary(sweep, outcomes)
        assert rows[0]["messages"] == 8.2
        assert rows[0]["overhead"] == 1.0
        assert rows[1]["overhead"] == 2.0

    def test_overhead_anchor_stays_on_first_clean_config_under_partial_coverage(self):
        """A partially-covered first fault-free config still anchors overhead
        (with its partial mean) -- it never silently re-anchors on a later,
        more complete clean config."""

        class _Outcome:
            def __init__(self, messages):
                self.messages = messages
                self.message_units = messages
                self.rounds = 10
                self.success = True

        sweep = SweepSpec(
            name="partial-anchor",
            configs=(
                TrialSpec(graph=GraphSpec("clique", (10,)), params=FAST, label="clean-a"),
                TrialSpec(graph=GraphSpec("clique", (12,)), params=FAST, label="clean-b"),
                TrialSpec(
                    graph=GraphSpec("clique", (10,)),
                    params=FAST,
                    fault_plan=FaultPlan.dropping(0.1),
                    label="faulty",
                ),
            ),
            trials=2,
            base_seed=4,
        )
        outcomes = [
            _Outcome(10), None,             # clean-a: partial, mean 10
            _Outcome(20), _Outcome(20),     # clean-b: complete, mean 20
            _Outcome(30), _Outcome(30),     # faulty: complete, mean 30
        ]
        rows = sweep_summary(sweep, outcomes)
        assert rows[0]["overhead"] == 1.0
        assert rows[1]["overhead"] == 2.0
        assert rows[2]["overhead"] == 3.0

    def test_mixed_algorithm_sweep_anchors_overhead_per_algorithm(self):
        """The E13 regression (ROADMAP PR 4 leftover): on a sweep mixing
        algorithms, each row's overhead is relative to *its own* algorithm's
        first fault-free config -- a faulty flood-max compares against clean
        flood-max, never against the election's (much smaller) anchor.  An
        algorithm with no fault-free config gets no overhead at all."""

        class _Outcome:
            def __init__(self, messages):
                self.messages = messages
                self.message_units = messages
                self.rounds = 10
                self.success = True

        def config(algorithm, faulty, label):
            return TrialSpec(
                graph=GraphSpec("clique", (10,)),
                algorithm=algorithm,
                params=FAST if algorithm == "election" else DEFAULT_PARAMETERS,
                fault_plan=FaultPlan.dropping(0.1) if faulty else None,
                label=label,
            )

        sweep = SweepSpec(
            name="mixed",
            configs=(
                config("election", False, "election clean"),
                config("election", True, "election faulty"),
                config("flood_max", False, "flood clean"),
                config("flood_max", True, "flood faulty"),
                config("flooding", True, "broadcast faulty, no anchor"),
            ),
            trials=1,
            base_seed=3,
        )
        outcomes = [_Outcome(m) for m in (10, 30, 1000, 1500, 400)]
        rows = sweep_summary(sweep, outcomes)
        assert rows[0]["overhead"] == 1.0
        assert rows[1]["overhead"] == 3.0  # 30 / 10, not 30 / 1000
        assert rows[2]["overhead"] == 1.0
        assert rows[3]["overhead"] == 1.5  # 1500 / 1000, not 1500 / 10
        assert "overhead" not in rows[4]  # flooding has no fault-free anchor

    def test_baseline_outcomes_aggregate_with_election_classifications(self):
        """Baselines return the unified envelope now: same tallies as the election."""
        sweep = SweepSpec(
            name="baseline",
            configs=(TrialSpec(graph=GraphSpec("clique", (10,)), algorithm="flood_max"),),
            trials=2,
            base_seed=1,
        )
        results = BatchRunner().run_sweep(sweep)
        rows = sweep_summary(sweep, [result.outcome for result in results])
        assert rows[0]["done"] == 2
        assert rows[0]["success_rate"] == 1.0
        assert rows[0]["classifications"]["elected"] == 2

    def test_broadcast_outcomes_tally_their_own_label_family(self):
        sweep = SweepSpec(
            name="broadcast",
            configs=(TrialSpec(graph=GraphSpec("clique", (10,)), algorithm="flooding"),),
            trials=2,
            base_seed=2,
        )
        results = BatchRunner().run_sweep(sweep)
        rows = sweep_summary(sweep, [result.outcome for result in results])
        assert rows[0]["success_rate"] == 1.0
        assert set(rows[0]["classifications"]) == {
            "informed_all",
            "informed_live",
            "partial",
        }
        assert rows[0]["classifications"]["informed_all"] == 2
